//! Ablation benches over the demand-model constants DESIGN.md calls
//! out: how the tick cost scales with surge activity, parking, and
//! catalog size. (The *qualitative* ablations — what the constants do
//! to the figures — are visible by re-running `repro` with modified
//! profiles; these benches pin the performance envelope.)

use cloud_sim::catalog::Catalog;
use cloud_sim::cloud::Cloud;
use cloud_sim::config::{DemandProfile, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cloud_with(profile: DemandProfile, seed: u64) -> Cloud {
    let mut config = SimConfig::paper(seed);
    config.demand = profile;
    let mut cloud = Cloud::new(Catalog::testbed(), config);
    cloud.warmup(10);
    cloud
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tick");

    group.bench_function("paper_calibration", |b| {
        let mut cloud = cloud_with(DemandProfile::paper_calibration(), 1);
        b.iter(|| {
            cloud.tick();
            black_box(cloud.now());
        })
    });
    group.bench_function("quiet_profile", |b| {
        let mut cloud = cloud_with(DemandProfile::quiet(), 2);
        b.iter(|| {
            cloud.tick();
            black_box(cloud.now());
        })
    });
    group.bench_function("surge_heavy_4x", |b| {
        let mut p = DemandProfile::paper_calibration();
        p.pool_surge_rate_per_day *= 4.0;
        p.region_surge_rate_per_day *= 4.0;
        p.spot_surge_rate_per_day *= 4.0;
        let mut cloud = cloud_with(p, 3);
        b.iter(|| {
            cloud.tick();
            black_box(cloud.now());
        })
    });
    group.bench_function("no_parking", |b| {
        let mut p = DemandProfile::paper_calibration();
        p.park_enter_rate_per_day = 0.0;
        let mut cloud = cloud_with(p, 4);
        b.iter(|| {
            cloud.tick();
            black_box(cloud.now());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
