//! Analysis kernels on a synthetic probe store: these are the functions
//! that crunch the three-month database into the paper's figures.

use cloud_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use spotlight_bench::synthetic_store;
use spotlight_core::analysis::{
    cross_market_unavailability, duration_cdf, spike_unavailability, spot_cna_curve,
};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let store = synthetic_store(100_000);
    let store = store.read();
    let mut group = c.benchmark_group("analysis_100k_probes");
    group.sample_size(20);
    group.bench_function("spike_unavailability", |b| {
        b.iter(|| {
            black_box(spike_unavailability(
                &store,
                SimDuration::from_secs(900),
                None,
            ))
        })
    });
    group.bench_function("duration_cdf", |b| {
        b.iter(|| black_box(duration_cdf(&store)))
    });
    group.bench_function("spot_cna_curve", |b| {
        b.iter(|| black_box(spot_cna_curve(&store, None)))
    });
    group.bench_function("cross_market_unavailability", |b| {
        let windows = [SimDuration::from_secs(900), SimDuration::from_secs(3600)];
        b.iter(|| black_box(cross_market_unavailability(&store, &windows)))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
