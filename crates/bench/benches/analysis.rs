//! Analysis kernels on a synthetic probe store: these are the functions
//! that crunch the three-month database into the paper's figures.

use criterion::{criterion_group, criterion_main, Criterion};
use cloud_sim::ids::{Az, MarketId, Platform, Region};
use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};
use spotlight_core::analysis::{
    cross_market_unavailability, duration_cdf, spike_unavailability, spot_cna_curve,
};
use spotlight_core::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
use spotlight_core::store::{DataStore, SpikeEvent};
use std::hint::black_box;

/// Builds a deterministic synthetic store with `n` probes and spikes.
fn synthetic_store(n: u64) -> DataStore {
    let mut store = DataStore::new();
    let types = ["c3.large", "c3.xlarge", "c3.2xlarge", "m3.large"];
    for i in 0..n {
        let market = MarketId {
            az: Az::new(Region::UsEast1, (i % 3) as u8),
            instance_type: types[(i % 4) as usize].parse().unwrap(),
            platform: Platform::LinuxUnix,
        };
        let at = SimTime::from_secs(i * 97);
        let ratio = 0.2 + ((i * 7919) % 1000) as f64 / 100.0;
        let unavailable = i % 17 == 0;
        store.record_spike(SpikeEvent {
            market,
            at,
            ratio,
            probed: true,
        });
        store.record_probe(ProbeRecord {
            at,
            market,
            kind: if i % 5 == 0 {
                ProbeKind::Spot
            } else {
                ProbeKind::OnDemand
            },
            trigger: ProbeTrigger::PriceSpike { ratio },
            outcome: if unavailable {
                if i % 5 == 0 {
                    ProbeOutcome::CapacityNotAvailable
                } else {
                    ProbeOutcome::InsufficientCapacity
                }
            } else {
                ProbeOutcome::Fulfilled
            },
            spot_ratio: ratio.min(1.2),
            bid: None,
            cost: Price::ZERO,
        });
    }
    store
}

fn bench_analysis(c: &mut Criterion) {
    let store = synthetic_store(100_000);
    let mut group = c.benchmark_group("analysis_100k_probes");
    group.sample_size(20);
    group.bench_function("spike_unavailability", |b| {
        b.iter(|| black_box(spike_unavailability(&store, SimDuration::from_secs(900), None)))
    });
    group.bench_function("duration_cdf", |b| {
        b.iter(|| black_box(duration_cdf(&store)))
    });
    group.bench_function("spot_cna_curve", |b| {
        b.iter(|| black_box(spot_cna_curve(&store, None)))
    });
    group.bench_function("cross_market_unavailability", |b| {
        let windows = [SimDuration::from_secs(900), SimDuration::from_secs(3600)];
        b.iter(|| black_box(cross_market_unavailability(&store, &windows)))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
