//! One bench per paper table/figure: each group runs the scaled-down
//! (testbed, two-day) experiment end to end — study plus the figure's
//! analysis — so regressions in any link of the reproduction pipeline
//! show up here. The full-scale regeneration lives in the `repro`
//! binary (`repro all`).

use cloud_sim::lifecycle::{OdState, SpotRequestState};
use cloud_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use spotlight_bench::small_study;
use spotlight_core::analysis::{
    cross_az_unavailability, cross_market_unavailability, duration_cdf, regional_rejection_share,
    rejection_attribution, spike_unavailability, spot_cna_curve, spot_cna_distribution,
};
use spotlight_core::probe::ProbeKind;
use spotlight_core::query::SpotLightQuery;
use spotlight_derivative::series::{AvailabilityTimeline, PriceSeries};
use spotlight_derivative::spotcheck::{replay, SpotCheckConfig};
use spotlight_derivative::spoton::{run_trials, JobSpec};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    // One shared study: the cost of the figure benches is the analysis,
    // not the simulation.
    let (cloud, store, start, end) = small_study(5, 2);
    let db = store.read();
    let mut group = c.benchmark_group("figure");
    group.sample_size(10);

    group.bench_function("table_2_1_contract_stats", |b| {
        // Buffer-reusing variant: zero allocation per query call.
        let mut counts = std::collections::HashMap::new();
        b.iter(|| {
            let q = SpotLightQuery::new(&db, start, end);
            q.rejection_counts_by_region_into(&mut counts);
            black_box(counts.len())
        })
    });
    group.bench_function("fig_3_1_state_machine_dot", |b| {
        b.iter(|| black_box(OdState::to_dot()))
    });
    group.bench_function("fig_3_2_state_machine_dot", |b| {
        b.iter(|| black_box(SpotRequestState::to_dot()))
    });
    for (name, window) in [
        ("fig_5_4_spike_curve", 900u64),
        ("fig_5_4_spike_curve_2h", 7200),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(spike_unavailability(
                    &db,
                    SimDuration::from_secs(window),
                    None,
                ))
            })
        });
    }
    group.bench_function("fig_5_5_regional_share", |b| {
        b.iter(|| black_box(regional_rejection_share(&db)))
    });
    group.bench_function("fig_5_7_attribution", |b| {
        b.iter(|| black_box(rejection_attribution(&db)))
    });
    group.bench_function("fig_5_8_cross_az", |b| {
        b.iter(|| black_box(cross_az_unavailability(&db, SimDuration::from_secs(900))))
    });
    group.bench_function("fig_5_9_duration_cdf", |b| {
        b.iter(|| black_box(duration_cdf(&db)))
    });
    group.bench_function("fig_5_10_spot_cna", |b| {
        b.iter(|| black_box(spot_cna_curve(&db, None)))
    });
    group.bench_function("fig_5_11_cna_distribution", |b| {
        b.iter(|| black_box(spot_cna_distribution(&db)))
    });
    group.bench_function("fig_5_12_cross_market", |b| {
        let windows = [SimDuration::from_secs(900), SimDuration::from_secs(3600)];
        b.iter(|| black_box(cross_market_unavailability(&db, &windows)))
    });

    // Case studies (figs 6.1/6.2) over the most-probed market.
    let market = cloud.catalog().markets()[0];
    let prices = PriceSeries::new(cloud.trace().history(market).to_vec());
    let od = cloud.catalog().od_price(market);
    let timeline = AvailabilityTimeline::from_intervals(
        db.intervals()
            .filter(|i| i.market == market && i.kind == ProbeKind::OnDemand)
            .map(|i| (i.start, i.end.unwrap_or(end)))
            .collect(),
    );
    group.bench_function("fig_6_1_spotcheck_replay", |b| {
        let cfg = SpotCheckConfig::default();
        b.iter(|| black_box(replay(&prices, od, &timeline, &cfg, start, end)))
    });
    group.bench_function("fig_6_2_spoton_trials", |b| {
        let job = JobSpec::representative();
        b.iter(|| {
            black_box(run_trials(
                &job,
                &prices,
                od,
                &timeline,
                SimDuration::from_secs(300),
                start,
                end - SimDuration::hours(6),
                20,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
