//! SpotLight policy hot paths: a full deployment day and the intrinsic
//! bid search.

use cloud_sim::catalog::Catalog;
use cloud_sim::config::SimConfig;
use cloud_sim::engine::Engine;
use cloud_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spotlight_bench::testbed_cloud;
use spotlight_core::bidspread::find_intrinsic_bid;
use spotlight_core::policy::{PolicyConfig, SpotLightConfig};
use spotlight_core::spotlight::SpotLight;
use spotlight_core::store::shared_store;
use std::hint::black_box;

fn bench_deployment_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("deployment");
    group.sample_size(10);
    group.bench_function("spotlight_one_day_testbed", |b| {
        b.iter_batched(
            || {
                let mut engine = Engine::new(Catalog::testbed(), SimConfig::paper(7));
                engine.cloud_mut().warmup(20);
                let store = shared_store();
                engine.add_agent(Box::new(SpotLight::new(
                    SpotLightConfig {
                        policy: PolicyConfig {
                            spike_threshold: 0.5,
                            ..PolicyConfig::default()
                        },
                        ..SpotLightConfig::default()
                    },
                    store.clone(),
                )));
                (engine, store)
            },
            |(mut engine, store)| {
                let end = engine.cloud().now() + SimDuration::days(1);
                engine.run_until(end);
                black_box(store.len())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_bidspread(c: &mut Criterion) {
    c.bench_function("bidspread_search", |b| {
        b.iter_batched_ref(
            || testbed_cloud(11),
            |cloud| {
                let market = cloud.catalog().markets()[0];
                black_box(find_intrinsic_bid(cloud, market, 6))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_deployment_day, bench_bidspread);
criterion_main!(benches);
