//! Probe-database hot paths: ingest (`record_probe`, which maintains
//! every secondary index) and the per-market query interface, measured
//! against naive full-log scans so the index speedup is a number, not a
//! claim.

use cloud_sim::ids::MarketId;
use cloud_sim::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spotlight_bench::{synthetic_probes, synthetic_store};
use spotlight_core::probe::ProbeKind;
use spotlight_core::query::SpotLightQuery;
use spotlight_core::store::DataStore;
use std::hint::black_box;

/// The old full-scan availability computation, kept as the measured
/// baseline for the indexed [`SpotLightQuery::availability`].
fn scan_availability(store: &DataStore, market: MarketId, kind: ProbeKind) -> (u64, u64, u64) {
    let mut probes = 0u64;
    let mut rejections = 0u64;
    for p in store.probes() {
        if p.market == market && p.kind == kind && p.outcome.is_informative() {
            probes += 1;
            if p.outcome.is_unavailable() {
                rejections += 1;
            }
        }
    }
    let unavailable: u64 = store
        .intervals()
        .iter()
        .filter(|i| i.market == market && i.kind == kind)
        .map(|i| {
            i.end
                .unwrap_or(SimTime::from_secs(u64::MAX / 2))
                .saturating_since(i.start)
                .as_secs()
        })
        .sum();
    (probes, rejections, unavailable)
}

/// The old full-scan conditional-unavailability trial loop.
fn scan_conditional(
    store: &DataStore,
    a: MarketId,
    b: MarketId,
    window: SimDuration,
) -> Option<f64> {
    let b_times: Vec<SimTime> = store
        .probes()
        .iter()
        .filter(|p| p.market == b && p.kind == ProbeKind::OnDemand && p.outcome.is_unavailable())
        .map(|p| p.at)
        .collect();
    let mut trials = 0u64;
    let mut hits = 0u64;
    for i in store.intervals() {
        if i.market != a || i.kind != ProbeKind::OnDemand {
            continue;
        }
        trials += 1;
        let to = i.start + window;
        if b_times.iter().any(|&t| t >= i.start && t <= to) {
            hits += 1;
        }
    }
    (trials > 0).then(|| hits as f64 / trials as f64)
}

fn bench_record_probe(c: &mut Criterion) {
    let probes = synthetic_probes(10_000);
    c.bench_function("store/record_probe_10k", |b| {
        b.iter_batched(
            || probes.clone(),
            |probes| {
                let mut store = DataStore::new();
                for p in probes {
                    black_box(store.record_probe(p));
                }
                store
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_queries(c: &mut Criterion) {
    let store = synthetic_store(100_000);
    let span_end = SimTime::from_secs(100_000 * 97 + 1);
    let query = SpotLightQuery::new(&store, SimTime::ZERO, span_end);
    // Sort: probed_markets() iterates a HashMap, whose order changes
    // per process — the benched (a, b) pair must be stable across runs
    // for BENCH_PR*.json snapshots to be comparable.
    let mut markets: Vec<MarketId> = store.probed_markets().collect();
    markets.sort_by_key(|m| m.to_string());
    let (a, b) = (markets[0], markets[1]);

    let mut group = c.benchmark_group("store_query_100k");
    group.bench_function("availability_indexed", |bch| {
        bch.iter(|| {
            markets
                .iter()
                .map(|&m| query.availability(m, ProbeKind::OnDemand).probes)
                .sum::<u64>()
        })
    });
    group.bench_function("availability_scan_baseline", |bch| {
        bch.iter(|| {
            markets
                .iter()
                .map(|&m| scan_availability(&store, m, ProbeKind::OnDemand).0)
                .sum::<u64>()
        })
    });
    group.bench_function("conditional_unavailability_indexed", |bch| {
        bch.iter(|| black_box(query.conditional_unavailability(a, b, SimDuration::from_secs(900))))
    });
    group.bench_function("conditional_unavailability_scan_baseline", |bch| {
        bch.iter(|| black_box(scan_conditional(&store, a, b, SimDuration::from_secs(900))))
    });
    group.bench_function("probes_between_1h_window", |bch| {
        let from = SimTime::from_secs(4_000_000);
        let to = from + SimDuration::hours(1);
        bch.iter(|| store.probes_between(a, from, to).count())
    });
    group.bench_function("mean_time_to_revocation", |bch| {
        bch.iter(|| black_box(query.mean_time_to_revocation(a)))
    });
    group.finish();
}

criterion_group!(benches, bench_record_probe, bench_queries);
criterion_main!(benches);
