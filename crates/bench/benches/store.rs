//! Probe-database hot paths: ingest (`record_probe`, which maintains
//! every secondary index and epoch summary — sequential and contended
//! across threads), the per-market query interface, and the
//! epoch-summarized month-scale window sweep, each measured against
//! naive full-log scans so the index/summary speedup is a number, not a
//! claim.

use cloud_sim::ids::MarketId;
use cloud_sim::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spotlight_bench::{synthetic_probes, synthetic_store, synthetic_store_spaced};
use spotlight_core::probe::ProbeKind;
use spotlight_core::query::SpotLightQuery;
use spotlight_core::store::{DataStore, StoreRead};
use spotlight_core::{DurableOptions, FsyncPolicy};
use spotlight_persist::tempdir::TempDir;
use std::collections::HashMap;
use std::hint::black_box;

/// The old full-scan availability computation, kept as the measured
/// baseline for the indexed [`SpotLightQuery::availability`].
fn scan_availability(store: &StoreRead<'_>, market: MarketId, kind: ProbeKind) -> (u64, u64, u64) {
    let mut probes = 0u64;
    let mut rejections = 0u64;
    for p in store.probes() {
        if p.market == market && p.kind == kind && p.outcome.is_informative() {
            probes += 1;
            if p.outcome.is_unavailable() {
                rejections += 1;
            }
        }
    }
    let unavailable: u64 = store
        .intervals()
        .filter(|i| i.market == market && i.kind == kind)
        .map(|i| {
            i.end
                .unwrap_or(SimTime::from_secs(u64::MAX / 2))
                .saturating_since(i.start)
                .as_secs()
        })
        .sum();
    (probes, rejections, unavailable)
}

/// The old full-scan conditional-unavailability trial loop.
fn scan_conditional(
    store: &StoreRead<'_>,
    a: MarketId,
    b: MarketId,
    window: SimDuration,
) -> Option<f64> {
    let b_times: Vec<SimTime> = store
        .probes()
        .filter(|p| p.market == b && p.kind == ProbeKind::OnDemand && p.outcome.is_unavailable())
        .map(|p| p.at)
        .collect();
    let mut trials = 0u64;
    let mut hits = 0u64;
    for i in store.intervals() {
        if i.market != a || i.kind != ProbeKind::OnDemand {
            continue;
        }
        trials += 1;
        let to = i.start + window;
        if b_times.iter().any(|&t| t >= i.start && t <= to) {
            hits += 1;
        }
    }
    (trials > 0).then(|| hits as f64 / trials as f64)
}

/// One full-log pass computing every market's availability sweep — the
/// best a scan can do, and the baseline the epoch-summarized sweep is
/// gated against (the acceptance target is ≥ 5× over this).
fn scan_sweep(store: &StoreRead<'_>, span_end: SimTime) -> u64 {
    let mut stats: HashMap<MarketId, (u64, u64)> = HashMap::new();
    for p in store.probes() {
        if p.kind == ProbeKind::OnDemand && p.outcome.is_informative() {
            let e = stats.entry(p.market).or_insert((0, 0));
            e.0 += 1;
            if p.outcome.is_unavailable() {
                e.1 += 1;
            }
        }
    }
    let mut unavail: HashMap<MarketId, u64> = HashMap::new();
    for i in store.intervals() {
        if i.kind == ProbeKind::OnDemand {
            *unavail.entry(i.market).or_insert(0) += i
                .end
                .unwrap_or(span_end)
                .min(span_end)
                .saturating_since(i.start)
                .as_secs();
        }
    }
    stats.values().map(|&(p, _)| p).sum::<u64>() + unavail.values().sum::<u64>()
}

fn bench_record_probe(c: &mut Criterion) {
    let probes = synthetic_probes(10_000);
    c.bench_function("store/record_probe_10k", |b| {
        b.iter_batched(
            || probes.clone(),
            |probes| {
                let store = DataStore::new();
                for p in probes {
                    black_box(store.record_probe(p));
                }
                store
            },
            BatchSize::LargeInput,
        )
    });
}

/// Ingest under thread contention: N workers splitting the same stream
/// across the store's lock stripes. On a single-CPU host the >1 rows
/// measure striping + scheduling overhead, not parallelism.
fn bench_ingest_contended(c: &mut Criterion) {
    let probes = synthetic_probes(20_000);
    let mut group = c.benchmark_group("store_ingest_contended");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(&threads.to_string(), |b| {
            b.iter_batched(
                || probes.clone(),
                |probes| {
                    let store = DataStore::new();
                    std::thread::scope(|scope| {
                        for chunk in probes.chunks(probes.len().div_ceil(threads)) {
                            let store = &store;
                            scope.spawn(move || {
                                for p in chunk {
                                    black_box(store.record_probe(*p));
                                }
                            });
                        }
                    });
                    store.len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The contended ingest shape again, but appending through the durable
/// write-ahead log with batched fsync — the acceptance gate holds its
/// medians within 1.3× of `store_ingest_contended`.
fn bench_ingest_durable(c: &mut Criterion) {
    let probes = synthetic_probes(20_000);
    let mut group = c.benchmark_group("store_ingest_durable");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(&threads.to_string(), |b| {
            b.iter_batched(
                // Store creation and teardown are setup, not ingest:
                // the timed region is record_probe through flush. The
                // store and tempdir ride along in the routine's return
                // value so their drop (writer join, unlink) lands after
                // the sample's clock stops.
                || {
                    let tmp = TempDir::new("bench-ingest");
                    let store = DataStore::create_durable(
                        &tmp.path().join("store"),
                        DurableOptions {
                            fsync: FsyncPolicy::Batch,
                            queue_capacity: 4096,
                            ..DurableOptions::default()
                        },
                    )
                    .expect("durable store");
                    (probes.clone(), tmp, store)
                },
                |(probes, tmp, store)| {
                    std::thread::scope(|scope| {
                        for chunk in probes.chunks(probes.len().div_ceil(threads)) {
                            let store = &store;
                            scope.spawn(move || {
                                for p in chunk {
                                    black_box(store.record_probe(*p));
                                }
                            });
                        }
                    });
                    store.flush().expect("flush");
                    (store.len(), store, tmp)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Crash-recovery replay of a one-million-record log: each sample
/// rebuilds the full store from the on-disk WAL written once in setup.
fn bench_recover_1m(c: &mut Criterion) {
    let tmp = TempDir::new("bench-recover");
    let dir = tmp.path().join("store");
    {
        let store = DataStore::create_durable(
            &dir,
            DurableOptions {
                fsync: FsyncPolicy::Never,
                queue_capacity: 65_536,
                ..DurableOptions::default()
            },
        )
        .expect("durable store");
        for p in synthetic_probes(1_000_000) {
            store.record_probe(p);
        }
        store.flush().expect("flush");
    }
    let mut group = c.benchmark_group("recover_1m");
    group.sample_size(10);
    group.bench_function("replay", |b| {
        b.iter(|| black_box(DataStore::recover(&dir).expect("recover").len()))
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let store = synthetic_store(100_000);
    let span_end = SimTime::from_secs(100_000 * 97 + 1);
    let read = store.read();
    let query = SpotLightQuery::new(&read, SimTime::ZERO, span_end);
    // Sort: probed_markets() iterates per-stripe HashMaps, whose order
    // changes per process — the benched (a, b) pair must be stable
    // across runs for BENCH_PR*.json snapshots to be comparable.
    let mut markets: Vec<MarketId> = read.probed_markets().collect();
    markets.sort_by_key(|m| m.to_string());
    let (a, b) = (markets[0], markets[1]);

    let mut group = c.benchmark_group("store_query_100k");
    group.bench_function("availability_indexed", |bch| {
        bch.iter(|| {
            markets
                .iter()
                .map(|&m| query.availability(m, ProbeKind::OnDemand).probes)
                .sum::<u64>()
        })
    });
    group.bench_function("availability_scan_baseline", |bch| {
        bch.iter(|| {
            markets
                .iter()
                .map(|&m| scan_availability(&read, m, ProbeKind::OnDemand).0)
                .sum::<u64>()
        })
    });
    group.bench_function("conditional_unavailability_indexed", |bch| {
        bch.iter(|| black_box(query.conditional_unavailability(a, b, SimDuration::from_secs(900))))
    });
    group.bench_function("conditional_unavailability_scan_baseline", |bch| {
        bch.iter(|| black_box(scan_conditional(&read, a, b, SimDuration::from_secs(900))))
    });
    group.bench_function("probes_between_1h_window", |bch| {
        let from = SimTime::from_secs(4_000_000);
        let to = from + SimDuration::hours(1);
        bch.iter(|| read.probes_between(a, from, to).count())
    });
    group.bench_function("mean_time_to_revocation", |bch| {
        bch.iter(|| black_box(query.mean_time_to_revocation(a)))
    });
    group.finish();
}

/// The month-scale availability sweep: one million probes packed into
/// ~35 simulated days, every market's availability over the whole span.
/// `availability_summarized` reads running counters + epoch buckets;
/// `availability_raw_scan_baseline` is the single-pass full-log scan.
fn bench_window_sweep(c: &mut Criterion) {
    let store = synthetic_store_spaced(1_000_000, 3);
    let span_end = SimTime::from_secs(1_000_000 * 3 + 1);
    let read = store.read();
    let query = SpotLightQuery::new(&read, SimTime::ZERO, span_end);
    let mut markets: Vec<MarketId> = read.probed_markets().collect();
    markets.sort_by_key(|m| m.to_string());

    let mut group = c.benchmark_group("store_window_sweep_1m");
    group.sample_size(20);
    group.bench_function("availability_summarized", |bch| {
        bch.iter(|| {
            markets
                .iter()
                .map(|&m| {
                    let st = query.availability(m, ProbeKind::OnDemand);
                    st.probes + query.unavailable_seconds(m, ProbeKind::OnDemand)
                })
                .sum::<u64>()
        })
    });
    group.bench_function("availability_raw_scan_baseline", |bch| {
        bch.iter(|| black_box(scan_sweep(&read, span_end)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_record_probe,
    bench_ingest_contended,
    bench_ingest_durable,
    bench_recover_1m,
    bench_queries,
    bench_window_sweep
);
criterion_main!(benches);
