//! Substrate hot paths: demand ticks, auction clearing, and the probe
//! API round trip.

use cloud_sim::catalog::Catalog;
use cloud_sim::cloud::Cloud;
use cloud_sim::config::SimConfig;
use cloud_sim::market::clear;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spotlight_bench::testbed_cloud;
use std::hint::black_box;

fn bench_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("tick");
    group.bench_function("testbed_tick", |b| {
        let mut cloud = testbed_cloud(1);
        b.iter(|| {
            cloud.tick();
            black_box(cloud.now());
        });
    });
    // Pins the disabled-chaos contract: with `ChaosConfig::default()`
    // the only chaos cost in the tick is one bool branch per shard, so
    // this must track `testbed_tick` (both are gated by bench_check).
    group.bench_function("tick_chaos_disabled", |b| {
        let mut config = SimConfig::paper(1);
        config.threads = 1;
        config.chaos = cloud_sim::chaos::ChaosConfig::default();
        let mut cloud = Cloud::new(Catalog::testbed(), config);
        cloud.warmup(5);
        b.iter(|| {
            cloud.tick();
            black_box(cloud.now());
        });
    });
    group.sample_size(10);
    group.bench_function("standard_catalog_tick_5184_markets", |b| {
        let mut config = SimConfig::paper(1);
        config.threads = 1;
        let mut cloud = Cloud::new(Catalog::standard(), config);
        cloud.warmup(5);
        b.iter(|| {
            cloud.tick();
            black_box(cloud.now());
        });
    });
    group.finish();
}

/// The region-sharded fan-out at fixed worker counts over the full
/// catalog. Results are identical at every setting (the determinism
/// contract); only wall-clock time may differ, and only when the
/// machine actually has that many cores.
fn bench_tick_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("tick_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let name = threads.to_string();
        group.bench_function(&name, |b| {
            let mut config = SimConfig::paper(1);
            config.threads = threads;
            let mut cloud = Cloud::new(Catalog::standard(), config);
            cloud.warmup(5);
            b.iter(|| {
                cloud.tick();
                black_box(cloud.now());
            });
        });
    }
    group.finish();
}

/// Raw dispatch cost of the persistent worker pool versus spawning OS
/// threads per call — the overhead every parallel tick used to pay.
/// Each iteration submits `TASKS` trivial jobs and joins them;
/// `pool_scope` reuses parked workers, `thread_scope` spawns fresh
/// threads the way `Cloud::tick` did before the pool existed.
/// bench_check gates `pool_scope_4` and separately asserts the pool is
/// at least 5x cheaper than the thread-spawn variant.
fn bench_pool_dispatch(c: &mut Criterion) {
    use spotlight_pool::WorkerPool;
    use std::sync::atomic::{AtomicU64, Ordering};

    const TASKS: usize = 4;
    let counter = AtomicU64::new(0);
    let mut group = c.benchmark_group("pool_dispatch");
    group.bench_function("pool_scope_4", |b| {
        let pool = WorkerPool::new(TASKS);
        b.iter(|| {
            pool.scope(|s| {
                for _ in 0..TASKS {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            black_box(counter.load(Ordering::Relaxed));
        });
    });
    group.sample_size(10);
    group.bench_function("thread_scope_4", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..TASKS {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            black_box(counter.load(Ordering::Relaxed));
        });
    });
    group.finish();
}

fn bench_tick_components(c: &mut Criterion) {
    use cloud_sim::config::DemandProfile;
    use cloud_sim::demand::{surge_weights, LevelGrid, MarketDemand};
    use cloud_sim::rng::SimRng;
    use cloud_sim::time::SimTime;

    let profile = DemandProfile::paper_calibration();
    let grid = LevelGrid::new(&profile);
    let sw = surge_weights(
        &profile.level_multiples,
        0.85,
        profile.surge_bid_decay,
        profile.surge_bid_cap_share,
    );
    let mut group = c.benchmark_group("tick_component");
    group.bench_function("market_demand_tick", |b| {
        let mut demand = MarketDemand::new();
        let mut rng = SimRng::seed_from(5);
        let mut t = 0u64;
        b.iter(|| {
            t += 300;
            demand.tick(SimTime::from_secs(t), &profile, &mut rng);
        });
    });
    group.bench_function("level_masses_and_clear", |b| {
        let demand = MarketDemand::new();
        let mut out = vec![0.0; grid.len()];
        b.iter(|| {
            demand.level_masses_into(&grid, 50.0, &sw, &mut out);
            black_box(clear(&profile.level_multiples, &out, 40.0))
        });
    });
    // The fused path `clear_markets` actually runs: fixed-width mass
    // fill + running total, then the branch-free 15-level walk.
    group.bench_function("level_masses_and_clear_fused", |b| {
        use cloud_sim::market::clear_with_total;
        let demand = MarketDemand::new();
        let mut out = vec![0.0; grid.len()];
        b.iter(|| {
            let total = demand.level_masses_and_total_into(&grid, 50.0, &sw, &mut out);
            black_box(clear_with_total(
                &profile.level_multiples,
                &out,
                total,
                40.0,
            ))
        });
    });
    group.bench_function("clear_markets_only_testbed", |b| {
        let mut cloud = testbed_cloud(4);
        b.iter(|| {
            cloud.bench_clear_markets();
            black_box(cloud.now());
        });
    });
    group.bench_function("standard_normal", |b| {
        let mut rng = SimRng::seed_from(6);
        b.iter(|| black_box(rng.standard_normal()));
    });
    group.finish();
}

fn bench_clearing(c: &mut Criterion) {
    let multiples: Vec<f64> = vec![
        0.08, 0.12, 0.18, 0.25, 0.35, 0.5, 0.7, 0.85, 1.0, 1.3, 1.8, 2.5, 4.0, 6.0, 10.0,
    ];
    let masses: Vec<f64> = (0..15).map(|i| 10.0 / (i + 1) as f64).collect();
    c.bench_function("auction_clear_15_levels", |b| {
        b.iter(|| black_box(clear(&multiples, &masses, black_box(12.5))))
    });
}

fn bench_probe_roundtrip(c: &mut Criterion) {
    c.bench_function("od_probe_roundtrip", |b| {
        b.iter_batched_ref(
            || testbed_cloud(2),
            |cloud| {
                let market = cloud.catalog().markets()[0];
                if let Ok(id) = cloud.run_od_instance(market) {
                    let _ = cloud.terminate_od_instance(id);
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("spot_probe_roundtrip", |b| {
        b.iter_batched_ref(
            || testbed_cloud(3),
            |cloud| {
                let market = cloud.catalog().markets()[0];
                let bid = cloud.oracle_published_price(market).unwrap();
                if let Ok(sub) = cloud.request_spot_instance(market, bid) {
                    let _ = cloud.terminate_spot_instance(sub.id);
                    let _ = cloud.cancel_spot_request(sub.id);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_tick,
    bench_tick_threads,
    bench_pool_dispatch,
    bench_tick_components,
    bench_clearing,
    bench_probe_roundtrip
);
criterion_main!(benches);
