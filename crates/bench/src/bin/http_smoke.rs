//! End-to-end smoke test of the HTTP query service against a durable
//! store: concurrent clients, hostile clients (slow-loris, oversized,
//! malformed), and a mid-flight graceful drain that must leave the
//! store closed cleanly (zero-replay restart).
//!
//! Run via `scripts/http_smoke.sh` (part of the verify path). Exits
//! non-zero on the first violated invariant; prints one `ok <what>`
//! line per section.

use cloud_sim::time::SimTime;
use spotlight_bench::feed_synthetic_spaced;
use spotlight_core::durable::{DurableOptions, FsyncPolicy};
use spotlight_core::snapshot::SnapshotHub;
use spotlight_core::store::{DataStore, SharedStore};
use spotlight_persist::tempdir::TempDir;
use spotlight_serve::client::Client;
use spotlight_serve::parser::Limits;
use spotlight_serve::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Probes fed into the durable store (~42 simulated hours at 3 s).
const RECORDS: u64 = 50_000;
const SPACING: u64 = 3;
/// Well-behaved concurrent clients and requests each.
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 200;

const PATHS: [&str; 8] = [
    "/v1/availability?market=us-east-1a/c3.large/linux&kind=od",
    "/v1/availability?market=us-east-1b/c3.xlarge/linux&kind=spot",
    "/v1/freshness?market=us-east-1a/c3.large/linux",
    "/v1/spike-rates?thresholds=1.25,2,5&window_secs=3600",
    "/v1/bid-spread?market=us-east-1a/c3.large/linux",
    "/v1/advisor/top?region=us-east-1&n=5",
    "/v1/advisor/fallbacks?market=us-east-1a/c3.large/linux&n=3",
    "/healthz",
];

fn ok(what: &str) {
    println!("ok {what}");
}

/// Raw request → (status, closed). Accepts early close as status 0.
fn raw_roundtrip(addr: SocketAddr, bytes: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(bytes).expect("write raw request");
    let mut response = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                if response.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    let head = String::from_utf8_lossy(&response);
    head.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let tmp = TempDir::new("http-smoke");
    let dir = tmp.path().join("store");

    // ---- seed a durable store and publish a snapshot ----
    let store = DataStore::create_durable(
        &dir,
        DurableOptions {
            fsync: FsyncPolicy::Never,
            queue_capacity: 65_536,
            ..DurableOptions::default()
        },
    )
    .expect("create durable store");
    feed_synthetic_spaced(&store, RECORDS, SPACING);
    store.flush().expect("flush");
    let store: SharedStore = Arc::new(store);
    let as_of = SimTime::from_secs(RECORDS * SPACING);
    let hub = Arc::new(SnapshotHub::new(store.snapshot(as_of)));
    ok("seeded durable store");

    let config = ServerConfig {
        workers: 3,
        queue_depth: 64,
        max_connections: 64,
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(500),
        header_deadline: Duration::from_millis(600),
        limits: Limits::default(),
        ..ServerConfig::default()
    };
    let header_deadline = config.header_deadline;
    let server =
        Server::start("127.0.0.1:0", &store, Arc::clone(&hub), config).expect("start server");
    let addr = server.local_addr();

    // ---- readiness up front ----
    let mut client = Client::connect(addr, Duration::from_secs(2)).expect("connect");
    let resp = client.get("/readyz").expect("readyz");
    assert_eq!(resp.status, 200, "readyz before drain: {}", resp.body);
    assert!(resp.body.contains("\"ready\":true"), "{}", resp.body);
    let resp = client.get("/healthz").expect("healthz");
    assert!(
        resp.body.contains("\"available\":true"),
        "healthz must see the live store: {}",
        resp.body
    );
    ok("healthz/readyz surface the live store");

    // ---- concurrent well-behaved clients over every endpoint ----
    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, Duration::from_secs(5)).expect("connect");
            for i in 0..REQUESTS_PER_CLIENT {
                let path = PATHS[(t + i) % PATHS.len()];
                let resp = client.get(path).expect("request");
                assert_eq!(
                    resp.status, 200,
                    "GET {path} -> {} {}",
                    resp.status, resp.body
                );
                assert!(
                    resp.body.starts_with('{'),
                    "GET {path}: non-JSON body {}",
                    resp.body
                );
            }
        }));
    }

    // ---- hostile clients, concurrently with the load above ----
    // Malformed / unsupported / oversized each get the right status.
    assert_eq!(raw_roundtrip(addr, b"GARBAGE\r\n\r\n"), 400, "malformed");
    assert_eq!(
        raw_roundtrip(addr, b"POST /v1/availability HTTP/1.1\r\n\r\n"),
        405,
        "method not allowed"
    );
    assert_eq!(
        raw_roundtrip(addr, b"GET / HTTP/2.0\r\n\r\n"),
        505,
        "version not supported"
    );
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(4096));
    assert_eq!(
        raw_roundtrip(addr, long_line.as_bytes()),
        414,
        "uri too long"
    );
    let big_headers = format!(
        "GET /healthz HTTP/1.1\r\n{}\r\n",
        "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n".repeat(300)
    );
    assert_eq!(
        raw_roundtrip(addr, big_headers.as_bytes()),
        431,
        "headers too large"
    );
    let oversized_body = "GET /healthz HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
    assert_eq!(
        raw_roundtrip(addr, oversized_body.as_bytes()),
        413,
        "body too large"
    );
    assert_eq!(
        raw_roundtrip(addr, b"GET /no/such/route HTTP/1.1\r\n\r\n"),
        404,
        "unknown route"
    );
    assert_eq!(
        raw_roundtrip(addr, b"GET /v1/availability?market=bogus HTTP/1.1\r\n\r\n"),
        400,
        "bad market parameter"
    );
    ok("hostile inputs answered with the right statuses");

    // Slow-loris: dribble a header forever; the deadline must cut it
    // off with 408 well before it completes.
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect loris");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let started = Instant::now();
        let _ = stream.write_all(b"GET /healthz HTT");
        // Keep dribbling until the server gives up on us.
        loop {
            std::thread::sleep(Duration::from_millis(50));
            if stream.write_all(b"P").is_err() {
                break; // server already closed
            }
            let mut chunk = [0u8; 512];
            let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
            match stream.read(&mut chunk) {
                Ok(n) if n > 0 => {
                    let head = String::from_utf8_lossy(&chunk[..n]).to_string();
                    assert!(
                        head.starts_with("HTTP/1.1 408"),
                        "slow-loris got {head:?}, wanted 408"
                    );
                    return started.elapsed();
                }
                Ok(_) => break, // clean close
                Err(_) => {}    // still waiting
            }
            assert!(
                started.elapsed() < Duration::from_secs(8),
                "slow-loris connection neither answered nor closed"
            );
        }
        started.elapsed()
    });
    let loris_lived = loris.join().expect("slow-loris thread");
    assert!(
        loris_lived >= header_deadline / 2,
        "slow-loris cut off suspiciously early ({loris_lived:?})"
    );
    ok("slow-loris cut off by the header deadline");

    for h in handles {
        h.join().expect("well-behaved client");
    }
    ok("concurrent clients all served");

    // ---- mid-flight drain: in-flight requests finish, then close ----
    let inflight = std::thread::spawn(move || {
        let mut served = 0u32;
        let mut client = Client::connect(addr, Duration::from_secs(5)).expect("connect");
        loop {
            match client.get("/v1/spike-rates") {
                Ok(resp) if resp.status == 200 => served += 1,
                Ok(resp) => {
                    // Drain rejection must advertise backoff.
                    assert_eq!(resp.status, 503, "{}", resp.body);
                    assert!(resp.header("retry-after").is_some());
                    break;
                }
                Err(_) => break, // server closed the connection
            }
        }
        served
    });
    // One hostile straggler mid-drain: drain must not wait for it
    // beyond the header deadline.
    let mut straggler = TcpStream::connect(addr).expect("connect straggler");
    straggler
        .write_all(b"GET /healthz HT")
        .expect("partial head");
    std::thread::sleep(Duration::from_millis(50));

    let report = server.drain(Duration::from_secs(10));
    assert!(!report.forced, "drain hit the deadline: {:?}", report.stats);
    assert_eq!(
        report.stats.responses_5xx, 0,
        "handler 5xx: {:?}",
        report.stats
    );
    assert_eq!(report.stats.panics, 0, "worker panics: {:?}", report.stats);
    let served = inflight.join().expect("in-flight client");
    assert!(served > 0, "in-flight client never got an answer");
    drop(straggler);

    // New connections must now be refused outright.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after drain"
    );
    ok("graceful drain finished in-flight work and stopped the listener");

    // ---- zero-replay restart: drain left us the last strong Arc ----
    let store = Arc::try_unwrap(store).expect("server must not retain the store");
    store.close().expect("clean close");
    let (reopened, info) =
        DataStore::recover_with_report(&dir, DurableOptions::default()).expect("recover");
    assert_eq!(info.replayed_ops, 0, "clean shutdown must not replay");
    assert!(info.from_clean_shutdown, "close marker missing");
    assert_eq!(reopened.read().len(), RECORDS as usize, "records lost");
    ok("drained store closed cleanly: zero-replay restart");

    println!("http_smoke: all sections passed");
}
