//! Load generator for the HTTP query service: capacity, overload, and
//! drain, reported as one JSON line for `scripts/bench_snapshot.sh`.
//!
//! Three phases:
//!
//! 1. **Capacity** — a month-scale (1M-record) store is snapshotted
//!    and served; pipelined keep-alive clients drive availability
//!    queries closed-loop and report qps, p50, and p99.
//! 2. **Overload** — a deliberately constrained server (one worker,
//!    tiny dispatch queue) is measured closed-loop with short-lived
//!    connections, then offered paced open-loop load at 1×, 2×, and 4×
//!    that capacity. The excess must be *shed* (`503 + Retry-After`),
//!    not queued: accepted-request p99 at 2× must stay within 5× the
//!    1× p99, with zero 5xx responses from handlers and zero panics.
//! 3. **Drain** — graceful shutdown must join every thread without
//!    hitting the deadline.
//!
//! `--check` turns the report into a gate (non-zero exit on violation)
//! for `scripts/bench_check.sh`. `LOADGEN_MIN_QPS` overrides the
//! capacity floor (default 100_000).

use cloud_sim::time::SimTime;
use spotlight_bench::synthetic_store_spaced;
use spotlight_core::snapshot::SnapshotHub;
use spotlight_core::store::SharedStore;
use spotlight_serve::client::Client;
use spotlight_serve::server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Records in the capacity-phase store (~one simulated month at 3 s
/// spacing).
const RECORDS: u64 = 1_000_000;
const SPACING: u64 = 3;
/// Requests pipelined per batch in the capacity phase.
const PIPELINE: usize = 64;
/// Closed-loop client threads in the capacity phase.
const CAPACITY_CLIENTS: usize = 2;
/// Paced client threads in the overload phases.
const OVERLOAD_CLIENTS: usize = 4;

const QUERY_PATHS: [&str; 4] = [
    "/v1/availability?market=us-east-1a/c3.large/linux&kind=od",
    "/v1/availability?market=us-east-1b/c3.xlarge/linux&kind=od",
    "/v1/availability?market=us-east-1c/c3.2xlarge/linux&kind=od",
    "/v1/availability?market=us-east-1a/m3.large/linux&kind=spot",
];

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

struct PhaseReport {
    mult: u64,
    offered_qps: f64,
    accepted_qps: f64,
    accepted: u64,
    shed_503: u64,
    errors: u64,
    p50_us: u64,
    p99_us: u64,
}

/// Closed-loop pipelined capacity measurement over keep-alive
/// connections.
fn capacity_phase(addr: SocketAddr, window: Duration) -> (f64, u64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..CAPACITY_CLIENTS {
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut client =
                Client::connect(addr, Duration::from_secs(2)).expect("connect capacity client");
            let mut latencies_us: Vec<u64> = Vec::with_capacity(1 << 18);
            let mut done = 0u64;
            let path = QUERY_PATHS[t % QUERY_PATHS.len()];
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                for _ in 0..PIPELINE {
                    client.send_get(path).expect("pipelined send");
                }
                for _ in 0..PIPELINE {
                    let resp = client.read_response().expect("pipelined response");
                    assert_eq!(resp.status, 200, "capacity query failed: {}", resp.body);
                    latencies_us.push(t0.elapsed().as_micros() as u64);
                }
                done += PIPELINE as u64;
            }
            (done, latencies_us)
        }));
    }
    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut total = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let (done, lats) = h.join().expect("capacity client");
        total += done;
        latencies.extend(lats);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    (
        total as f64 / elapsed,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    )
}

/// One short-lived connection round-trip, classified.
enum Attempt {
    Accepted(u64),
    Shed,
    Error,
}

fn one_shot(addr: SocketAddr, path: &str) -> Attempt {
    let t0 = Instant::now();
    let Ok(mut client) = Client::connect(addr, Duration::from_millis(500)) else {
        return Attempt::Error;
    };
    match client.get(path) {
        Ok(resp) if resp.status == 200 => Attempt::Accepted(t0.elapsed().as_micros() as u64),
        Ok(resp) if resp.status == 503 => {
            // Shed responses must carry the backoff hint.
            assert!(
                resp.header("retry-after").is_some(),
                "503 without Retry-After"
            );
            Attempt::Shed
        }
        Ok(_) | Err(_) => Attempt::Error,
    }
}

/// Closed-loop short-lived-connection capacity of the constrained
/// server — the 1× reference rate for the paced phases.
fn constrained_capacity(addr: SocketAddr, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let count = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let stop = Arc::clone(&stop);
        let count = Arc::clone(&count);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Attempt::Accepted(_) = one_shot(addr, QUERY_PATHS[0]) {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    let started = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("constrained client");
    }
    count.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64()
}

/// Offers `target_qps` of short-lived connections for `window`,
/// classifying every attempt. Client concurrency scales with the
/// multiple: each attempt blocks for roughly one service time, so a
/// fixed thread pool could never offer more than 1× — the extra
/// threads are what turns "2× offered" into real concurrent demand.
fn paced_phase(addr: SocketAddr, mult: u64, target_qps: f64, window: Duration) -> PhaseReport {
    let threads = OVERLOAD_CLIENTS * mult as usize;
    let per_thread = target_qps / threads as f64;
    let interval = Duration::from_secs_f64(1.0 / per_thread.max(1.0));
    let mut handles = Vec::new();
    for _ in 0..threads {
        handles.push(std::thread::spawn(move || {
            let deadline = Instant::now() + window;
            let mut next = Instant::now();
            let mut offered = 0u64;
            let mut shed = 0u64;
            let mut errors = 0u64;
            let mut latencies_us = Vec::new();
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                if now < next {
                    std::thread::sleep(next - now);
                }
                offered += 1;
                match one_shot(addr, QUERY_PATHS[(offered % 4) as usize]) {
                    Attempt::Accepted(us) => latencies_us.push(us),
                    Attempt::Shed => shed += 1,
                    Attempt::Error => errors += 1,
                }
                next += interval;
                // A blocked thread re-syncs instead of bursting to
                // catch up (open-loop pacing, not a retry storm).
                if Instant::now() > next + Duration::from_millis(250) {
                    next = Instant::now();
                }
            }
            (offered, shed, errors, latencies_us)
        }));
    }
    let started = Instant::now();
    let mut offered = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        let (o, s, e, lats) = h.join().expect("paced client");
        offered += o;
        shed += s;
        errors += e;
        latencies.extend(lats);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    PhaseReport {
        mult,
        offered_qps: offered as f64 / elapsed,
        accepted_qps: latencies.len() as f64 / elapsed,
        accepted: latencies.len() as u64,
        shed_503: shed,
        errors,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let records = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(RECORDS);
    let window_ms: u64 = args
        .iter()
        .position(|a| a == "--window-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let window = Duration::from_millis(window_ms);
    let overload_window = Duration::from_millis(window_ms.max(500));

    eprintln!("loadgen: seeding {records} records...");
    let store: SharedStore = Arc::new(synthetic_store_spaced(records, SPACING));
    let as_of = SimTime::from_secs(records * SPACING);
    let hub = Arc::new(SnapshotHub::new(store.snapshot(as_of)));

    // ---- phase 1: capacity over snapshots, pipelined keep-alive ----
    let capacity_config = ServerConfig {
        workers: 2,
        queue_depth: 256,
        max_connections: 256,
        max_requests_per_conn: u64::MAX,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", &store, Arc::clone(&hub), capacity_config)
        .expect("start capacity server");
    let addr = server.local_addr();
    eprintln!("loadgen: capacity phase ({window_ms} ms closed-loop)...");
    let (capacity_qps, cap_p50_us, cap_p99_us) = capacity_phase(addr, window);
    let cap_stats = server.stats();
    let report = server.drain(Duration::from_secs(5));
    assert!(!report.forced, "capacity server failed to drain");

    // ---- phase 2: overload against a constrained server ----
    let constrained_config = ServerConfig {
        workers: 1,
        queue_depth: 2,
        max_connections: 4,
        read_timeout: Duration::from_millis(250),
        write_timeout: Duration::from_millis(250),
        header_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", &store, Arc::clone(&hub), constrained_config)
        .expect("start constrained server");
    let addr = server.local_addr();
    eprintln!("loadgen: measuring constrained capacity...");
    let constrained_qps = constrained_capacity(addr, Duration::from_millis(window_ms.max(500)));
    let mut phases = Vec::new();
    for mult in [1u64, 2, 4] {
        eprintln!("loadgen: offered load at {mult}x ({constrained_qps:.0} qps base)...");
        phases.push(paced_phase(
            addr,
            mult,
            constrained_qps * mult as f64,
            overload_window,
        ));
    }
    let overload_stats = server.stats();
    let report = server.drain(Duration::from_secs(5));
    assert!(!report.forced, "constrained server failed to drain");

    let panics = cap_stats.panics + overload_stats.panics;
    let responses_5xx = cap_stats.responses_5xx + overload_stats.responses_5xx;

    let mut out = String::new();
    out.push_str(&format!(
        "{{\"bench\":\"http_loadgen\",\"records\":{records},\
         \"capacity_qps\":{capacity_qps:.0},\
         \"capacity_p50_us\":{cap_p50_us},\"capacity_p99_us\":{cap_p99_us},\
         \"constrained_qps\":{constrained_qps:.0},\"overload\":["
    ));
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"mult\":{},\"offered_qps\":{:.0},\"accepted_qps\":{:.0},\
             \"accepted\":{},\"shed_503\":{},\"errors\":{},\
             \"p50_us\":{},\"p99_us\":{}}}",
            p.mult,
            p.offered_qps,
            p.accepted_qps,
            p.accepted,
            p.shed_503,
            p.errors,
            p.p50_us,
            p.p99_us
        ));
    }
    out.push_str(&format!(
        "],\"shed_total\":{},\"responses_5xx\":{responses_5xx},\"panics\":{panics}}}",
        overload_stats.shed
    ));
    println!("{out}");

    if check {
        let min_qps: f64 = std::env::var("LOADGEN_MIN_QPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000.0);
        let mut failures = Vec::new();
        if capacity_qps < min_qps {
            failures.push(format!(
                "capacity {capacity_qps:.0} qps below the {min_qps:.0} floor"
            ));
        }
        let p1 = &phases[0];
        let p2 = &phases[1];
        if p2.shed_503 == 0 {
            failures.push("no load was shed at 2x offered load".into());
        }
        // Floor the 1x baseline at 200 us so a lucky sub-100 us p99
        // doesn't turn measurement noise into a failure.
        let p99_budget = 5 * p1.p99_us.max(200);
        if p2.p99_us > p99_budget {
            failures.push(format!(
                "2x accepted p99 {} us exceeds 5x the 1x p99 ({} us budget)",
                p2.p99_us, p99_budget
            ));
        }
        if responses_5xx > 0 {
            failures.push(format!("{responses_5xx} handler 5xx responses"));
        }
        if panics > 0 {
            failures.push(format!("{panics} worker panics"));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("loadgen check FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("loadgen check: ok");
    }
}
