//! Measures the store's resident footprint before and after
//! `DataStore::compact` on a month-scale synthetic study (one million
//! probes + spikes packed into ~35 simulated days, horizon = last three
//! days retained), printing one JSON object for
//! `scripts/bench_snapshot.sh` to embed in BENCH_PR<N>.json.
//!
//! It also re-runs the summarized queries after compaction and panics
//! if any answer moved — the snapshot doubles as an exactness check.
//!
//! A second pass drives the same stream through a **durable** store:
//! it reports the on-disk footprint (WAL + checkpoint + sealed spill
//! segments) next to the resident one, and times a full crash-recovery
//! replay of the log.

use cloud_sim::ids::MarketId;
use cloud_sim::time::{SimDuration, SimTime};
use spotlight_bench::{feed_synthetic_spaced, synthetic_store_spaced};
use spotlight_core::probe::ProbeKind;
use spotlight_core::query::SpotLightQuery;
use spotlight_core::store::DataStore;
use spotlight_core::{DurableOptions, FsyncPolicy};
use spotlight_persist::tempdir::TempDir;
use std::time::Instant;

const RECORDS: u64 = 1_000_000;
const SPACING: u64 = 3;

fn summarized_answers(
    store: &spotlight_core::store::DataStore,
    span_end: SimTime,
) -> Vec<(MarketId, u64, u64, u64)> {
    let read = store.read();
    let mut markets: Vec<MarketId> = read.probed_markets().collect();
    markets.sort_by_key(|m| m.to_string());
    let query = SpotLightQuery::new(&read, SimTime::ZERO, span_end);
    markets
        .iter()
        .map(|&m| {
            let st = query.availability(m, ProbeKind::OnDemand);
            (
                m,
                st.probes,
                st.rejections,
                query.unavailable_seconds(m, ProbeKind::OnDemand),
            )
        })
        .collect()
}

fn main() {
    let store = synthetic_store_spaced(RECORDS, SPACING);
    let span_end = SimTime::from_secs(RECORDS * SPACING + 1);
    let horizon = SimTime::from_secs(
        span_end
            .as_secs()
            .saturating_sub(SimDuration::days(3).as_secs()),
    );

    let before = summarized_answers(&store, span_end);
    let records_before = store.resident_records();
    let bytes_before = store.resident_bytes();

    let dropped = store.compact(horizon);

    let records_after = store.resident_records();
    let bytes_after = store.resident_bytes();
    let after = summarized_answers(&store, span_end);
    assert_eq!(
        before, after,
        "summarized queries must be unchanged by compaction"
    );

    // The durable twin: same stream through the WAL, spill-compaction
    // sealing the dropped records, then a timed full-log recovery and a
    // checkpoint to show the pruned steady-state footprint.
    let tmp = TempDir::new("footprint-durable");
    let dir = tmp.path().join("store");
    let durable = DataStore::create_durable(
        &dir,
        DurableOptions {
            fsync: FsyncPolicy::Never,
            queue_capacity: 65_536,
            ..DurableOptions::default()
        },
    )
    .expect("create durable store");
    feed_synthetic_spaced(&durable, RECORDS, SPACING);
    durable.flush().expect("flush");
    let disk_after_ingest = durable.disk_bytes().expect("disk bytes");
    durable.compact(horizon);
    let durable_stats = durable.durability_stats().expect("stats");
    assert_eq!(durable_stats.io_errors, 0, "{:?}", durable_stats.last_error);
    let spilled_records = durable_stats.spilled_records;
    let wal_io_errors = durable_stats.io_errors;
    let ops_dropped = durable_stats.ops_dropped;
    let durability_mode = format!("{:?}", durable_stats.mode);
    drop(durable);

    let recover_start = Instant::now();
    let recovered = DataStore::recover(&dir).expect("recover");
    let recover_ms = recover_start.elapsed().as_millis();
    assert_eq!(
        recovered.len() as u64,
        RECORDS,
        "recovery must replay the full history"
    );
    recovered.checkpoint().expect("checkpoint");
    let spill_bytes: u64 = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("spill-"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    let disk_after_checkpoint = recovered.disk_bytes().expect("disk bytes");

    println!(
        "{{\"records\":{RECORDS},\"spacing_secs\":{SPACING},\
         \"retention_days\":3,\
         \"resident_records_before\":{records_before},\
         \"resident_records_after\":{records_after},\
         \"resident_bytes_before\":{bytes_before},\
         \"resident_bytes_after\":{bytes_after},\
         \"dropped_probes\":{},\"dropped_spikes\":{},\
         \"records_reduction_pct\":{:.1},\
         \"disk_bytes_after_ingest\":{disk_after_ingest},\
         \"disk_bytes_after_checkpoint\":{disk_after_checkpoint},\
         \"spill_segment_bytes\":{spill_bytes},\
         \"spilled_records\":{spilled_records},\
         \"wal_io_errors\":{wal_io_errors},\
         \"ops_dropped\":{ops_dropped},\
         \"durability_mode\":\"{durability_mode}\",\
         \"recover_ms\":{recover_ms}}}",
        dropped.dropped_probes,
        dropped.dropped_spikes,
        100.0 * (1.0 - records_after as f64 / records_before.max(1) as f64),
    );
}
