//! Kill-9 crash-torture harness for the durable probe store.
//!
//! The parent forks a real child process (this same binary) that
//! ingests a deterministic probe stream into a durable store, acking a
//! watermark after every `flush()` — an acked op index is *provably on
//! disk*. The parent then `SIGKILL`s the child at a scheduled point:
//!
//! * **append** — a random delay, landing between WAL writes;
//! * **checkpoint** — the instant the child announces a checkpoint,
//!   landing inside the capture/rotate/write/prune protocol;
//! * **spill** — the instant the child announces a compaction, landing
//!   inside the spill-then-drop protocol.
//!
//! Phase accounting is honest: the child brackets each checkpoint and
//! compaction with `phase <name>-begin` / `phase <name>-end` lines, and
//! a round is credited to the phase whose `begin` had no matching `end`
//! when the pipe went silent — not to the phase the parent *aimed* for.
//! The run loops until every phase took at least [`MIN_PER_PHASE`] real
//! kills and the total reaches [`MIN_TOTAL`].
//!
//! After each kill the parent recovers the directory and verifies:
//!
//! 1. every op at or before the last acked watermark survived (per
//!    market: the store's running counters cover the acked prefix);
//! 2. the survivors are exactly a per-market prefix of the generated
//!    stream: an in-memory twin store fed the same prefix must match
//!    the recovered store bit-for-bit on every counter and interval
//!    (`len`, `total_cost`, per-market `ProbeStats`, unavailability);
//! 3. recovery is deterministic: recovering the same directory twice
//!    yields identical state.
//!
//! Finally two clean-shutdown rounds assert that `close()` leaves a
//! marker that lets recovery skip the tail scan entirely
//! (`replayed_ops == 0`).
//!
//! Run via `scripts/torture_smoke.sh` (part of the verify path).

use cloud_sim::ids::{Az, MarketId, Platform, Region};
use cloud_sim::price::Price;
use cloud_sim::rng::SimRng;
use cloud_sim::time::SimTime;
use spotlight_core::durable::{DurableOptions, RecoveryInfo};
use spotlight_core::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
use spotlight_core::store::DataStore;
use spotlight_persist::tempdir::TempDir;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Markets the child spreads its stream across.
const MARKETS: u8 = 6;
/// Cost of every probe (so `total_cost` is a pure function of `len`).
const COST_MICROS: u64 = 100_000;
/// Child: flush + ack cadence during the torture window.
const ACK_EVERY: u64 = 400;
/// Child: checkpoint cadence (ops) during the torture window.
const CKPT_EVERY: u64 = 1_500;
/// Child: compaction cadence (ops) during the torture window.
const COMPACT_EVERY: u64 = 3_500;
/// Child: ops ingested before the torture window opens, so checkpoints
/// have real state to serialize (wider kill windows).
const BULK_OPS: u64 = 20_000;
/// Child: a suppressed-probe record rides along every Nth op.
const SUPPRESS_EVERY: u64 = 97;
/// Ops a clean-shutdown child ingests before `close()`.
const CLEAN_OPS: u64 = 5_000;
/// Every phase must absorb at least this many kills...
const MIN_PER_PHASE: u64 = 4;
/// ...and the total at least this many.
const MIN_TOTAL: u64 = 21;
/// Hard cap on kill rounds before the harness gives up.
const MAX_ROUNDS: u64 = 120;

fn market(i: u8) -> MarketId {
    MarketId {
        az: Az::new(Region::UsEast1, i),
        instance_type: "c3.large".parse().expect("instance type"),
        platform: Platform::LinuxUnix,
    }
}

/// The deterministic op stream: both the child (to record) and the
/// parent (to verify) derive it from the round seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Op {
    market_idx: u8,
    rejected: bool,
}

fn op_for(seed: u64, i: u64) -> Op {
    let mix = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Op {
        market_idx: ((mix >> 32) % u64::from(MARKETS)) as u8,
        rejected: mix.is_multiple_of(3),
    }
}

fn probe_for(seed: u64, i: u64) -> ProbeRecord {
    let op = op_for(seed, i);
    ProbeRecord {
        at: SimTime::from_secs(i + 1),
        market: market(op.market_idx),
        kind: ProbeKind::OnDemand,
        trigger: ProbeTrigger::Periodic,
        outcome: if op.rejected {
            ProbeOutcome::InsufficientCapacity
        } else {
            ProbeOutcome::Fulfilled
        },
        spot_ratio: 2.0,
        bid: None,
        cost: Price::from_micros(COST_MICROS),
    }
}

// ---------------------------------------------------------------------
// Child: durable ingest until SIGKILL (or a clean close).
// ---------------------------------------------------------------------

fn run_child(dir: &Path, seed: u64, clean: bool) {
    let store = DataStore::create_durable(dir, DurableOptions::default()).expect("create store");
    let mut i = 0u64;
    loop {
        store.record_probe(probe_for(seed, i));
        let done = i + 1;
        if done.is_multiple_of(SUPPRESS_EVERY) {
            store.record_suppressed();
        }
        if clean && done == CLEAN_OPS {
            store.close().expect("close");
            println!("closed");
            return;
        }
        if done.is_multiple_of(ACK_EVERY) {
            store.flush().expect("flush");
            // Everything at or before `i` is on disk from here on.
            println!("acked {i}");
        }
        if done > BULK_OPS {
            if done.is_multiple_of(CKPT_EVERY) {
                println!("phase checkpoint-begin");
                store.checkpoint().expect("checkpoint");
                println!("phase checkpoint-end");
            }
            if done.is_multiple_of(COMPACT_EVERY) {
                println!("phase compact-begin");
                store.compact(SimTime::from_secs(done.saturating_sub(2_000)));
                println!("phase compact-end");
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Parent: kill scheduling, output accounting, recovery verification.
// ---------------------------------------------------------------------

/// What the parent aims the kill at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillPlan {
    /// Kill after this delay once the torture window is open.
    AfterDelay(Duration),
    /// Kill the moment a `checkpoint-begin` marker arrives.
    OnCheckpointBegin,
    /// Kill the moment a `compact-begin` marker arrives.
    OnCompactBegin,
}

/// Which phase the child actually died in (honest accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    Append,
    Checkpoint,
    Compact,
}

/// Everything the child said before dying, digested.
#[derive(Debug, Default)]
struct ChildLog {
    /// Highest acked op index, if any ack arrived.
    acked: Option<u64>,
    /// The phase open (begin without end) when the output stopped.
    open_phase: Option<Phase>,
    /// Whether any compaction *completed* before death.
    saw_marker: bool,
}

impl ChildLog {
    fn ingest_line(&mut self, line: &str) {
        if let Some(rest) = line.strip_prefix("acked ") {
            // A torn final line (killed mid-write) parses as garbage;
            // ignore it — the previous ack stands.
            if let Ok(i) = rest.trim().parse::<u64>() {
                self.acked = Some(i);
            }
        } else if let Some(rest) = line.strip_prefix("phase ") {
            self.saw_marker = true;
            match rest.trim() {
                "checkpoint-begin" => self.open_phase = Some(Phase::Checkpoint),
                "compact-begin" => self.open_phase = Some(Phase::Compact),
                "checkpoint-end" | "compact-end" => self.open_phase = None,
                _ => {}
            }
        }
    }

    fn death_phase(&self) -> Phase {
        self.open_phase.unwrap_or(Phase::Append)
    }
}

/// Spawns a child and a thread pumping its stdout lines to a channel.
fn spawn_child(dir: &Path, seed: u64, clean: bool) -> (Child, Receiver<String>) {
    let exe = std::env::current_exe().expect("current exe");
    let mode = if clean { "--child-clean" } else { "--child" };
    let mut child = Command::new(exe)
        .arg(mode)
        .arg(dir)
        .arg(seed.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    (child, rx)
}

/// One kill round: spawn, kill per plan, digest output, verify.
fn kill_round(round: u64, seed: u64, plan: KillPlan) -> Phase {
    let tmp = TempDir::new(&format!("torture-{round}"));
    let dir = tmp.path().join("store");
    let (mut child, rx) = spawn_child(&dir, seed, false);
    let mut log = ChildLog::default();

    // Phase 1: wait for the torture window (first ack past the bulk).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                log.ingest_line(&line);
                if log.acked.is_some_and(|i| i + 1 >= BULK_OPS) {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                assert!(Instant::now() < deadline, "child never reached the bulk");
            }
            Err(RecvTimeoutError::Disconnected) => panic!("child died before the kill"),
        }
    }

    // Phase 2: kill per plan.
    let kill_deadline = Instant::now() + Duration::from_secs(30);
    let due = |log: &ChildLog, elapsed: Duration| match plan {
        KillPlan::AfterDelay(d) => elapsed >= d,
        KillPlan::OnCheckpointBegin => log.open_phase == Some(Phase::Checkpoint),
        KillPlan::OnCompactBegin => log.open_phase == Some(Phase::Compact),
    };
    let started = Instant::now();
    loop {
        if due(&log, started.elapsed()) || Instant::now() >= kill_deadline {
            child.kill().expect("SIGKILL");
            break;
        }
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(line) => log.ingest_line(&line),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => panic!("child died before the kill"),
        }
    }
    child.wait().expect("reap child");
    // Drain whatever made it into the pipe before the kill landed: the
    // death phase is judged on the complete output, not on the aim.
    while let Ok(line) = rx.recv() {
        log.ingest_line(&line);
    }

    verify_crash_recovery(&dir, seed, &log);
    log.death_phase()
}

/// Recovers a killed child's directory and holds it to the contract.
fn verify_crash_recovery(dir: &Path, seed: u64, log: &ChildLog) {
    let (store, info) =
        DataStore::recover_with_report(dir, DurableOptions::default()).expect("recover");
    verify_against_stream(&store, seed, log.acked);

    // Recovery is deterministic: a second pass over the same directory
    // must reconstruct identical state (the first pass consumed no
    // clean marker — there was none — and appended nothing).
    drop(store);
    let (again, info2) =
        DataStore::recover_with_report(dir, DurableOptions::default()).expect("recover twice");
    assert_eq!(info, info2, "recovery reports diverged");
    assert!(!info.from_clean_shutdown, "a SIGKILL is never clean");
    verify_against_stream(&again, seed, log.acked);
}

/// The core contract: the recovered store equals an in-memory twin fed
/// the exact per-market prefixes that survived, and those prefixes
/// cover the acked watermark.
fn verify_against_stream(store: &DataStore, seed: u64, acked: Option<u64>) {
    let survived = store.len() as u64;

    // Per-market survivor counts, from the running counters (these are
    // compaction-invariant, so this holds even when the child died
    // mid-spill). All generated probes are informative.
    let read = store.read();
    let per_market: Vec<u64> = (0..MARKETS)
        .map(|m| read.probe_stats(market(m), ProbeKind::OnDemand).informative)
        .collect();
    assert_eq!(
        per_market.iter().sum::<u64>(),
        survived,
        "per-market counters must partition the survivors"
    );

    // Watermark: every op at or before the ack is covered.
    let acked_ops = acked.map_or(0, |w| w + 1);
    let mut acked_per_market = vec![0u64; MARKETS as usize];
    let mut acked_suppressed = 0u64;
    for i in 0..acked_ops {
        acked_per_market[op_for(seed, i).market_idx as usize] += 1;
        if (i + 1) % SUPPRESS_EVERY == 0 {
            acked_suppressed += 1;
        }
    }
    for (m, (&got, &need)) in per_market.iter().zip(&acked_per_market).enumerate() {
        assert!(
            got >= need,
            "market {m}: acked {need} ops but only {got} survived"
        );
    }
    assert!(
        store.suppressed_probes() >= acked_suppressed,
        "acked suppressed records lost"
    );
    assert_eq!(
        store.total_cost(),
        Price::from_micros(COST_MICROS * survived),
        "total cost must be a pure function of the survivor count"
    );

    // Twin: replay the generated stream, keeping exactly the surviving
    // per-market prefixes, and demand bit-identical state.
    let twin = DataStore::new();
    let mut remaining: Vec<u64> = per_market.clone();
    let mut left = survived;
    let mut i = 0u64;
    while left > 0 {
        let m = op_for(seed, i).market_idx as usize;
        if remaining[m] > 0 {
            remaining[m] -= 1;
            left -= 1;
            twin.record_probe(probe_for(seed, i));
        }
        i += 1;
        assert!(
            i < acked_ops + 10_000_000,
            "twin replay ran away: survivors are not a per-market prefix"
        );
    }
    assert_eq!(twin.len() as u64, survived);
    assert_eq!(twin.total_cost(), store.total_cost());
    let twin_read = twin.read();
    for m in 0..MARKETS {
        let mkt = market(m);
        assert_eq!(
            read.probe_stats(mkt, ProbeKind::OnDemand),
            twin_read.probe_stats(mkt, ProbeKind::OnDemand),
            "market {m}: probe stats diverge from the generated stream"
        );
        assert_eq!(
            read.is_unavailable(mkt, ProbeKind::OnDemand),
            twin_read.is_unavailable(mkt, ProbeKind::OnDemand),
            "market {m}: unavailability state diverges"
        );
    }
}

/// A clean-shutdown round: the child `close()`s, recovery must skip the
/// tail scan entirely and see every op.
fn clean_round(round: u64, seed: u64) {
    let tmp = TempDir::new(&format!("torture-clean-{round}"));
    let dir = tmp.path().join("store");
    let (mut child, rx) = spawn_child(&dir, seed, true);
    let mut closed = false;
    while let Ok(line) = rx.recv() {
        if line.trim() == "closed" {
            closed = true;
        }
    }
    let status = child.wait().expect("reap child");
    assert!(status.success(), "clean child failed: {status}");
    assert!(closed, "clean child never announced the close");

    let (store, info) =
        DataStore::recover_with_report(&dir, DurableOptions::default()).expect("recover clean");
    assert_eq!(
        info,
        RecoveryInfo {
            replayed_ops: 0,
            from_clean_shutdown: true,
            checkpoint_loaded: true,
        },
        "clean restart must skip the tail scan"
    );
    assert_eq!(store.len() as u64, CLEAN_OPS);
    verify_against_stream(&store, seed, Some(CLEAN_OPS - 1));
}

fn run_parent(base_seed: u64) {
    let mut counts: std::collections::HashMap<Phase, u64> = std::collections::HashMap::new();
    let mut rng = SimRng::seed_from(base_seed ^ 0x7021_7021);
    let mut round = 0u64;
    let quotas_met = |c: &std::collections::HashMap<Phase, u64>| {
        let total: u64 = c.values().sum();
        total >= MIN_TOTAL
            && [Phase::Append, Phase::Checkpoint, Phase::Compact]
                .iter()
                .all(|p| c.get(p).copied().unwrap_or(0) >= MIN_PER_PHASE)
    };
    while !quotas_met(&counts) {
        assert!(
            round < MAX_ROUNDS,
            "phase quotas not met after {MAX_ROUNDS} rounds: {counts:?}"
        );
        // Aim at whatever phase is furthest from its quota; append aims
        // use a random delay so kills land at varied stream positions.
        let want = [Phase::Checkpoint, Phase::Compact, Phase::Append]
            .into_iter()
            .min_by_key(|p| counts.get(p).copied().unwrap_or(0))
            .expect("nonempty");
        let plan = match want {
            Phase::Append => {
                KillPlan::AfterDelay(Duration::from_millis(rng.uniform_usize(5, 150) as u64))
            }
            Phase::Checkpoint => KillPlan::OnCheckpointBegin,
            Phase::Compact => KillPlan::OnCompactBegin,
        };
        let seed = base_seed.wrapping_add(round).wrapping_mul(0x9E37_79B9) | 1;
        let died_in = kill_round(round, seed, plan);
        *counts.entry(died_in).or_insert(0) += 1;
        let total: u64 = counts.values().sum();
        println!(
            "round {round}: aimed {want:?}, died in {died_in:?} \
             (append {}, checkpoint {}, compact {}, total {total})",
            counts.get(&Phase::Append).copied().unwrap_or(0),
            counts.get(&Phase::Checkpoint).copied().unwrap_or(0),
            counts.get(&Phase::Compact).copied().unwrap_or(0),
        );
        round += 1;
    }
    for clean in 0..2u64 {
        clean_round(clean, base_seed.wrapping_add(1000 + clean));
        println!("clean round {clean}: zero-replay restart verified");
    }
    let total: u64 = counts.values().sum();
    println!("torture complete: {total} kills verified across {counts:?}, 2 clean shutdowns");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some(mode @ ("--child" | "--child-clean")) => {
            let dir = Path::new(args.get(2).expect("child needs a directory"));
            let seed: u64 = args
                .get(3)
                .expect("child needs a seed")
                .parse()
                .expect("seed must be a u64");
            run_child(dir, seed, mode == "--child-clean");
        }
        Some(seed) => run_parent(seed.parse().expect("seed must be a u64")),
        None => run_parent(0xF0C5),
    }
}
