//! Shared helpers for the SpotLight benchmark suite.
//!
//! The benches live in `benches/`:
//!
//! * `substrate` — cloud-sim hot paths (tick, clearing, API calls);
//! * `policy` — SpotLight's probing paths;
//! * `analysis` — the Chapter 5 analysis kernels on synthetic stores;
//! * `figures` — one group per paper table/figure, running the
//!   scaled-down experiment end to end;
//! * `ablation` — demand-model parameter sweeps (tick cost vs surge
//!   rates, catalog scale).

use cloud_sim::catalog::Catalog;
use cloud_sim::cloud::Cloud;
use cloud_sim::config::SimConfig;
use cloud_sim::engine::Engine;
use cloud_sim::time::{SimDuration, SimTime};
use spotlight_core::policy::{PolicyConfig, SpotLightConfig};
use spotlight_core::spotlight::SpotLight;
use spotlight_core::store::{shared_store, SharedStore};

/// A warmed-up testbed cloud.
pub fn testbed_cloud(seed: u64) -> Cloud {
    let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(seed));
    cloud.warmup(20);
    cloud
}

/// Runs a small SpotLight study on the testbed and returns its store
/// (the input for analysis and figure benches).
pub fn small_study(seed: u64, days: u64) -> (Cloud, SharedStore, SimTime, SimTime) {
    let mut engine = Engine::new(Catalog::testbed(), SimConfig::paper(seed));
    engine.cloud_mut().warmup(20);
    let start = engine.cloud().now();
    let end = start + SimDuration::days(days);
    let store = shared_store();
    engine.add_agent(Box::new(SpotLight::new(
        SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                subthreshold_sampling: 0.05,
                ..PolicyConfig::default()
            },
            ..SpotLightConfig::default()
        },
        store.clone(),
    )));
    engine.run_until(end);
    let (cloud, _) = engine.into_parts();
    (cloud, store, start, end)
}
