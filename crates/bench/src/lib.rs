//! Shared helpers for the SpotLight benchmark suite.
//!
//! The benches live in `benches/`:
//!
//! * `substrate` — cloud-sim hot paths (tick, clearing, API calls);
//! * `policy` — SpotLight's probing paths;
//! * `analysis` — the Chapter 5 analysis kernels on synthetic stores;
//! * `figures` — one group per paper table/figure, running the
//!   scaled-down experiment end to end;
//! * `store` — probe-database ingest and the indexed query paths,
//!   including scan-oracle comparisons;
//! * `ablation` — demand-model parameter sweeps (tick cost vs surge
//!   rates, catalog scale).

use cloud_sim::catalog::Catalog;
use cloud_sim::cloud::Cloud;
use cloud_sim::config::SimConfig;
use cloud_sim::engine::Engine;
use cloud_sim::ids::{Az, MarketId, Platform, Region};
use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};
use spotlight_core::policy::{PolicyConfig, SpotLightConfig};
use spotlight_core::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
use spotlight_core::spotlight::SpotLight;
use spotlight_core::store::{shared_store, DataStore, SharedStore, SpikeEvent};

/// A warmed-up testbed cloud.
pub fn testbed_cloud(seed: u64) -> Cloud {
    let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(seed));
    cloud.warmup(20);
    cloud
}

/// Runs a small SpotLight study on the testbed and returns its store
/// (the input for analysis and figure benches).
pub fn small_study(seed: u64, days: u64) -> (Cloud, SharedStore, SimTime, SimTime) {
    let mut engine = Engine::new(Catalog::testbed(), SimConfig::paper(seed));
    engine.cloud_mut().warmup(20);
    let start = engine.cloud().now();
    let end = start + SimDuration::days(days);
    let store = shared_store();
    engine.add_agent(Box::new(SpotLight::new(
        SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                subthreshold_sampling: 0.05,
                ..PolicyConfig::default()
            },
            ..SpotLightConfig::default()
        },
        store.clone(),
    )));
    engine.run_until(end);
    let (cloud, _) = engine.into_parts();
    (cloud, store, start, end)
}

/// Deterministic synthetic probe records over a dozen us-east-1
/// markets, time-ordered, with a mix of kinds and outcomes.
/// The spike/trigger price ratio of the `i`-th synthetic record —
/// shared by [`synthetic_probes`] and [`synthetic_store`] so the spike
/// log and the probe log cannot drift apart.
fn synthetic_ratio(i: u64) -> f64 {
    0.2 + ((i * 7919) % 1000) as f64 / 100.0
}

pub fn synthetic_probes(n: u64) -> Vec<ProbeRecord> {
    synthetic_probes_spaced(n, 97)
}

/// Like [`synthetic_probes`] but with a chosen inter-record spacing in
/// seconds — `spacing = 3` packs a million records into roughly one
/// month of simulated time, the month-scale-study shape the
/// `store_window_sweep_1m` benches and compaction measurements use.
pub fn synthetic_probes_spaced(n: u64, spacing: u64) -> Vec<ProbeRecord> {
    let types = ["c3.large", "c3.xlarge", "c3.2xlarge", "m3.large"];
    (0..n)
        .map(|i| {
            let market = MarketId {
                az: Az::new(Region::UsEast1, (i % 3) as u8),
                instance_type: types[(i % 4) as usize].parse().unwrap(),
                platform: Platform::LinuxUnix,
            };
            let ratio = synthetic_ratio(i);
            let unavailable = i % 17 == 0;
            ProbeRecord {
                at: SimTime::from_secs(i * spacing),
                market,
                kind: if i % 5 == 0 {
                    ProbeKind::Spot
                } else {
                    ProbeKind::OnDemand
                },
                trigger: if i % 5 == 0 {
                    ProbeTrigger::Periodic
                } else {
                    ProbeTrigger::PriceSpike { ratio }
                },
                outcome: if unavailable {
                    if i % 5 == 0 {
                        ProbeOutcome::CapacityNotAvailable
                    } else {
                        ProbeOutcome::InsufficientCapacity
                    }
                } else {
                    ProbeOutcome::Fulfilled
                },
                spot_ratio: ratio.min(1.2),
                bid: None,
                cost: Price::ZERO,
            }
        })
        .collect()
}

/// Builds a deterministic synthetic store with `n` probes and spikes —
/// the shared input of the analysis and store benches.
pub fn synthetic_store(n: u64) -> DataStore {
    synthetic_store_spaced(n, 97)
}

/// Like [`synthetic_store`] with a chosen inter-record spacing.
pub fn synthetic_store_spaced(n: u64, spacing: u64) -> DataStore {
    let store = DataStore::new();
    feed_synthetic_spaced(&store, n, spacing);
    store
}

/// Feeds the deterministic probe + spike stream into an existing store
/// — lets the footprint bin drive a durable store with the exact input
/// of [`synthetic_store_spaced`].
pub fn feed_synthetic_spaced(store: &DataStore, n: u64, spacing: u64) {
    for (i, p) in synthetic_probes_spaced(n, spacing).into_iter().enumerate() {
        store.record_spike(SpikeEvent {
            market: p.market,
            at: p.at,
            ratio: synthetic_ratio(i as u64),
            probed: true,
        });
        store.record_probe(p);
    }
}
