//! Developer diagnostic: run the full-scale cloud for a few simulated
//! days and report the statistics that matter for calibrating the
//! demand model against the paper's Chapter 5 shapes.
//!
//! ```sh
//! cargo run --release -p cloud-sim --example calibration_report -- [days] [seed]
//! ```

use cloud_sim::catalog::Catalog;
use cloud_sim::cloud::{Cloud, CloudEvent};
use cloud_sim::config::SimConfig;
use cloud_sim::ids::Region;
use cloud_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let days: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let catalog = Catalog::standard();
    let config = SimConfig::paper(seed);
    println!(
        "catalog: {} markets, {} pools, {} zones",
        catalog.markets().len(),
        catalog.pools().len(),
        catalog.azs().len()
    );

    let mut cloud = Cloud::new(catalog, config);
    let wall = Instant::now();
    let end = SimTime::ZERO + SimDuration::days(days);

    let mut price_changes: u64 = 0;
    let mut spike_events: u64 = 0; // published price >= 1x od
    let mut shortage_starts: HashMap<Region, u64> = HashMap::new();
    let mut max_ratio: f64 = 0.0;
    let mut ratio_buckets = [0u64; 12]; // per spike multiple 1x..>10x

    while cloud.now() < end {
        cloud.tick();
        for ev in cloud.take_events() {
            match ev {
                CloudEvent::PriceChange { market, price, .. } => {
                    price_changes += 1;
                    let od = cloud.catalog().od_price(market);
                    let ratio = price.ratio_to(od);
                    max_ratio = max_ratio.max(ratio);
                    if ratio >= 1.0 {
                        spike_events += 1;
                        let b = (ratio.floor() as usize).min(11);
                        ratio_buckets[b] += 1;
                    }
                }
                CloudEvent::PoolShortageStarted { pool, .. } => {
                    *shortage_starts.entry(pool.az.region()).or_insert(0) += 1;
                }
                _ => {}
            }
        }
    }
    let elapsed = wall.elapsed();
    println!(
        "simulated {days} days in {:.1}s ({:.1} sim-days/s)",
        elapsed.as_secs_f64(),
        days as f64 / elapsed.as_secs_f64()
    );
    println!(
        "price changes: {price_changes} ({:.1}/market/day)",
        price_changes as f64 / cloud.market_count() as f64 / days as f64
    );
    println!("spike (>=1x) events: {spike_events}, max ratio {max_ratio:.1}");
    println!("spikes by floor(ratio): {ratio_buckets:?}");

    // Shortage statistics per region.
    println!("\nshortage starts per region (per pool-day):");
    let mut per_region_pools: HashMap<Region, usize> = HashMap::new();
    for p in cloud.catalog().pools() {
        *per_region_pools.entry(p.az.region()).or_insert(0) += 1;
    }
    for r in Region::ALL {
        let starts = shortage_starts.get(&r).copied().unwrap_or(0);
        let pools = per_region_pools.get(&r).copied().unwrap_or(1);
        println!(
            "  {:16} {:6} starts  ({:.3}/pool/day)",
            r.name(),
            starts,
            starts as f64 / pools as f64 / days as f64
        );
    }

    // Shortage durations from ground truth.
    let mut durations: Vec<f64> = cloud
        .trace()
        .shortages()
        .iter()
        .filter_map(|s| s.end.map(|e| (e - s.start).as_hours_f64()))
        .collect();
    durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !durations.is_empty() {
        let n = durations.len();
        let pct = |q: f64| durations[((n as f64 * q) as usize).min(n - 1)];
        println!(
            "\nshortage durations (h): n={n} p50={:.2} p83={:.2} p95={:.2} max={:.2}",
            pct(0.50),
            pct(0.83),
            pct(0.95),
            durations[n - 1]
        );
        let under_1h = durations.iter().filter(|&&d| d < 1.0).count() as f64 / n as f64;
        let over_10h = durations.iter().filter(|&&d| d > 10.0).count() as f64 / n as f64;
        println!(
            "fraction <1h: {:.2} (paper ~0.83), >10h: {:.3} (paper ~0.05)",
            under_1h, over_10h
        );
    }

    // On-demand availability snapshot across markets (ground truth).
    let mut unavailable = 0usize;
    for &m in cloud.catalog().markets() {
        if cloud.oracle_od_available(m) == Some(false) {
            unavailable += 1;
        }
    }
    println!(
        "\nod-unavailable markets right now: {unavailable}/{} ({:.2}%)",
        cloud.market_count(),
        100.0 * unavailable as f64 / cloud.market_count() as f64
    );
}
