//! The EC2-like public API: the calls SpotLight's probes go through.
//!
//! Every method consumes an API token from the region's rate limiter and
//! honours the per-region service limits of Chapter 4 (at most 20 running
//! on-demand instances and 20 open spot requests). Errors carry the
//! EC2-style error code string via [`ApiError::error_code`]; the one
//! SpotLight cares most about is `InsufficientInstanceCapacity`.

use crate::billing::UsageKind;
use crate::chaos::ApiFault;
use crate::cloud::{Cloud, OdInstance, SpotEval, SpotRequest};
use crate::ids::{InstanceId, MarketId, Region, SpotRequestId};
use crate::lifecycle::{OdState, SpotRequestState, Tracked};
use crate::price::Price;
use crate::time::SimTime;
use crate::trace::PricePoint;
use std::fmt;

/// An error returned by the cloud API.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The platform has no capacity for the requested on-demand instance
    /// — the rejection SpotLight's probing is designed to detect.
    InsufficientInstanceCapacity {
        /// The market that was out of capacity.
        market: MarketId,
    },
    /// The per-region API rate limit was exceeded.
    RequestLimitExceeded {
        /// The throttled region.
        region: Region,
    },
    /// The account's running on-demand instance limit was reached.
    InstanceLimitExceeded {
        /// The limited region.
        region: Region,
    },
    /// The account's open spot request limit was reached.
    SpotRequestLimitExceeded {
        /// The limited region.
        region: Region,
    },
    /// The bid exceeds the 10× on-demand cap (§2.1.3).
    MaxSpotPriceTooHigh {
        /// The market bid on.
        market: MarketId,
        /// The maximum allowed bid.
        cap: Price,
    },
    /// A malformed parameter (unknown market, zero bid, …).
    InvalidParameter(String),
    /// The referenced instance or request does not exist.
    NotFound(String),
    /// The operation is illegal in the object's current state.
    InvalidState(String),
    /// The regional API endpoint is down (injected by a
    /// [`crate::chaos::ChaosConfig`] outage window).
    ServiceUnavailable {
        /// The unreachable region.
        region: Region,
    },
    /// A transient server-side failure (injected by a
    /// [`crate::chaos::ChaosConfig`] error burst). Retrying the same
    /// call later may succeed.
    InternalError {
        /// The failing region.
        region: Region,
    },
}

impl ApiError {
    /// The EC2-style error code string.
    pub fn error_code(&self) -> &'static str {
        match self {
            ApiError::InsufficientInstanceCapacity { .. } => "InsufficientInstanceCapacity",
            ApiError::RequestLimitExceeded { .. } => "RequestLimitExceeded",
            ApiError::InstanceLimitExceeded { .. } => "InstanceLimitExceeded",
            ApiError::SpotRequestLimitExceeded { .. } => "MaxSpotInstanceCountExceeded",
            ApiError::MaxSpotPriceTooHigh { .. } => "SpotMaxPriceTooHigh",
            ApiError::InvalidParameter(_) => "InvalidParameterValue",
            ApiError::NotFound(_) => "InvalidResourceID.NotFound",
            ApiError::InvalidState(_) => "IncorrectState",
            ApiError::ServiceUnavailable { .. } => "Unavailable",
            ApiError::InternalError { .. } => "InternalError",
        }
    }

    /// Whether retrying the same call later can reasonably succeed.
    ///
    /// Throttling, outages, and transient server errors are conditions
    /// of the *endpoint*, not the request — a caller with a backoff
    /// queue should retry them. Everything else either reports a true
    /// observation (`InsufficientInstanceCapacity`), a caller bug
    /// (`InvalidParameter`, `NotFound`, `InvalidState`,
    /// `MaxSpotPriceTooHigh`), or a limit retrying cannot lift
    /// (`InstanceLimitExceeded`, `SpotRequestLimitExceeded` — those
    /// clear only when the caller releases resources).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::RequestLimitExceeded { .. }
                | ApiError::ServiceUnavailable { .. }
                | ApiError::InternalError { .. }
        )
    }

    /// The region the error originated in, when it is a regional
    /// (endpoint-level) condition rather than a per-request one.
    pub fn region(&self) -> Option<Region> {
        match self {
            ApiError::RequestLimitExceeded { region }
            | ApiError::InstanceLimitExceeded { region }
            | ApiError::SpotRequestLimitExceeded { region }
            | ApiError::ServiceUnavailable { region }
            | ApiError::InternalError { region } => Some(*region),
            _ => None,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::InsufficientInstanceCapacity { market } => {
                write!(f, "insufficient capacity for {market}")
            }
            ApiError::RequestLimitExceeded { region } => {
                write!(f, "api rate limit exceeded in {region}")
            }
            ApiError::InstanceLimitExceeded { region } => {
                write!(f, "running on-demand instance limit reached in {region}")
            }
            ApiError::SpotRequestLimitExceeded { region } => {
                write!(f, "open spot request limit reached in {region}")
            }
            ApiError::MaxSpotPriceTooHigh { market, cap } => {
                write!(f, "bid above the {cap} cap for {market}")
            }
            ApiError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ApiError::NotFound(msg) => write!(f, "not found: {msg}"),
            ApiError::InvalidState(msg) => write!(f, "incorrect state: {msg}"),
            ApiError::ServiceUnavailable { region } => {
                write!(f, "api endpoint unavailable in {region}")
            }
            ApiError::InternalError { region } => {
                write!(f, "internal service error in {region}")
            }
        }
    }
}

impl std::error::Error for ApiError {}

/// The outcome of submitting a spot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpotSubmission {
    /// The request id.
    pub id: SpotRequestId,
    /// The status after immediate evaluation.
    pub status: SpotRequestState,
    /// The launched instance, when fulfilled immediately.
    pub instance: Option<InstanceId>,
}

/// A read-only view of a spot request's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpotRequestInfo {
    /// The request id.
    pub id: SpotRequestId,
    /// The market it targets.
    pub market: MarketId,
    /// The bid.
    pub bid: Price,
    /// Its current status.
    pub status: SpotRequestState,
    /// The launched instance, if any.
    pub instance: Option<InstanceId>,
    /// When the instance launched, if any.
    pub launched_at: Option<SimTime>,
}

impl Cloud {
    fn check_market(&self, market: MarketId) -> Result<(), ApiError> {
        if self.market_loc.contains_key(&market) {
            Ok(())
        } else {
            Err(ApiError::InvalidParameter(format!(
                "unknown market {market}"
            )))
        }
    }

    /// The shard serving `region`. Callers resolve the region from an
    /// existing market or request, so the shard always exists.
    fn region_shard_idx(&self, region: Region) -> usize {
        self.shard_of_region[region.index()].expect("region resolved from a known market")
    }

    fn consume_token(&mut self, region: Region) -> Result<(), ApiError> {
        let per_minute = self.config.limits.api_calls_per_minute_per_region;
        let now = self.now;
        let si = self.region_shard_idx(region);
        let shard = &mut self.shards[si];
        // Chaos intercepts the call before the token bucket: an outage
        // answers nothing, a throttling storm pins the bucket empty (so
        // recovery after the storm starts from zero tokens), and an
        // error burst fails the call after it was accepted. One branch
        // when chaos is disabled.
        if shard.chaos.enabled() {
            match shard.chaos.api_fault(now) {
                ApiFault::Outage => return Err(ApiError::ServiceUnavailable { region }),
                ApiFault::Throttled => {
                    shard.api.drain(now);
                    return Err(ApiError::RequestLimitExceeded { region });
                }
                ApiFault::Transient => return Err(ApiError::InternalError { region }),
                ApiFault::None => {}
            }
        }
        if shard.api.try_consume(now, per_minute) {
            Ok(())
        } else {
            Err(ApiError::RequestLimitExceeded { region })
        }
    }

    /// Requests one on-demand instance in `market`.
    ///
    /// This is the probe primitive of §3.2: success means the on-demand
    /// market is obtainable right now; failure with
    /// [`ApiError::InsufficientInstanceCapacity`] means it is not.
    ///
    /// # Errors
    ///
    /// * [`ApiError::InvalidParameter`] — the market is not offered.
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    /// * [`ApiError::InstanceLimitExceeded`] — 20 running instances.
    /// * [`ApiError::InsufficientInstanceCapacity`] — the pool cannot
    ///   serve the request (the signal SpotLight logs).
    pub fn run_od_instance(&mut self, market: MarketId) -> Result<InstanceId, ApiError> {
        self.check_market(market)?;
        let region = market.region();
        self.consume_token(region)?;
        // A pool's region is its markets' region, so the pool_loc pair
        // serves both the limit check and the admission.
        let (si, pi) = self.pool_loc[&market.pool()];
        if self.shards[si].api.od_running >= self.config.limits.max_od_instances_per_region {
            return Err(ApiError::InstanceLimitExceeded { region });
        }
        let units = u64::from(market.instance_type.units());
        self.shards[si].pools[pi]
            .pool
            .admit_od_external(units)
            .map_err(|_| ApiError::InsufficientInstanceCapacity { market })?;

        let id = self.fresh_instance_id();
        let now = self.now;
        let mut state = Tracked::new(OdState::Pending, now);
        state
            .transition(OdState::Running, now)
            .expect("pending -> running is legal");
        self.od_instances.insert(
            id,
            OdInstance {
                id,
                market,
                units: market.instance_type.units(),
                launched_at: now,
                state,
            },
        );
        self.shards[si].api.od_running += 1;
        Ok(id)
    }

    /// Terminates a running on-demand instance and bills its usage
    /// (one-hour minimum). Returns the amount charged.
    ///
    /// # Errors
    ///
    /// * [`ApiError::NotFound`] — unknown instance.
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    pub fn terminate_od_instance(&mut self, id: InstanceId) -> Result<Price, ApiError> {
        let market = self
            .od_instances
            .get(&id)
            .ok_or_else(|| ApiError::NotFound(format!("instance {id}")))?
            .market;
        self.consume_token(market.region())?;
        let mut inst = self.od_instances.remove(&id).expect("checked above");
        let now = self.now;
        inst.state
            .transition(OdState::ShuttingDown, now)
            .expect("running -> shutting-down is legal");
        inst.state
            .transition(OdState::Terminated, now)
            .expect("shutting-down -> terminated is legal");
        let (si, pi) = self.pool_loc[&market.pool()];
        self.shards[si].pools[pi]
            .pool
            .release_od_external(u64::from(inst.units));
        let rate = self.catalog.od_price(market);
        let charged = self.ledger.charge(
            now,
            market,
            UsageKind::OnDemand,
            now.saturating_since(inst.launched_at),
            rate,
        );
        let api = &mut self.shards[si].api;
        api.od_running = api.od_running.saturating_sub(1);
        Ok(charged)
    }

    /// Submits a one-time spot instance request with the given bid and
    /// evaluates it immediately.
    ///
    /// The returned status follows Figure 3.2: `fulfilled` (an instance
    /// launched), or one of the held statuses `price-too-low`,
    /// `capacity-oversubscribed`, `capacity-not-available`. Held requests
    /// stay open — the cloud re-evaluates them every tick — until
    /// fulfilled or cancelled.
    ///
    /// # Errors
    ///
    /// * [`ApiError::MaxSpotPriceTooHigh`] — bid above 10× on-demand.
    /// * [`ApiError::InvalidParameter`] — unknown market or zero bid.
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    /// * [`ApiError::SpotRequestLimitExceeded`] — 20 open requests.
    pub fn request_spot_instance(
        &mut self,
        market: MarketId,
        bid: Price,
    ) -> Result<SpotSubmission, ApiError> {
        self.check_market(market)?;
        if bid.is_zero() {
            return Err(ApiError::InvalidParameter("zero bid".into()));
        }
        let cap = self.catalog.bid_cap(market);
        if bid > cap {
            return Err(ApiError::MaxSpotPriceTooHigh { market, cap });
        }
        let region = market.region();
        self.consume_token(region)?;
        let si = self.region_shard_idx(region);
        if self.shards[si].api.spot_open >= self.config.limits.max_spot_requests_per_region {
            return Err(ApiError::SpotRequestLimitExceeded { region });
        }

        let id = self.fresh_request_id();
        let now = self.now;
        let units = market.instance_type.units();
        let profile = &self.config.demand;
        let shard = &mut self.shards[si];
        shard.spot_requests.insert(
            id,
            SpotRequest {
                id,
                market,
                bid,
                units,
                state: Tracked::new(SpotRequestState::PendingEvaluation, now),
                instance: None,
                launched_at: None,
                launch_price: None,
                terminate_at: None,
            },
        );
        shard.active_spot.insert(id);
        shard.api.spot_open += 1;

        let outcome = shard.evaluate_spot(profile, market, bid, units);
        let status = match outcome {
            SpotEval::Fulfill => {
                let price = shard.markets[shard.market_index[&market]]
                    .state
                    .true_price();
                shard.fulfil_spot(id, now, price);
                SpotRequestState::Fulfilled
            }
            SpotEval::PriceTooLow => SpotRequestState::PriceTooLow,
            SpotEval::Oversubscribed => SpotRequestState::CapacityOversubscribed,
            SpotEval::NotAvailable => SpotRequestState::CapacityNotAvailable,
        };
        if status != SpotRequestState::Fulfilled {
            let req = shard.spot_requests.get_mut(&id).expect("just inserted");
            req.state
                .transition(status, now)
                .expect("pending-evaluation -> held is legal");
        }
        let instance = shard.spot_requests[&id].instance;
        Ok(SpotSubmission {
            id,
            status,
            instance,
        })
    }

    /// Cancels a spot request that has not been fulfilled.
    ///
    /// # Errors
    ///
    /// * [`ApiError::NotFound`] — unknown request.
    /// * [`ApiError::InvalidState`] — the request is fulfilled (terminate
    ///   the instance with [`Cloud::terminate_spot_instance`] instead).
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    pub fn cancel_spot_request(&mut self, id: SpotRequestId) -> Result<(), ApiError> {
        let (si, market) = self
            .find_spot_request(id)
            .ok_or_else(|| ApiError::NotFound(format!("spot request {id}")))?;
        self.consume_token(market.region())?;
        let now = self.now;
        let shard = &mut self.shards[si];
        let req = shard.spot_requests.get_mut(&id).expect("checked above");
        let state = req.state.current();
        if !state.is_held() && state != SpotRequestState::PendingEvaluation {
            return Err(ApiError::InvalidState(format!(
                "spot request {id} is {state}, not held"
            )));
        }
        req.state
            .transition(SpotRequestState::CanceledBeforeFulfillment, now)
            .expect("held -> cancelled is legal");
        shard.api.spot_open = shard.api.spot_open.saturating_sub(1);
        Ok(())
    }

    /// Terminates a fulfilled spot request's instance and bills its usage
    /// at the launch-time spot price. Returns the amount charged.
    ///
    /// # Errors
    ///
    /// * [`ApiError::NotFound`] — unknown request.
    /// * [`ApiError::InvalidState`] — the request has no running
    ///   instance.
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    pub fn terminate_spot_instance(&mut self, id: SpotRequestId) -> Result<Price, ApiError> {
        let (si, market) = self
            .find_spot_request(id)
            .ok_or_else(|| ApiError::NotFound(format!("spot request {id}")))?;
        self.consume_token(market.region())?;
        let now = self.now;
        let shard = &mut self.shards[si];
        let req = shard.spot_requests.get_mut(&id).expect("checked above");
        if !req.state.current().instance_running() {
            return Err(ApiError::InvalidState(format!(
                "spot request {id} has no running instance"
            )));
        }
        req.state
            .transition(SpotRequestState::InstanceTerminatedByUser, now)
            .expect("fulfilled/marked -> terminated-by-user is legal");
        let units = u64::from(req.units);
        let launched = req.launched_at.expect("running instance has launch time");
        let rate = req.launch_price.expect("running instance has launch price");
        let pi = shard.pool_index[&market.pool()];
        shard.pools[pi].pool.release_spot_external(units);
        shard.api.spot_open = shard.api.spot_open.saturating_sub(1);
        let charged = self.ledger.charge(
            now,
            market,
            UsageKind::Spot,
            now.saturating_since(launched),
            rate,
        );
        Ok(charged)
    }

    /// Describes a spot request's current state.
    ///
    /// # Errors
    ///
    /// * [`ApiError::NotFound`] — unknown (or garbage-collected) request.
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    pub fn describe_spot_request(
        &mut self,
        id: SpotRequestId,
    ) -> Result<SpotRequestInfo, ApiError> {
        let (si, market) = self
            .find_spot_request(id)
            .ok_or_else(|| ApiError::NotFound(format!("spot request {id}")))?;
        self.consume_token(market.region())?;
        let req = &self.shards[si].spot_requests[&id];
        Ok(SpotRequestInfo {
            id,
            market,
            bid: req.bid,
            status: req.state.current(),
            instance: req.instance,
            launched_at: req.launched_at,
        })
    }

    /// The currently published spot price of a market.
    ///
    /// # Errors
    ///
    /// * [`ApiError::InvalidParameter`] — unknown market.
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    pub fn describe_spot_price(&mut self, market: MarketId) -> Result<Price, ApiError> {
        self.check_market(market)?;
        self.consume_token(market.region())?;
        Ok(self
            .oracle_published_price(market)
            .expect("checked market exists"))
    }

    /// The recorded published price history of a market since `since`
    /// (inclusive). Only watched markets have history (see
    /// [`Cloud::watch_market`]).
    ///
    /// # Errors
    ///
    /// * [`ApiError::InvalidParameter`] — unknown market.
    /// * [`ApiError::RequestLimitExceeded`] — API rate limit.
    pub fn describe_spot_price_history(
        &mut self,
        market: MarketId,
        since: SimTime,
    ) -> Result<Vec<PricePoint>, ApiError> {
        self.check_market(market)?;
        self.consume_token(market.region())?;
        Ok(self
            .trace
            .history(market)
            .iter()
            .copied()
            .filter(|p| p.at >= since)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::config::{DemandProfile, SimConfig};
    use crate::ids::{Az, Platform};

    fn quiet_cloud(seed: u64) -> Cloud {
        let mut config = SimConfig::paper(seed);
        config.demand = DemandProfile::quiet();
        let mut c = Cloud::new(Catalog::testbed(), config);
        c.warmup(10);
        c
    }

    fn a_market(c: &Cloud) -> MarketId {
        c.catalog().markets()[0]
    }

    #[test]
    fn od_probe_roundtrip_bills_one_hour() {
        let mut c = quiet_cloud(1);
        let m = a_market(&c);
        let id = c.run_od_instance(m).unwrap();
        let charged = c.terminate_od_instance(id).unwrap();
        assert_eq!(charged, c.catalog().od_price(m), "one-hour minimum");
        assert_eq!(c.ledger().total(), charged);
    }

    #[test]
    fn unknown_market_is_invalid_parameter() {
        let mut c = quiet_cloud(2);
        let bogus = MarketId {
            az: Az::new(crate::ids::Region::UsWest2, 0),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::Windows,
        };
        let err = c.run_od_instance(bogus).unwrap_err();
        assert_eq!(err.error_code(), "InvalidParameterValue");
    }

    #[test]
    fn od_instance_limit_enforced() {
        let mut c = quiet_cloud(3);
        let m = a_market(&c);
        let limit = c.config().limits.max_od_instances_per_region;
        let mut ids = Vec::new();
        for _ in 0..limit {
            ids.push(c.run_od_instance(m).unwrap());
        }
        let err = c.run_od_instance(m).unwrap_err();
        assert!(matches!(err, ApiError::InstanceLimitExceeded { .. }));
        for id in ids {
            c.terminate_od_instance(id).unwrap();
        }
        assert!(c.run_od_instance(m).is_ok());
    }

    #[test]
    fn spot_request_fulfils_in_quiet_market() {
        let mut c = quiet_cloud(4);
        let m = a_market(&c);
        let price = c.describe_spot_price(m).unwrap();
        let sub = c.request_spot_instance(m, price).unwrap();
        assert_eq!(sub.status, SpotRequestState::Fulfilled);
        assert!(sub.instance.is_some());
        let charged = c.terminate_spot_instance(sub.id).unwrap();
        assert_eq!(charged, price, "one hour at the launch spot price");
    }

    #[test]
    fn bid_above_cap_rejected() {
        let mut c = quiet_cloud(5);
        let m = a_market(&c);
        let cap = c.catalog().bid_cap(m);
        let err = c
            .request_spot_instance(m, cap + Price::from_micros(1))
            .unwrap_err();
        assert!(matches!(err, ApiError::MaxSpotPriceTooHigh { .. }));
        assert_eq!(err.error_code(), "SpotMaxPriceTooHigh");
        // Bidding exactly the cap is fine.
        assert!(c.request_spot_instance(m, cap).is_ok());
    }

    #[test]
    fn low_bid_is_price_too_low_and_cancellable() {
        let mut c = quiet_cloud(6);
        let m = a_market(&c);
        let sub = c.request_spot_instance(m, Price::from_micros(1)).unwrap();
        assert_eq!(sub.status, SpotRequestState::PriceTooLow);
        c.cancel_spot_request(sub.id).unwrap();
        // Cancelled requests are garbage-collected after the next tick.
        c.tick();
        let err = c.describe_spot_request(sub.id).unwrap_err();
        assert!(matches!(err, ApiError::NotFound(_)));
    }

    #[test]
    fn cancel_fulfilled_request_is_invalid_state() {
        let mut c = quiet_cloud(7);
        let m = a_market(&c);
        let price = c.describe_spot_price(m).unwrap();
        let sub = c.request_spot_instance(m, price).unwrap();
        assert_eq!(sub.status, SpotRequestState::Fulfilled);
        let err = c.cancel_spot_request(sub.id).unwrap_err();
        assert!(matches!(err, ApiError::InvalidState(_)));
        c.terminate_spot_instance(sub.id).unwrap();
    }

    #[test]
    fn spot_open_limit_enforced() {
        let mut c = quiet_cloud(8);
        let m = a_market(&c);
        let limit = c.config().limits.max_spot_requests_per_region;
        let mut ids = Vec::new();
        for _ in 0..limit {
            // Held (price-too-low) requests count against the limit.
            let sub = c.request_spot_instance(m, Price::from_micros(1)).unwrap();
            ids.push(sub.id);
        }
        let err = c
            .request_spot_instance(m, Price::from_micros(1))
            .unwrap_err();
        assert!(matches!(err, ApiError::SpotRequestLimitExceeded { .. }));
        for id in ids {
            c.cancel_spot_request(id).unwrap();
        }
        assert!(c.request_spot_instance(m, Price::from_micros(1)).is_ok());
    }

    #[test]
    fn rate_limit_exhausts_and_refills() {
        let mut config = SimConfig::paper(9);
        config.demand = DemandProfile::quiet();
        config.limits.api_calls_per_minute_per_region = 5;
        let mut c = Cloud::new(Catalog::testbed(), config);
        c.warmup(5);
        let m = a_market(&c);
        // Warmup consumed nothing; 5 tokens available.
        for _ in 0..5 {
            c.describe_spot_price(m).unwrap();
        }
        let err = c.describe_spot_price(m).unwrap_err();
        assert!(matches!(err, ApiError::RequestLimitExceeded { .. }));
        // After a tick (300 s), the bucket has refilled.
        c.tick();
        assert!(c.describe_spot_price(m).is_ok());
    }

    #[test]
    fn price_history_requires_watch() {
        let mut config = SimConfig::paper(10);
        let mut c = Cloud::new(Catalog::testbed(), config.clone());
        let m = a_market(&c);
        c.warmup(100);
        assert!(c
            .describe_spot_price_history(m, SimTime::ZERO)
            .unwrap()
            .is_empty());
        let _ = &mut config;
        c.watch_market(m);
        c.warmup(200);
        // A watched volatile market accumulates history.
        let hist = c.describe_spot_price_history(m, SimTime::ZERO).unwrap();
        assert!(!hist.is_empty(), "expected price changes after watching");
    }

    #[test]
    fn error_display_and_codes_are_stable() {
        use crate::ids::Region;
        let m = MarketId {
            az: Az::new(Region::UsEast1, 0),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        };
        let r = Region::EuWest1;
        // Every variant, its code string, and a Display fragment — the
        // codes are a wire format consumers match on, so drift here is
        // an API break.
        let cases: Vec<(ApiError, &str, &str)> = vec![
            (
                ApiError::InsufficientInstanceCapacity { market: m },
                "InsufficientInstanceCapacity",
                "insufficient capacity",
            ),
            (
                ApiError::RequestLimitExceeded { region: r },
                "RequestLimitExceeded",
                "rate limit exceeded",
            ),
            (
                ApiError::InstanceLimitExceeded { region: r },
                "InstanceLimitExceeded",
                "instance limit reached",
            ),
            (
                ApiError::SpotRequestLimitExceeded { region: r },
                "MaxSpotInstanceCountExceeded",
                "spot request limit reached",
            ),
            (
                ApiError::MaxSpotPriceTooHigh {
                    market: m,
                    cap: Price::from_dollars(1.05),
                },
                "SpotMaxPriceTooHigh",
                "cap",
            ),
            (
                ApiError::InvalidParameter("x".into()),
                "InvalidParameterValue",
                "invalid parameter",
            ),
            (
                ApiError::NotFound("x".into()),
                "InvalidResourceID.NotFound",
                "not found",
            ),
            (
                ApiError::InvalidState("x".into()),
                "IncorrectState",
                "incorrect state",
            ),
            (
                ApiError::ServiceUnavailable { region: r },
                "Unavailable",
                "unavailable",
            ),
            (
                ApiError::InternalError { region: r },
                "InternalError",
                "internal service error",
            ),
        ];
        for (err, code, fragment) in cases {
            assert_eq!(err.error_code(), code, "{err:?}");
            assert!(
                err.to_string().contains(fragment),
                "{err:?} display {:?} should contain {fragment:?}",
                err.to_string()
            );
        }
    }

    #[test]
    fn retryability_is_endpoint_conditions_only() {
        use crate::ids::Region;
        let m = MarketId {
            az: Az::new(Region::UsEast1, 0),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        };
        let r = Region::UsEast1;
        for retryable in [
            ApiError::RequestLimitExceeded { region: r },
            ApiError::ServiceUnavailable { region: r },
            ApiError::InternalError { region: r },
        ] {
            assert!(retryable.is_retryable(), "{retryable:?}");
            assert_eq!(retryable.region(), Some(r));
        }
        for terminal in [
            ApiError::InsufficientInstanceCapacity { market: m },
            ApiError::InstanceLimitExceeded { region: r },
            ApiError::SpotRequestLimitExceeded { region: r },
            ApiError::MaxSpotPriceTooHigh {
                market: m,
                cap: Price::from_dollars(1.0),
            },
            ApiError::InvalidParameter("x".into()),
            ApiError::NotFound("x".into()),
            ApiError::InvalidState("x".into()),
        ] {
            assert!(!terminal.is_retryable(), "{terminal:?}");
        }
    }

    #[test]
    fn chaos_outage_fails_api_calls_then_recovers() {
        use crate::chaos::ChaosWindow;
        use crate::ids::Region;
        use crate::time::SimDuration;
        let mut config = SimConfig::paper(11);
        config.demand = DemandProfile::quiet();
        config.chaos.outages.push(ChaosWindow {
            region: Region::UsEast1,
            start: SimTime::from_secs(300 * 12),
            duration: SimDuration::from_secs(300 * 4),
        });
        let mut c = Cloud::new(Catalog::testbed(), config);
        c.warmup(10);
        let m = a_market(&c);
        assert_eq!(m.region(), Region::UsEast1, "testbed leads with us-east-1");
        assert!(c.describe_spot_price(m).is_ok(), "before the outage");
        c.warmup(4); // into the window
        let err = c.describe_spot_price(m).unwrap_err();
        assert_eq!(err.error_code(), "Unavailable");
        assert!(err.is_retryable());
        c.warmup(4); // past the window
        assert!(c.describe_spot_price(m).is_ok(), "after the outage");
    }

    #[test]
    fn chaos_throttle_storm_drains_the_bucket() {
        use crate::chaos::ChaosWindow;
        use crate::ids::Region;
        use crate::time::SimDuration;
        let mut config = SimConfig::paper(12);
        config.demand = DemandProfile::quiet();
        config.limits.api_calls_per_minute_per_region = 6;
        config.chaos.throttle_storms.push(ChaosWindow {
            region: Region::UsEast1,
            start: SimTime::from_secs(300 * 10),
            duration: SimDuration::from_secs(300 * 2),
        });
        let mut c = Cloud::new(Catalog::testbed(), config);
        c.warmup(10);
        let m = a_market(&c);
        // Inside the storm every call throttles, even the first.
        let err = c.describe_spot_price(m).unwrap_err();
        assert!(matches!(err, ApiError::RequestLimitExceeded { .. }));
        // After the storm the bucket refills from zero: one tick of
        // elapsed time at 6/min is plenty for a call.
        c.warmup(3);
        assert!(c.describe_spot_price(m).is_ok(), "post-storm refill");
    }
}
