//! Usage billing: the account ledger SpotLight's probing budget draws on.
//!
//! EC2 bills by the started hour (§2.2 "each probe may incur a cost,
//! since there is a minimum charge — one hour of server time"). Spot
//! instances reclaimed by EC2 (terminated by price) get their final
//! partial hour free, which SpotLight's cost model exploits.

use crate::ids::MarketId;
use crate::price::Price;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What kind of usage a billing record covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UsageKind {
    /// On-demand instance time.
    OnDemand,
    /// Spot instance time, terminated by the user.
    Spot,
    /// Spot instance time, reclaimed by the platform (partial hour free).
    SpotRevoked,
}

/// One charge on the account.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BillingRecord {
    /// When the charge was applied.
    pub at: SimTime,
    /// The market the instance ran in.
    pub market: MarketId,
    /// The kind of usage.
    pub kind: UsageKind,
    /// Billed whole hours.
    pub hours: u64,
    /// Hourly rate applied.
    pub rate: Price,
    /// Total amount (`rate × hours`).
    pub amount: Price,
}

/// The account ledger: an append-only log of charges.
///
/// # Examples
///
/// ```
/// use cloud_sim::billing::Ledger;
/// let ledger = Ledger::new();
/// assert!(ledger.total().is_zero());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    records: Vec<BillingRecord>,
    total: Price,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Charges for an instance that ran for `used` at `rate` per hour.
    ///
    /// On-demand and user-terminated spot usage round the final partial
    /// hour *up*; platform-revoked spot usage rounds it *down* (the
    /// reclaimed partial hour is free). Returns the amount charged.
    pub fn charge(
        &mut self,
        at: SimTime,
        market: MarketId,
        kind: UsageKind,
        used: SimDuration,
        rate: Price,
    ) -> Price {
        let hours = match kind {
            UsageKind::OnDemand | UsageKind::Spot => used.billing_hours().max(1),
            UsageKind::SpotRevoked => used.as_secs() / 3600,
        };
        let amount = rate.times(hours);
        self.total += amount;
        self.records.push(BillingRecord {
            at,
            market,
            kind,
            hours,
            rate,
            amount,
        });
        amount
    }

    /// Total spend so far.
    pub fn total(&self) -> Price {
        self.total
    }

    /// All charges, oldest first.
    pub fn records(&self) -> &[BillingRecord] {
        &self.records
    }

    /// Spend within `[from, to)`.
    pub fn spend_between(&self, from: SimTime, to: SimTime) -> Price {
        self.records
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .map(|r| r.amount)
            .sum()
    }

    /// Spend per usage kind so far.
    pub fn spend_by_kind(&self, kind: UsageKind) -> Price {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.amount)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Az, Platform, Region};

    fn market() -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, 0),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    #[test]
    fn od_minimum_one_hour() {
        let mut l = Ledger::new();
        let amt = l.charge(
            SimTime::from_secs(10),
            market(),
            UsageKind::OnDemand,
            SimDuration::from_secs(5),
            Price::from_dollars(0.105),
        );
        assert_eq!(amt, Price::from_dollars(0.105));
        assert_eq!(l.total(), amt);
    }

    #[test]
    fn partial_hours_round_up_for_user_terminated() {
        let mut l = Ledger::new();
        let amt = l.charge(
            SimTime::ZERO,
            market(),
            UsageKind::Spot,
            SimDuration::from_secs(3601),
            Price::from_dollars(0.1),
        );
        assert_eq!(amt, Price::from_dollars(0.2));
    }

    #[test]
    fn revoked_spot_partial_hour_free() {
        let mut l = Ledger::new();
        let amt = l.charge(
            SimTime::ZERO,
            market(),
            UsageKind::SpotRevoked,
            SimDuration::from_secs(90 * 60),
            Price::from_dollars(0.1),
        );
        assert_eq!(amt, Price::from_dollars(0.1), "only the full hour billed");
        let amt2 = l.charge(
            SimTime::ZERO,
            market(),
            UsageKind::SpotRevoked,
            SimDuration::from_secs(59 * 60),
            Price::from_dollars(0.1),
        );
        assert!(amt2.is_zero(), "sub-hour revoked usage is free");
    }

    #[test]
    fn window_and_kind_queries() {
        let mut l = Ledger::new();
        for (t, kind) in [
            (0u64, UsageKind::OnDemand),
            (100, UsageKind::Spot),
            (200, UsageKind::OnDemand),
        ] {
            l.charge(
                SimTime::from_secs(t),
                market(),
                kind,
                SimDuration::hours(1),
                Price::from_dollars(1.0),
            );
        }
        assert_eq!(
            l.spend_between(SimTime::from_secs(0), SimTime::from_secs(150)),
            Price::from_dollars(2.0)
        );
        assert_eq!(
            l.spend_by_kind(UsageKind::OnDemand),
            Price::from_dollars(2.0)
        );
        assert_eq!(l.records().len(), 3);
    }
}
