//! The cloud's offering: regions, zones, instance types, platforms, and
//! on-demand prices.
//!
//! The standard catalog reproduces EC2's footprint at the time of the
//! SpotLight study: 53 instance types, 9 regions, 26 availability zones,
//! and 4 product platforms, for roughly five thousand distinct spot
//! markets and well over a thousand on-demand markets (Chapters 1 and 4
//! of the paper). Tests and examples can build arbitrarily small catalogs
//! with [`CatalogBuilder`].
//!
//! # Examples
//!
//! ```
//! use cloud_sim::catalog::Catalog;
//! use cloud_sim::ids::{Platform, Region};
//!
//! let catalog = Catalog::standard();
//! assert_eq!(catalog.azs().len(), 26);
//! assert!(catalog.markets().len() > 4500);
//! let ty = "c3.2xlarge".parse()?;
//! let od = catalog.od_price_region(Region::UsEast1, ty, Platform::LinuxUnix);
//! assert_eq!(od.as_dollars(), 0.42);
//! # Ok::<(), cloud_sim::ids::ParseIdError>(())
//! ```

use crate::ids::{Az, Family, InstanceType, MarketId, Platform, PoolId, Region, Size};
use crate::price::Price;
use std::collections::{BTreeMap, BTreeSet};

/// Base (us-east-1, Linux/UNIX) hourly on-demand prices in dollars for
/// all 53 instance types of the standard catalog.
const BASE_PRICES: &[(Family, Size, f64)] = &[
    (Family::T1, Size::Micro, 0.020),
    (Family::T2, Size::Micro, 0.013),
    (Family::T2, Size::Small, 0.026),
    (Family::T2, Size::Medium, 0.052),
    (Family::T2, Size::Large, 0.104),
    (Family::M1, Size::Small, 0.044),
    (Family::M1, Size::Medium, 0.087),
    (Family::M1, Size::Large, 0.175),
    (Family::M1, Size::Xlarge, 0.350),
    (Family::M2, Size::Xlarge, 0.245),
    (Family::M2, Size::X2, 0.490),
    (Family::M2, Size::X4, 0.980),
    (Family::M3, Size::Medium, 0.067),
    (Family::M3, Size::Large, 0.133),
    (Family::M3, Size::Xlarge, 0.266),
    (Family::M3, Size::X2, 0.532),
    (Family::M4, Size::Large, 0.126),
    (Family::M4, Size::Xlarge, 0.252),
    (Family::M4, Size::X2, 0.504),
    (Family::M4, Size::X4, 1.008),
    (Family::M4, Size::X10, 2.520),
    (Family::C1, Size::Medium, 0.130),
    (Family::C1, Size::Xlarge, 0.520),
    (Family::C3, Size::Large, 0.105),
    (Family::C3, Size::Xlarge, 0.210),
    (Family::C3, Size::X2, 0.420),
    (Family::C3, Size::X4, 0.840),
    (Family::C3, Size::X8, 1.680),
    (Family::C4, Size::Large, 0.105),
    (Family::C4, Size::Xlarge, 0.209),
    (Family::C4, Size::X2, 0.419),
    (Family::C4, Size::X4, 0.838),
    (Family::C4, Size::X8, 1.675),
    (Family::R3, Size::Large, 0.166),
    (Family::R3, Size::Xlarge, 0.333),
    (Family::R3, Size::X2, 0.665),
    (Family::R3, Size::X4, 1.330),
    (Family::R3, Size::X8, 2.660),
    (Family::D2, Size::Xlarge, 0.690),
    (Family::D2, Size::X2, 1.380),
    (Family::D2, Size::X4, 2.760),
    (Family::D2, Size::X8, 5.520),
    (Family::G2, Size::X2, 0.650),
    (Family::G2, Size::X8, 2.600),
    (Family::I2, Size::Xlarge, 0.853),
    (Family::I2, Size::X2, 1.705),
    (Family::I2, Size::X4, 3.410),
    (Family::I2, Size::X8, 6.820),
    (Family::Hs1, Size::X8, 4.600),
    (Family::Hi1, Size::X4, 3.100),
    (Family::Cc2, Size::X8, 2.000),
    (Family::Cr1, Size::X8, 3.500),
    (Family::Cg1, Size::X4, 2.100),
];

/// Number of availability zones per region in the standard catalog
/// (sums to 26, matching the paper).
const AZ_COUNTS: &[(Region, u8)] = &[
    (Region::UsEast1, 5),
    (Region::UsWest1, 3),
    (Region::UsWest2, 3),
    (Region::EuWest1, 3),
    (Region::EuCentral1, 2),
    (Region::ApNortheast1, 3),
    (Region::ApSoutheast1, 2),
    (Region::ApSoutheast2, 3),
    (Region::SaEast1, 2),
];

/// Per-region multiplier over the base on-demand price.
const REGION_MULTIPLIERS: &[(Region, f64)] = &[
    (Region::UsEast1, 1.00),
    (Region::UsWest1, 1.12),
    (Region::UsWest2, 1.00),
    (Region::EuWest1, 1.06),
    (Region::EuCentral1, 1.14),
    (Region::ApNortheast1, 1.21),
    (Region::ApSoutheast1, 1.17),
    (Region::ApSoutheast2, 1.19),
    (Region::SaEast1, 1.35),
];

/// Families not offered in a region (smaller/newer regions lack some
/// hardware generations, which is part of why their pools are tighter).
const REGION_EXCLUSIONS: &[(Region, &[Family])] = &[
    (
        Region::SaEast1,
        &[
            Family::G2,
            Family::Hs1,
            Family::Hi1,
            Family::Cc2,
            Family::Cr1,
            Family::Cg1,
        ],
    ),
    (
        Region::EuCentral1,
        &[
            Family::T1,
            Family::M1,
            Family::M2,
            Family::C1,
            Family::Hs1,
            Family::Hi1,
            Family::Cc2,
            Family::Cr1,
            Family::Cg1,
        ],
    ),
    (
        Region::ApSoutheast2,
        &[Family::Cc2, Family::Cr1, Family::Cg1, Family::Hi1],
    ),
];

/// An immutable description of everything the cloud offers.
///
/// The catalog fixes the set of zones, instance types, platforms, and
/// on-demand prices; the dynamic state (pools, prices, instances) lives in
/// [`crate::cloud::Cloud`].
#[derive(Debug, Clone)]
pub struct Catalog {
    azs: Vec<Az>,
    types: Vec<InstanceType>,
    platforms: Vec<Platform>,
    base_prices: BTreeMap<InstanceType, Price>,
    region_multiplier: BTreeMap<Region, f64>,
    excluded: BTreeSet<(Region, Family)>,
    markets: Vec<MarketId>,
    pools: Vec<PoolId>,
}

impl Catalog {
    /// The full EC2-scale catalog used by the paper's three-month study.
    pub fn standard() -> Catalog {
        let mut b = CatalogBuilder::new();
        for &(region, n) in AZ_COUNTS {
            b.region(region, n);
        }
        for &(region, mult) in REGION_MULTIPLIERS {
            b.region_multiplier(region, mult);
        }
        for &(family, size, dollars) in BASE_PRICES {
            b.instance_type(
                InstanceType::new(family, size),
                Price::from_dollars(dollars),
            );
        }
        for &(region, families) in REGION_EXCLUSIONS {
            for &f in families {
                b.exclude(region, f);
            }
        }
        for p in Platform::ALL {
            b.platform(p);
        }
        b.build()
    }

    /// A small two-region catalog for tests and examples: 2 regions,
    /// 4 zones, 2 families × up to 3 sizes, Linux only (~14 markets).
    pub fn testbed() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.region(Region::UsEast1, 2);
        b.region(Region::SaEast1, 2);
        b.region_multiplier(Region::SaEast1, 1.35);
        b.instance_type("c3.large".parse().unwrap(), Price::from_dollars(0.105));
        b.instance_type("c3.xlarge".parse().unwrap(), Price::from_dollars(0.21));
        b.instance_type("c3.2xlarge".parse().unwrap(), Price::from_dollars(0.42));
        b.instance_type("d2.2xlarge".parse().unwrap(), Price::from_dollars(1.38));
        b.exclude(Region::SaEast1, Family::D2);
        b.platform(Platform::LinuxUnix);
        b.build()
    }

    /// All availability zones, ordered by region then zone letter.
    pub fn azs(&self) -> &[Az] {
        &self.azs
    }

    /// The zones of one region.
    pub fn azs_in(&self, region: Region) -> impl Iterator<Item = Az> + '_ {
        self.azs
            .iter()
            .copied()
            .filter(move |az| az.region() == region)
    }

    /// The regions present in this catalog, in canonical order.
    pub fn regions(&self) -> Vec<Region> {
        let mut seen = BTreeSet::new();
        self.azs.iter().for_each(|az| {
            seen.insert(az.region());
        });
        seen.into_iter().collect()
    }

    /// All instance types in the catalog.
    pub fn instance_types(&self) -> &[InstanceType] {
        &self.types
    }

    /// All platforms offered.
    pub fn platforms(&self) -> &[Platform] {
        &self.platforms
    }

    /// The sizes offered within one family, ascending.
    pub fn family_types(&self, family: Family) -> Vec<InstanceType> {
        self.types
            .iter()
            .copied()
            .filter(|t| t.family() == family)
            .collect()
    }

    /// Whether a family is offered in a region.
    pub fn family_available(&self, region: Region, family: Family) -> bool {
        !self.excluded.contains(&(region, family))
    }

    /// Whether a specific market exists in the catalog.
    pub fn market_exists(&self, market: MarketId) -> bool {
        self.azs.contains(&market.az)
            && self.types.contains(&market.instance_type)
            && self.platforms.contains(&market.platform)
            && self.family_available(market.region(), market.instance_type.family())
    }

    /// The hourly on-demand price for a type/platform in a region.
    ///
    /// # Panics
    ///
    /// Panics if the type is not in the catalog.
    pub fn od_price_region(
        &self,
        region: Region,
        instance_type: InstanceType,
        platform: Platform,
    ) -> Price {
        let base = *self
            .base_prices
            .get(&instance_type)
            .unwrap_or_else(|| panic!("instance type {instance_type} not in catalog"));
        let mult = self.region_multiplier.get(&region).copied().unwrap_or(1.0);
        base.scale(mult * platform.price_markup())
    }

    /// The hourly on-demand price governing one market.
    pub fn od_price(&self, market: MarketId) -> Price {
        self.od_price_region(market.region(), market.instance_type, market.platform)
    }

    /// The bid cap for a spot market: 10× the on-demand price
    /// (the limit EC2 introduced after the $1000/hour incident, §2.1.3).
    pub fn bid_cap(&self, market: MarketId) -> Price {
        self.od_price(market).scale(10.0)
    }

    /// Every spot market (zone × type × platform) in the catalog.
    pub fn markets(&self) -> &[MarketId] {
        &self.markets
    }

    /// Every capacity pool (zone × family) in the catalog.
    pub fn pools(&self) -> &[PoolId] {
        &self.pools
    }

    /// The markets backed by one capacity pool.
    pub fn markets_in_pool(&self, pool: PoolId) -> impl Iterator<Item = MarketId> + '_ {
        self.markets
            .iter()
            .copied()
            .filter(move |m| m.pool() == pool)
    }

    /// The markets in the same family and zone as `market` (other sizes,
    /// same platform) — the "related markets within family" of §3.2.1.
    pub fn family_siblings(&self, market: MarketId) -> Vec<MarketId> {
        self.family_types(market.instance_type.family())
            .into_iter()
            .filter(|t| *t != market.instance_type)
            .map(|t| market.with_type(t))
            .collect()
    }

    /// The markets for the same type and platform in the region's other
    /// zones — the "related markets across availability zones" of §3.2.2.
    pub fn az_siblings(&self, market: MarketId) -> Vec<MarketId> {
        self.azs_in(market.region())
            .filter(|az| *az != market.az)
            .map(|az| market.with_az(az))
            .collect()
    }

    /// Total normalized capacity units demanded by one of every market's
    /// instance type; handy for sizing pools.
    pub fn pool_member_units(&self, pool: PoolId) -> u64 {
        self.markets_in_pool(pool)
            .map(|m| u64::from(m.instance_type.units()))
            .sum()
    }
}

/// Builder for custom catalogs (small testbeds, ablations).
///
/// # Examples
///
/// ```
/// use cloud_sim::catalog::CatalogBuilder;
/// use cloud_sim::ids::{Platform, Region};
/// use cloud_sim::price::Price;
///
/// let mut b = CatalogBuilder::new();
/// b.region(Region::UsEast1, 2)
///     .instance_type("m3.large".parse()?, Price::from_dollars(0.133))
///     .platform(Platform::LinuxUnix);
/// let catalog = b.build();
/// assert_eq!(catalog.markets().len(), 2);
/// # Ok::<(), cloud_sim::ids::ParseIdError>(())
/// ```
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    az_counts: BTreeMap<Region, u8>,
    types: BTreeMap<InstanceType, Price>,
    platforms: BTreeSet<Platform>,
    region_multiplier: BTreeMap<Region, f64>,
    excluded: BTreeSet<(Region, Family)>,
}

impl CatalogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CatalogBuilder::default()
    }

    /// Adds a region with `az_count` availability zones.
    ///
    /// # Panics
    ///
    /// Panics if `az_count` is zero or exceeds 26.
    pub fn region(&mut self, region: Region, az_count: u8) -> &mut Self {
        assert!(
            (1..=26).contains(&az_count),
            "az_count must be in 1..=26, got {az_count}"
        );
        self.az_counts.insert(region, az_count);
        self
    }

    /// Sets the regional price multiplier (defaults to 1.0).
    pub fn region_multiplier(&mut self, region: Region, multiplier: f64) -> &mut Self {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "multiplier must be positive, got {multiplier}"
        );
        self.region_multiplier.insert(region, multiplier);
        self
    }

    /// Adds an instance type with its base Linux on-demand price.
    pub fn instance_type(&mut self, ty: InstanceType, base_price: Price) -> &mut Self {
        assert!(!base_price.is_zero(), "on-demand price must be non-zero");
        self.types.insert(ty, base_price);
        self
    }

    /// Adds a product platform (at least one is required).
    pub fn platform(&mut self, platform: Platform) -> &mut Self {
        self.platforms.insert(platform);
        self
    }

    /// Marks a family as not offered in a region.
    pub fn exclude(&mut self, region: Region, family: Family) -> &mut Self {
        self.excluded.insert((region, family));
        self
    }

    /// Builds the immutable catalog.
    ///
    /// # Panics
    ///
    /// Panics if no region, no instance type, or no platform was added.
    pub fn build(&self) -> Catalog {
        assert!(
            !self.az_counts.is_empty(),
            "catalog needs at least one region"
        );
        assert!(
            !self.types.is_empty(),
            "catalog needs at least one instance type"
        );
        assert!(
            !self.platforms.is_empty(),
            "catalog needs at least one platform"
        );

        let mut azs = Vec::new();
        for region in Region::ALL {
            if let Some(&n) = self.az_counts.get(&region) {
                for i in 0..n {
                    azs.push(Az::new(region, i));
                }
            }
        }

        let mut types: Vec<InstanceType> = self.types.keys().copied().collect();
        types.sort();
        let platforms: Vec<Platform> = Platform::ALL
            .into_iter()
            .filter(|p| self.platforms.contains(p))
            .collect();

        let mut markets = Vec::new();
        let mut pools = BTreeSet::new();
        for &az in &azs {
            for &ty in &types {
                if self.excluded.contains(&(az.region(), ty.family())) {
                    continue;
                }
                pools.insert(PoolId {
                    az,
                    family: ty.family(),
                });
                for &platform in &platforms {
                    markets.push(MarketId {
                        az,
                        instance_type: ty,
                        platform,
                    });
                }
            }
        }

        Catalog {
            azs,
            types,
            platforms,
            base_prices: self.types.clone(),
            region_multiplier: self.region_multiplier.clone(),
            excluded: self.excluded.clone(),
            markets,
            pools: pools.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_scale_matches_paper() {
        let c = Catalog::standard();
        assert_eq!(c.instance_types().len(), 53, "paper: 53 instance types");
        assert_eq!(c.azs().len(), 26, "paper: 26 availability zones");
        assert_eq!(c.regions().len(), 9, "paper: 9 regions");
        assert!(
            c.markets().len() > 4500,
            "paper: ~4500 spot markets, got {}",
            c.markets().len()
        );
    }

    #[test]
    fn prices_scale_by_region_and_platform() {
        let c = Catalog::standard();
        let ty: InstanceType = "c3.2xlarge".parse().unwrap();
        let east = c.od_price_region(Region::UsEast1, ty, Platform::LinuxUnix);
        let sa = c.od_price_region(Region::SaEast1, ty, Platform::LinuxUnix);
        let win = c.od_price_region(Region::UsEast1, ty, Platform::Windows);
        assert_eq!(east, Price::from_dollars(0.42));
        assert!(sa > east);
        assert!(win > east);
    }

    #[test]
    fn bid_cap_is_ten_times_od() {
        let c = Catalog::standard();
        let m = c.markets()[0];
        assert_eq!(c.bid_cap(m), c.od_price(m).scale(10.0));
    }

    #[test]
    fn exclusions_remove_markets() {
        let c = Catalog::standard();
        assert!(!c.family_available(Region::SaEast1, Family::G2));
        assert!(c.family_available(Region::SaEast1, Family::D2));
        assert!(c.family_available(Region::ApSoutheast2, Family::G2));
        assert!(c
            .markets()
            .iter()
            .all(|m| c.family_available(m.region(), m.instance_type.family())));
    }

    #[test]
    fn family_and_az_siblings() {
        let c = Catalog::standard();
        let m = MarketId {
            az: Az::new(Region::UsEast1, 3),
            instance_type: "c3.2xlarge".parse().unwrap(),
            platform: Platform::LinuxUnix,
        };
        let fam = c.family_siblings(m);
        assert_eq!(fam.len(), 4); // c3.large, xlarge, 4xlarge, 8xlarge
        assert!(fam.iter().all(|s| s.az == m.az && s.platform == m.platform));
        let azs = c.az_siblings(m);
        assert_eq!(azs.len(), 4); // us-east-1 has 5 zones
        assert!(azs.iter().all(|s| s.instance_type == m.instance_type));
    }

    #[test]
    fn markets_in_pool_share_family_and_az() {
        let c = Catalog::standard();
        let pool = c.pools()[0];
        for m in c.markets_in_pool(pool) {
            assert_eq!(m.pool(), pool);
        }
    }

    #[test]
    fn case_study_markets_exist() {
        // Fig 6.1/6.2 use d2.2xlarge/d2.8xlarge (us-east-1e, Windows and
        // Linux) and g2.8xlarge in ap-southeast-2.
        let c = Catalog::standard();
        let us_east_1e = Az::new(Region::UsEast1, 4);
        for (ty, platform) in [
            ("d2.2xlarge", Platform::Windows),
            ("d2.8xlarge", Platform::Windows),
            ("d2.2xlarge", Platform::LinuxUnix),
            ("d2.8xlarge", Platform::LinuxUnix),
        ] {
            assert!(c.market_exists(MarketId {
                az: us_east_1e,
                instance_type: ty.parse().unwrap(),
                platform,
            }));
        }
        for idx in [0, 1] {
            assert!(c.market_exists(MarketId {
                az: Az::new(Region::ApSoutheast2, idx),
                instance_type: "g2.8xlarge".parse().unwrap(),
                platform: Platform::LinuxUnix,
            }));
        }
    }

    #[test]
    fn testbed_is_small() {
        let c = Catalog::testbed();
        assert!(c.markets().len() < 20);
        assert_eq!(c.regions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_builder_panics() {
        let _ = CatalogBuilder::new().build();
    }
}
