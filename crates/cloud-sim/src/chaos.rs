//! Deterministic fault injection: scheduled outages, throttling storms,
//! error bursts, delayed event delivery, and capacity evictions with
//! advance interruption notices.
//!
//! Real providers misbehave in ways the polite API surface of [`crate::api`]
//! never shows: regional API outages, request-rate storms, transient
//! `InternalError` bursts, and — per the SpotLake measurements — capacity
//! reclaims announced through interruption notices rather than price
//! crossings. [`ChaosConfig`] describes those faults declaratively on
//! [`crate::config::SimConfig`]; the cloud injects them during its tick
//! and at the API boundary.
//!
//! ## Determinism
//!
//! Scheduled windows ([`ChaosWindow`]) are explicit configuration, so
//! they are trivially identical across runs. The stochastic draws —
//! per-call error-burst coin flips, per-event delivery delays, and
//! per-market eviction picks — come from **dedicated per-region chaos
//! RNG streams** forked from the seed *after* the demand streams (see
//! `CHAOS_STREAM_BASE` in [`crate::cloud`]). Two consequences:
//!
//! * enabling chaos does not perturb the demand trajectory of a seed —
//!   prices and surges replay exactly as in the chaos-free run; and
//! * every chaos draw happens inside its region's shard, in shard-local
//!   phase order, so a given seed + [`ChaosConfig`] yields a
//!   bit-identical fault schedule at any thread count (the same
//!   contract, and the same proptest harness, as the demand streams).
//!
//! ## Cost when disabled
//!
//! The default configuration injects nothing and [`ChaosConfig::is_enabled`]
//! is `false`; the tick and API paths then pay a single branch. The
//! `tick/tick_chaos_disabled` bench in `benches/substrate.rs` gates
//! this.

use crate::ids::Region;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A scheduled per-region fault window `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosWindow {
    /// The region the fault applies to.
    pub region: Region,
    /// When the fault begins (absolute simulation time).
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
}

impl ChaosWindow {
    /// The exclusive end of the window.
    pub fn end(&self) -> SimTime {
        self.start.saturating_add(self.duration)
    }

    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: SimTime) -> bool {
        at >= self.start && at < self.end()
    }
}

/// A transient-error burst: during the window, each API call in the
/// region independently fails with [`crate::api::ApiError::InternalError`]
/// with probability `fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBurst {
    /// When and where the burst applies.
    pub window: ChaosWindow,
    /// Per-call failure probability in `[0, 1]`.
    pub fraction: f64,
}

/// Delayed event delivery: each emitted [`crate::cloud::CloudEvent`]
/// is independently held back a uniform `1..=max_delay_ticks` ticks
/// with probability `probability`. Event timestamps keep the original
/// emission time — only *delivery* to the subscriber lags, the way a
/// slow notification pipeline lags the price history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventDelay {
    /// Per-event delay probability in `[0, 1]`.
    pub probability: f64,
    /// Maximum delivery delay, in ticks (at least 1 to have any effect).
    pub max_delay_ticks: u32,
}

/// Capacity evictions with advance interruption notices: markets are
/// picked at `rate_per_market_day`; a picked market emits a
/// [`crate::cloud::CloudEvent::CapacityEvictionNotice`] `notice_lead`
/// ahead of the reclaim, running spot instances there get revocation
/// warnings, and at eviction time the pool withholds spot capacity for
/// `hold` (new requests see `capacity-not-available`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvictionProfile {
    /// Poisson rate of evictions per market per day.
    pub rate_per_market_day: f64,
    /// Advance warning between the notice and the reclaim.
    pub notice_lead: SimDuration,
    /// How long the evicted capacity stays withheld.
    pub hold: SimDuration,
}

/// Declarative fault-injection plan. The default injects nothing.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Regional API outages: every call fails with
    /// [`crate::api::ApiError::ServiceUnavailable`].
    pub outages: Vec<ChaosWindow>,
    /// Throttling storms: the region's token bucket is pinned empty and
    /// every call fails with [`crate::api::ApiError::RequestLimitExceeded`].
    pub throttle_storms: Vec<ChaosWindow>,
    /// Transient-error bursts.
    pub error_bursts: Vec<ErrorBurst>,
    /// Delayed event delivery, if any.
    pub event_delay: Option<EventDelay>,
    /// Capacity evictions with interruption notices, if any.
    pub evictions: Option<EvictionProfile>,
}

impl ChaosConfig {
    /// Whether any fault is configured at all. When `false`, the tick
    /// and API paths skip chaos entirely (one branch).
    pub fn is_enabled(&self) -> bool {
        !self.outages.is_empty()
            || !self.throttle_storms.is_empty()
            || !self.error_bursts.is_empty()
            || self.event_delay.is_some()
            || self.evictions.is_some()
    }

    /// Validates probabilities, rates, and window shapes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.outages.iter().chain(&self.throttle_storms) {
            if w.duration.is_zero() {
                return Err(format!("chaos window in {} has zero duration", w.region));
            }
        }
        for b in &self.error_bursts {
            if b.window.duration.is_zero() {
                return Err(format!(
                    "error burst in {} has zero duration",
                    b.window.region
                ));
            }
            if !(0.0..=1.0).contains(&b.fraction) {
                return Err(format!(
                    "error burst fraction must be in [0,1], got {}",
                    b.fraction
                ));
            }
        }
        if let Some(d) = self.event_delay {
            if !(0.0..=1.0).contains(&d.probability) {
                return Err(format!(
                    "event delay probability must be in [0,1], got {}",
                    d.probability
                ));
            }
            if d.max_delay_ticks == 0 {
                return Err("event delay max_delay_ticks must be at least 1".into());
            }
        }
        if let Some(e) = self.evictions {
            if e.rate_per_market_day < 0.0 || !e.rate_per_market_day.is_finite() {
                return Err(format!(
                    "eviction rate must be finite and non-negative, got {}",
                    e.rate_per_market_day
                ));
            }
            if e.hold.is_zero() {
                return Err("eviction hold must be positive".into());
            }
        }
        Ok(())
    }
}

/// What, if anything, chaos does to one API call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ApiFault {
    /// No fault; the call proceeds normally.
    None,
    /// Regional outage: fail with `ServiceUnavailable`.
    Outage,
    /// Throttling storm: drain the token bucket and fail with
    /// `RequestLimitExceeded`.
    Throttled,
    /// Transient burst failure: fail with `InternalError`.
    Transient,
}

/// One region's chaos runtime: its slice of the schedule plus the
/// region's dedicated chaos RNG stream. Lives on the region shard so
/// every draw happens shard-locally (the determinism contract).
#[derive(Debug, Clone)]
pub(crate) struct ChaosState {
    /// Fast-path flag: the *global* config enables chaos. Kept even for
    /// regions with no scheduled windows, because stochastic faults
    /// (bursts, delays, evictions) may still apply.
    enabled: bool,
    /// This region's outage windows, as `(start, end)` seconds.
    outages: Vec<(u64, u64)>,
    /// This region's throttle storms, as `(start, end)` seconds.
    storms: Vec<(u64, u64)>,
    /// This region's error bursts, as `(start, end, fraction)`.
    bursts: Vec<(u64, u64, f64)>,
    /// Event-delay knob (global, copied per shard).
    pub delay: Option<EventDelay>,
    /// Eviction knob (global, copied per shard).
    pub evictions: Option<EvictionProfile>,
    /// The region's chaos stream — independent of its demand stream.
    pub rng: SimRng,
}

impl ChaosState {
    /// Builds the runtime slice of `config` for one region.
    pub fn for_region(config: &ChaosConfig, region_idx: usize, rng: SimRng) -> Self {
        let mine = |w: &ChaosWindow| w.region.index() == region_idx;
        ChaosState {
            enabled: config.is_enabled(),
            outages: config
                .outages
                .iter()
                .filter(|w| mine(w))
                .map(|w| (w.start.as_secs(), w.end().as_secs()))
                .collect(),
            storms: config
                .throttle_storms
                .iter()
                .filter(|w| mine(w))
                .map(|w| (w.start.as_secs(), w.end().as_secs()))
                .collect(),
            bursts: config
                .error_bursts
                .iter()
                .filter(|b| mine(&b.window))
                .map(|b| {
                    (
                        b.window.start.as_secs(),
                        b.window.end().as_secs(),
                        b.fraction,
                    )
                })
                .collect(),
            delay: config.event_delay,
            evictions: config.evictions,
            rng,
        }
    }

    /// Whether any fault is configured anywhere (the one-branch gate).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Classifies one API call at `now`. Outages shadow storms shadow
    /// bursts; the burst coin flip is drawn only while a burst window is
    /// active, so quiet periods consume no randomness. The schedules
    /// are tiny (hand-written fault plans), so a linear scan beats
    /// cursor bookkeeping.
    pub fn api_fault(&mut self, now: SimTime) -> ApiFault {
        if !self.enabled {
            return ApiFault::None;
        }
        let t = now.as_secs();
        let active = |&(s, e): &(u64, u64)| t >= s && t < e;
        if self.outages.iter().any(active) {
            return ApiFault::Outage;
        }
        if self.storms.iter().any(active) {
            return ApiFault::Throttled;
        }
        let fraction = self
            .bursts
            .iter()
            .filter(|&&(s, e, _)| t >= s && t < e)
            .map(|&(_, _, f)| f)
            .fold(0.0_f64, f64::max);
        if fraction > 0.0 && self.rng.chance(fraction) {
            return ApiFault::Transient;
        }
        ApiFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u64, dur: u64) -> ChaosWindow {
        ChaosWindow {
            region: Region::UsEast1,
            start: SimTime::from_secs(start),
            duration: SimDuration::from_secs(dur),
        }
    }

    #[test]
    fn default_is_disabled_and_valid() {
        let c = ChaosConfig::default();
        assert!(!c.is_enabled());
        c.validate().unwrap();
    }

    #[test]
    fn window_bounds_are_half_open() {
        let w = window(100, 50);
        assert!(!w.contains(SimTime::from_secs(99)));
        assert!(w.contains(SimTime::from_secs(100)));
        assert!(w.contains(SimTime::from_secs(149)));
        assert!(!w.contains(SimTime::from_secs(150)));
    }

    #[test]
    fn validation_catches_bad_knobs() {
        let mut c = ChaosConfig::default();
        c.outages.push(window(0, 0));
        assert!(c.validate().is_err());

        let mut c = ChaosConfig::default();
        c.error_bursts.push(ErrorBurst {
            window: window(0, 100),
            fraction: 1.5,
        });
        assert!(c.validate().is_err());

        let c = ChaosConfig {
            event_delay: Some(EventDelay {
                probability: 0.5,
                max_delay_ticks: 0,
            }),
            ..ChaosConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ChaosConfig {
            evictions: Some(EvictionProfile {
                rate_per_market_day: -1.0,
                notice_lead: SimDuration::from_secs(120),
                hold: SimDuration::from_secs(600),
            }),
            ..ChaosConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn faults_shadow_in_severity_order() {
        let mut config = ChaosConfig::default();
        config.outages.push(window(100, 100));
        config.throttle_storms.push(window(150, 100));
        config.error_bursts.push(ErrorBurst {
            window: window(0, 1000),
            fraction: 1.0,
        });
        let mut state = ChaosState::for_region(&config, 0, SimRng::seed_from(1));
        // Outage shadows the storm and the burst.
        assert_eq!(state.api_fault(SimTime::from_secs(160)), ApiFault::Outage);
        // Storm shadows the burst once the outage ends.
        assert_eq!(
            state.api_fault(SimTime::from_secs(210)),
            ApiFault::Throttled
        );
        // Burst alone: fraction 1.0 always fires.
        assert_eq!(
            state.api_fault(SimTime::from_secs(500)),
            ApiFault::Transient
        );
        // Another region sees nothing.
        let mut other = ChaosState::for_region(&config, 3, SimRng::seed_from(1));
        assert_eq!(other.api_fault(SimTime::from_secs(160)), ApiFault::None);
    }

    #[test]
    fn disabled_state_draws_nothing() {
        let config = ChaosConfig::default();
        let mut state = ChaosState::for_region(&config, 0, SimRng::seed_from(7));
        let before = state.rng.clone();
        for t in 0..100 {
            assert_eq!(state.api_fault(SimTime::from_secs(t)), ApiFault::None);
        }
        // The RNG was never touched: replays stay aligned.
        assert_eq!(state.rng.uniform(), {
            let mut b = before;
            b.uniform()
        });
    }
}
