//! The simulated cloud: pools, markets, instances, and the tick loop
//! that advances demand, clears every spot market, and drives
//! revocations.
//!
//! [`Cloud`] owns all dynamic state. Requests arrive through the API
//! methods in [`crate::api`]; the engine (or any driver) calls
//! [`Cloud::tick`] to advance time one demand step and then drains
//! [`Cloud::take_events`] for what happened.
//!
//! # The no-allocation tick contract
//!
//! `Cloud::tick` is the simulator's hot path: the repro experiments run
//! it millions of times, so the steady-state tick performs **no heap
//! allocation**. Concretely:
//!
//! * the demand profile and per-pool market indices are only *borrowed*
//!   during a tick — never cloned (the borrow checker permits this
//!   because each phase touches disjoint `Cloud` fields);
//! * static topology (pools per region, sibling pools, market indices)
//!   is precomputed once in [`Cloud::new`];
//! * per-tick working sets reuse scratch buffers owned by `Cloud`
//!   (`scratch` for bid-level masses, `request_scratch` for the active
//!   spot-request sweep).
//!
//! `events` and the per-request bookkeeping may still allocate when
//! *new* work appears (an event is emitted, a request is admitted) —
//! amortized by `Vec` growth — but a quiescent tick allocates nothing.
//! Keep it that way: anything added to the tick path should either
//! borrow or reuse a scratch buffer, and `benches/substrate.rs` guards
//! the budget.

use crate::billing::{Ledger, UsageKind};
use crate::catalog::Catalog;
use crate::config::SimConfig;
use crate::demand::{surge_weights, LevelGrid, MarketDemand, PoolDemand, RegionDemand, Surge};
use crate::ids::{Family, InstanceId, MarketId, PoolId, Region, SpotRequestId};
use crate::lifecycle::{OdState, SpotRequestState, Tracked};
use crate::market::{clear, MarketState};
use crate::pool::CapacityPool;
use crate::price::Price;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceStore;
use std::collections::{BTreeSet, HashMap};

/// Something observable that happened inside the cloud.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CloudEvent {
    /// A market's published spot price changed.
    PriceChange {
        /// The market whose price changed.
        market: MarketId,
        /// The previous published price.
        previous: Price,
        /// The new published price.
        price: Price,
        /// When the new price became visible.
        at: SimTime,
    },
    /// A spot instance received its two-minute revocation warning.
    SpotRevocationWarning {
        /// The owning request.
        request: SpotRequestId,
        /// The market the instance runs in.
        market: MarketId,
        /// When the warning was issued.
        at: SimTime,
        /// When the instance will be reclaimed.
        terminate_at: SimTime,
    },
    /// A spot instance was reclaimed because the price exceeded its bid.
    SpotTerminatedByPrice {
        /// The owning request.
        request: SpotRequestId,
        /// The market the instance ran in.
        market: MarketId,
        /// When the instance was reclaimed.
        at: SimTime,
    },
    /// A held spot request changed status during re-evaluation.
    SpotRequestUpdate {
        /// The request.
        request: SpotRequestId,
        /// The market it targets.
        market: MarketId,
        /// Its new status.
        status: SpotRequestState,
        /// When the status changed.
        at: SimTime,
    },
    /// Ground truth: a pool ran out of on-demand capacity.
    PoolShortageStarted {
        /// The pool.
        pool: PoolId,
        /// When the shortage began.
        at: SimTime,
    },
    /// Ground truth: a pool's on-demand shortage ended.
    PoolShortageEnded {
        /// The pool.
        pool: PoolId,
        /// When the shortage ended.
        at: SimTime,
    },
}

/// One capacity pool with its demand process and clearing bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct PoolEntry {
    pub id: PoolId,
    pub pool: CapacityPool,
    pub demand: PoolDemand,
    pub market_indices: Vec<usize>,
    /// Mean spot/od price ratio of member markets after the last tick.
    pub last_ratio: f64,
    /// End of the current reclaim (spot → od shift) window.
    pub reclaim_until: SimTime,
    /// Demand spilled toward this pool for the next tick, in units.
    pub spill_next: f64,
    /// Whether a ground-truth shortage interval is open.
    pub shortage_open: bool,
    /// End of the current parked (capacity-withholding) state.
    pub parked_until: SimTime,
}

/// One spot market with its demand process.
#[derive(Debug, Clone)]
pub(crate) struct MarketEntry {
    pub id: MarketId,
    pub state: MarketState,
    pub demand: MarketDemand,
    pub pool_idx: usize,
    pub volatility: f64,
}

/// An externally launched on-demand instance.
#[derive(Debug, Clone)]
pub struct OdInstance {
    /// Instance id.
    pub id: InstanceId,
    /// The market it runs in.
    pub market: MarketId,
    /// Capacity units it occupies.
    pub units: u32,
    /// Launch time.
    pub launched_at: SimTime,
    /// Lifecycle state (Figure 3.1).
    pub state: Tracked<OdState>,
}

/// An externally submitted spot instance request.
#[derive(Debug, Clone)]
pub struct SpotRequest {
    /// Request id.
    pub id: SpotRequestId,
    /// The market it targets.
    pub market: MarketId,
    /// The maximum price the requester will pay.
    pub bid: Price,
    /// Capacity units per instance.
    pub units: u32,
    /// Lifecycle state (Figure 3.2).
    pub state: Tracked<SpotRequestState>,
    /// The launched instance, if fulfilled.
    pub instance: Option<InstanceId>,
    /// When the instance launched.
    pub launched_at: Option<SimTime>,
    /// The spot price at launch (the billing rate).
    pub launch_price: Option<Price>,
    /// When a marked instance will be reclaimed.
    pub terminate_at: Option<SimTime>,
}

/// Per-region API bookkeeping: token-bucket rate limiting and service
/// limits (Chapter 4).
#[derive(Debug, Clone)]
pub(crate) struct RegionApiState {
    pub tokens: f64,
    pub last_refill: SimTime,
    pub od_running: u32,
    pub spot_open: u32,
}

impl RegionApiState {
    fn new() -> Self {
        RegionApiState {
            tokens: 0.0,
            last_refill: SimTime::ZERO,
            od_running: 0,
            spot_open: 0,
        }
    }

    /// Refills the bucket up to one minute's burst and consumes a token.
    pub fn try_consume(&mut self, now: SimTime, per_minute: u32) -> bool {
        let burst = per_minute as f64;
        let elapsed = now.saturating_since(self.last_refill).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * per_minute as f64 / 60.0).min(burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The simulated IaaS cloud.
pub struct Cloud {
    pub(crate) catalog: Catalog,
    pub(crate) config: SimConfig,
    pub(crate) now: SimTime,
    pub(crate) pools: Vec<PoolEntry>,
    pub(crate) markets: Vec<MarketEntry>,
    pub(crate) pool_index: HashMap<PoolId, usize>,
    pub(crate) market_index: HashMap<MarketId, usize>,
    /// Pools of the same family in the same region, per pool.
    pub(crate) sibling_pools: Vec<Vec<usize>>,
    /// Pool indices per region (indexed by [`Region::index`]), so surge
    /// spawning never rebuilds candidate lists on the tick path.
    region_pools: Vec<Vec<usize>>,
    /// Indices of regions with at least one pool; region-level demand
    /// and surge draws skip absent regions entirely.
    active_regions: Vec<usize>,
    pub(crate) region_demand: Vec<RegionDemand>,
    pub(crate) od_instances: HashMap<InstanceId, OdInstance>,
    pub(crate) spot_requests: HashMap<SpotRequestId, SpotRequest>,
    /// Non-terminal spot requests, re-evaluated every tick.
    pub(crate) active_spot: BTreeSet<SpotRequestId>,
    pub(crate) region_api: Vec<RegionApiState>,
    pub(crate) ledger: Ledger,
    pub(crate) trace: TraceStore,
    pub(crate) rng: SimRng,
    pub(crate) next_id: u64,
    pub(crate) events: Vec<CloudEvent>,
    surge_dist: Vec<f64>,
    /// Precomputed normalized level profile and tilt basis.
    level_grid: LevelGrid,
    /// Reusable bid-level mass buffer for market clearing.
    scratch: Vec<f64>,
    /// Reusable request-id buffer for the per-tick spot-request sweep.
    request_scratch: Vec<SpotRequestId>,
}

impl std::fmt::Debug for Cloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cloud")
            .field("now", &self.now)
            .field("pools", &self.pools.len())
            .field("markets", &self.markets.len())
            .field("od_instances", &self.od_instances.len())
            .field("spot_requests", &self.spot_requests.len())
            .finish_non_exhaustive()
    }
}

impl Cloud {
    /// Creates a cloud over `catalog` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(catalog: Catalog, config: SimConfig) -> Self {
        config.validate().expect("invalid simulation config");
        let profile = &config.demand;
        let mut rng = SimRng::seed_from(config.seed);

        let mut pool_index = HashMap::new();
        let mut market_index = HashMap::new();
        let mut pools: Vec<PoolEntry> = Vec::with_capacity(catalog.pools().len());
        let mut markets: Vec<MarketEntry> = Vec::with_capacity(catalog.markets().len());

        for (i, &pid) in catalog.pools().iter().enumerate() {
            pool_index.insert(pid, i);
            let member_units = catalog.pool_member_units(pid) as f64;
            let physical =
                (profile.pool_scale * member_units * profile.family_pool_scale(pid.family))
                    .round()
                    .max(8.0) as u64;
            let granted = (profile.reserved_fraction * physical as f64).round() as u64;
            let pressure = profile.pool_pressure(pid);
            let demand = PoolDemand::new(
                physical - granted,
                granted,
                profile.family_volatility(pid.family),
                pressure,
                profile.region_phase(pid.az.region()),
                profile,
            );
            pools.push(PoolEntry {
                id: pid,
                pool: CapacityPool::new(physical, granted),
                demand,
                market_indices: Vec::new(),
                last_ratio: profile.level_multiples[0],
                reclaim_until: SimTime::ZERO,
                spill_next: 0.0,
                shortage_open: false,
                parked_until: SimTime::ZERO,
            });
        }

        // Market weights: normalized within each pool.
        let mut raw_weight: Vec<f64> = Vec::with_capacity(catalog.markets().len());
        let mut pool_weight_sum: Vec<f64> = vec![0.0; pools.len()];
        for &mid in catalog.markets() {
            let w = profile.platform_weight(mid.platform)
                * profile.size_weight(mid.instance_type.size());
            let pi = pool_index[&mid.pool()];
            raw_weight.push(w);
            pool_weight_sum[pi] += w;
        }

        for (k, &mid) in catalog.markets().iter().enumerate() {
            let pi = pool_index[&mid.pool()];
            let weight = raw_weight[k] / pool_weight_sum[pi];
            let pool = &pools[pi];
            let physical = pool.pool.physical() as f64;
            let granted = pool.pool.reserved_granted() as f64;
            let od_cap = physical - granted;
            let pressure = profile.pool_pressure(mid.pool());
            let expected_supply = (physical
                - profile.reserved_util_mean * granted
                - (profile.od_base_util * pressure).min(1.0) * od_cap)
                .max(0.05 * physical);
            let units = mid.instance_type.units();
            let base_mass =
                (expected_supply * weight / units as f64) * profile.spot_demand_intensity;
            let state = MarketState::new(
                catalog.od_price(mid),
                weight,
                base_mass,
                units,
                profile.level_multiples[0],
            );
            market_index.insert(mid, markets.len());
            pools[pi].market_indices.push(markets.len());
            markets.push(MarketEntry {
                id: mid,
                state,
                demand: MarketDemand::new(),
                pool_idx: pi,
                volatility: profile.family_volatility(mid.instance_type.family()),
            });
        }

        // Sibling pools: same family, same region, different zone.
        let mut by_region_family: HashMap<(Region, Family), Vec<usize>> = HashMap::new();
        for (i, p) in pools.iter().enumerate() {
            by_region_family
                .entry((p.id.az.region(), p.id.family))
                .or_default()
                .push(i);
        }
        let sibling_pools: Vec<Vec<usize>> = pools
            .iter()
            .enumerate()
            .map(|(i, p)| {
                by_region_family[&(p.id.az.region(), p.id.family)]
                    .iter()
                    .copied()
                    .filter(|&j| j != i)
                    .collect()
            })
            .collect();

        let mut region_pools: Vec<Vec<usize>> = vec![Vec::new(); 9];
        for (i, p) in pools.iter().enumerate() {
            region_pools[p.id.az.region().index()].push(i);
        }
        let active_regions: Vec<usize> = (0..9).filter(|&r| !region_pools[r].is_empty()).collect();

        let surge_dist = surge_weights(
            &profile.level_multiples,
            0.85,
            profile.surge_bid_decay,
            profile.surge_bid_cap_share,
        );
        let n_levels = profile.level_multiples.len();
        let level_grid = LevelGrid::new(profile);
        let trace = TraceStore::new(config.record_all_prices);
        let region_demand = vec![RegionDemand::new(); 9];
        let region_api = (0..9).map(|_| RegionApiState::new()).collect();
        let demand_rng = rng.fork(1);

        Cloud {
            catalog,
            config,
            now: SimTime::ZERO,
            pools,
            markets,
            pool_index,
            market_index,
            sibling_pools,
            region_pools,
            active_regions,
            region_demand,
            od_instances: HashMap::new(),
            spot_requests: HashMap::new(),
            active_spot: BTreeSet::new(),
            region_api,
            ledger: Ledger::new(),
            trace,
            rng: demand_rng,
            next_id: 1,
            events: Vec::new(),
            surge_dist,
            level_grid,
            scratch: vec![0.0; n_levels],
            request_scratch: Vec::new(),
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The catalog this cloud serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The account ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The trace store (price histories, ground-truth shortages).
    pub fn trace(&self) -> &TraceStore {
        &self.trace
    }

    /// Starts recording the full price history of a market.
    pub fn watch_market(&mut self, market: MarketId) {
        self.trace.watch(market);
    }

    /// Drains the events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<CloudEvent> {
        std::mem::take(&mut self.events)
    }

    /// Runs `ticks` demand steps to move the system off its artificial
    /// initial state before an experiment begins.
    pub fn warmup(&mut self, ticks: u32) {
        for _ in 0..ticks {
            self.tick();
        }
        self.events.clear();
    }

    pub(crate) fn fresh_instance_id(&mut self) -> InstanceId {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        id
    }

    pub(crate) fn fresh_request_id(&mut self) -> SpotRequestId {
        let id = SpotRequestId(self.next_id);
        self.next_id += 1;
        id
    }

    // ---------------------------------------------------------------
    // Oracle accessors (simulation-side ground truth; not part of the
    // rate-limited API).
    // ---------------------------------------------------------------

    /// The true (instantaneous) clearing price of a market.
    pub fn oracle_true_price(&self, market: MarketId) -> Option<Price> {
        self.market_index
            .get(&market)
            .map(|&i| self.markets[i].state.true_price())
    }

    /// The currently published price of a market (no API token consumed).
    pub fn oracle_published_price(&self, market: MarketId) -> Option<Price> {
        self.market_index
            .get(&market)
            .map(|&i| self.markets[i].state.published_price())
    }

    /// Whether an on-demand request for this market would be admitted
    /// right now (ground truth, no probe).
    pub fn oracle_od_available(&self, market: MarketId) -> Option<bool> {
        let &pi = self.pool_index.get(&market.pool())?;
        let units = u64::from(market.instance_type.units());
        Some(self.pools[pi].pool.check_od_admission(units).is_ok())
    }

    /// Ground-truth snapshot of a pool.
    pub fn oracle_pool(&self, pool: PoolId) -> Option<crate::pool::PoolSnapshot> {
        self.pool_index
            .get(&pool)
            .map(|&i| self.pools[i].pool.snapshot())
    }

    /// Number of markets simulated.
    pub fn market_count(&self) -> usize {
        self.markets.len()
    }

    /// Number of capacity pools simulated.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    // ---------------------------------------------------------------
    // The tick loop.
    // ---------------------------------------------------------------

    /// Advances the simulation one demand tick: publishes pending price
    /// changes, updates demand, clears every market, spawns surges, and
    /// processes spot revocations and held-request re-evaluation.
    pub fn tick(&mut self) {
        let dt = self.config.tick;
        self.now += dt;
        let now = self.now;

        self.publish_due_prices(now);
        self.update_region_demand();
        self.update_pools(now);
        self.clear_markets(now);
        self.spawn_surges(now, dt);
        self.process_spot_requests(now);
        self.gc_terminal_requests();
    }

    /// Benchmark hook: one market-clearing pass at the current time,
    /// without advancing demand or request processing. Exists so the
    /// substrate bench can isolate the clearing cost; not part of the
    /// simulation API.
    #[doc(hidden)]
    pub fn bench_clear_markets(&mut self) {
        self.clear_markets(self.now);
    }

    fn publish_due_prices(&mut self, now: SimTime) {
        for m in &mut self.markets {
            let previous = m.state.published_price();
            if let Some(price) = m.state.publish_due(now) {
                let at = now; // published within the elapsed tick
                self.trace.record_price(m.id, at, price);
                self.events.push(CloudEvent::PriceChange {
                    market: m.id,
                    previous,
                    price,
                    at,
                });
            }
        }
    }

    fn update_region_demand(&mut self) {
        // Only regions the catalog actually offers get a demand process;
        // absent regions would burn a normal draw per tick for state
        // nobody reads.
        for &r in &self.active_regions {
            self.region_demand[r].tick(&self.config.demand, &mut self.rng);
        }
    }

    fn update_pools(&mut self, now: SimTime) {
        // Borrow the profile rather than cloning it: the loop only
        // touches `pools`, `region_demand`, `sibling_pools`, `trace`,
        // `events`, and `rng` — all fields disjoint from `config`.
        let profile = &self.config.demand;
        let warning = self.config.revocation_warning;
        for i in 0..self.pools.len() {
            // Apply spill-in scheduled by siblings last tick.
            let spill = self.pools[i].spill_next;
            self.pools[i].spill_next = 0.0;
            self.pools[i].demand.spill_in += spill;

            let region = self.pools[i].id.az.region();
            let busy = self.region_demand[region.index()].busy();
            let targets = self.pools[i].demand.tick(now, profile, busy, &mut self.rng);

            // Parking: a persistent capacity-withholding state the
            // operator enters during low-price regimes (§5.3) and leaves
            // after a lognormal-distributed episode.
            let ratio = self.pools[i].last_ratio;
            let aggressiveness = profile.park_region_aggressiveness[region.index()];
            if now >= self.pools[i].parked_until
                && ratio < profile.park_ratio_hi
                && aggressiveness > 0.0
            {
                let rate = profile.park_enter_rate_per_day
                    * aggressiveness
                    * (1.0 - ratio / profile.park_ratio_hi);
                let dt_days = self.config.tick.as_secs() as f64 / 86_400.0;
                if self.rng.chance(rate * dt_days) {
                    let dur = self
                        .rng
                        .lognormal_median(
                            profile.park_duration_median_secs,
                            profile.park_duration_sigma,
                        )
                        .max(300.0) as u64;
                    self.pools[i].parked_until = now + SimDuration::from_secs(dur);
                }
            }
            let parked_frac = if now < self.pools[i].parked_until {
                1.0
            } else {
                0.0
            };

            let displaced = self.pools[i].pool.apply_demand(
                targets.reserved_units,
                targets.od_units,
                parked_frac,
            );

            if displaced > 0 {
                self.pools[i].pool.set_reclaiming(true);
                self.pools[i].reclaim_until = now + warning;
            } else if now >= self.pools[i].reclaim_until {
                self.pools[i].pool.set_reclaiming(false);
            }

            // Ground-truth shortage intervals + spill-over to siblings.
            let short = self.pools[i].pool.od_shortage();
            if short && !self.pools[i].shortage_open {
                self.pools[i].shortage_open = true;
                self.trace.shortage_started(self.pools[i].id, now);
                self.events.push(CloudEvent::PoolShortageStarted {
                    pool: self.pools[i].id,
                    at: now,
                });
            } else if !short && self.pools[i].shortage_open {
                self.pools[i].shortage_open = false;
                self.trace.shortage_ended(self.pools[i].id, now);
                self.events.push(CloudEvent::PoolShortageEnded {
                    pool: self.pools[i].id,
                    at: now,
                });
            }
            if short {
                let unmet = self.pools[i].pool.od_unmet() as f64;
                let siblings = &self.sibling_pools[i];
                if !siblings.is_empty() {
                    let share = profile.spill_fraction * unmet / siblings.len() as f64;
                    for &j in siblings {
                        self.pools[j].spill_next += share;
                    }
                }
            }
        }
    }

    fn clear_markets(&mut self, now: SimTime) {
        // Like `update_pools`, this borrows the profile and each pool's
        // market-index list in place: `pools` is only read while
        // `markets`, `rng`, and `scratch` are written, so nothing needs
        // to be cloned per tick.
        let profile = &self.config.demand;
        let (lag_lo, lag_hi) = self.config.price_lag_secs;
        let multiples = &profile.level_multiples;

        for pi in 0..self.pools.len() {
            let supply_units = self.pools[pi].pool.spot_supply() as f64;
            let mut served_units_total = 0.0_f64;
            let mut ratio_sum = 0.0_f64;
            let n_markets = self.pools[pi].market_indices.len();
            for k in 0..n_markets {
                let mi = self.pools[pi].market_indices[k];
                let m = &mut self.markets[mi];
                m.demand.tick(now, profile, &mut self.rng);
                m.demand.level_masses_into(
                    &self.level_grid,
                    m.state.base_mass,
                    &self.surge_dist,
                    &mut self.scratch,
                );
                let supply_m = supply_units * m.state.weight / m.state.units as f64;
                let clearing = clear(multiples, &self.scratch, supply_m);
                // Draw a propagation lag only when the price actually
                // moves; stable markets skip the randomness entirely.
                let price_moves =
                    m.state.od_price.scale(clearing.price_multiple) != m.state.true_price();
                let lag = if price_moves && lag_hi > lag_lo {
                    self.rng.uniform_range(lag_lo as f64, lag_hi as f64) as u64
                } else {
                    lag_lo
                };
                m.state
                    .apply_clearing(clearing, now, now + SimDuration::from_secs(lag));
                served_units_total += clearing.served * m.state.units as f64;
                ratio_sum += m.state.price_ratio();
            }
            // The operator keeps a sliver of spot supply free of the
            // background market so well-priced new requests can fulfil.
            let cap_units = (supply_units * (1.0 - profile.spot_headroom_frac)).floor();
            self.pools[pi]
                .pool
                .set_spot_market(served_units_total.min(cap_units).round().max(0.0) as u64);
            if n_markets > 0 {
                self.pools[pi].last_ratio = ratio_sum / n_markets as f64;
            }
        }
    }

    fn spawn_surges(&mut self, now: SimTime, dt: SimDuration) {
        let profile = &self.config.demand;
        let dt_days = dt.as_secs() as f64 / 86_400.0;

        // Zone-local pool surges: rare, heavy-tailed, uncorrelated.
        for i in 0..self.pools.len() {
            let pressure = profile.pool_pressure(self.pools[i].id);
            let vol = profile.family_volatility(self.pools[i].id.family);
            let rate = profile.pool_surge_rate_per_day
                * vol.sqrt()
                * pressure.powf(profile.surge_rate_pressure_exp);
            if self.rng.chance(rate * dt_days) {
                let magnitude = (self
                    .rng
                    .pareto(profile.surge_magnitude_scale, profile.surge_magnitude_alpha)
                    * pressure.powf(profile.surge_magnitude_pressure_exp))
                .min(profile.surge_magnitude_cap);
                // Specialized families suffer longer shortages (the
                // heavy Figure 5.9 tail and the chronic d2/g2 outages of
                // the case studies).
                let duration = (self.rng.lognormal_median(
                    profile.surge_duration_median_secs,
                    profile.surge_duration_sigma,
                ) * vol)
                    .max(60.0) as u64;
                self.pools[i].demand.add_surge(Surge {
                    magnitude,
                    ends_at: now + SimDuration::from_secs(duration),
                });
            }
        }

        // Region-wide family surges: moderate, correlated across zones.
        for &ri in &self.active_regions {
            let pressure = profile.region_pressure[ri];
            let rate =
                profile.region_surge_rate_per_day * pressure.powf(profile.surge_rate_pressure_exp);
            if !self.rng.chance(rate * dt_days) {
                continue;
            }
            // Pick a family actually offered in this region, using the
            // region→pool index built at construction.
            let candidates = &self.region_pools[ri];
            let anchor = candidates[self.rng.uniform_usize(0, candidates.len())];
            let family = self.pools[anchor].id.family;
            let base_mag = (self
                .rng
                .pareto(profile.surge_magnitude_scale, profile.surge_magnitude_alpha)
                * profile.region_surge_attenuation
                * pressure.powf(profile.surge_magnitude_pressure_exp))
            .min(profile.surge_magnitude_cap);
            let duration = self
                .rng
                .lognormal_median(
                    profile.surge_duration_median_secs,
                    profile.surge_duration_sigma,
                )
                .max(60.0) as u64;
            for &i in candidates {
                if self.pools[i].id.family != family {
                    continue;
                }
                let jitter = self.rng.uniform_range(0.6, 1.4);
                let dj = (duration as f64 * self.rng.uniform_range(0.8, 1.2)) as u64;
                self.pools[i].demand.add_surge(Surge {
                    magnitude: base_mag * jitter,
                    ends_at: now + SimDuration::from_secs(dj),
                });
            }
        }

        // Spot-side surges per market: price spikes without a shortage.
        for mi in 0..self.markets.len() {
            let vol = self.markets[mi].volatility;
            let rate = profile.spot_surge_rate_per_day * vol.sqrt();
            if self.rng.chance(rate * dt_days) {
                let magnitude = (self
                    .rng
                    .pareto(profile.spot_surge_scale, profile.spot_surge_alpha)
                    * vol.sqrt())
                .min(profile.spot_surge_cap);
                let duration = self
                    .rng
                    .lognormal_median(
                        profile.surge_duration_median_secs,
                        profile.surge_duration_sigma,
                    )
                    .max(60.0) as u64;
                self.markets[mi].demand.add_surge(Surge {
                    magnitude,
                    ends_at: now + SimDuration::from_secs(duration),
                });
            }
        }
    }

    /// Revocations, reclaim terminations, and held-request re-evaluation.
    fn process_spot_requests(&mut self, now: SimTime) {
        let warning = self.config.revocation_warning;
        // Reuse the sweep buffer instead of collecting a fresh Vec, and
        // read everything a dispatch decision needs in ONE map lookup.
        let mut ids = std::mem::take(&mut self.request_scratch);
        ids.clear();
        ids.extend(self.active_spot.iter().copied());
        for &id in &ids {
            let Some(req) = self.spot_requests.get(&id) else {
                continue;
            };
            let market = req.market;
            let bid = req.bid;
            let terminate_due = req.terminate_at.is_some_and(|t| t <= now);
            let state = req.state.current();
            match state {
                SpotRequestState::Fulfilled => {
                    let mi = self.market_index[&market];
                    let price = self.markets[mi].state.true_price();
                    if price > bid {
                        let terminate_at = now + warning;
                        let req = self.spot_requests.get_mut(&id).expect("present");
                        req.state
                            .transition(SpotRequestState::MarkedForTermination, now)
                            .expect("fulfilled -> marked is legal");
                        req.terminate_at = Some(terminate_at);
                        self.events.push(CloudEvent::SpotRevocationWarning {
                            request: id,
                            market,
                            at: now,
                            terminate_at,
                        });
                    }
                }
                SpotRequestState::MarkedForTermination if terminate_due => {
                    self.finish_revocation(id, now);
                }
                s if s.is_held() => {
                    self.reevaluate_held(id, now);
                }
                _ => {}
            }
        }
        self.request_scratch = ids;
    }

    /// Completes a price revocation: frees capacity, bills (partial hour
    /// free), and emits the termination event.
    fn finish_revocation(&mut self, id: SpotRequestId, now: SimTime) {
        let req = self.spot_requests.get_mut(&id).expect("present");
        req.state
            .transition(SpotRequestState::InstanceTerminatedByPrice, now)
            .expect("marked -> terminated-by-price is legal");
        let market = req.market;
        let units = u64::from(req.units);
        let launched = req.launched_at.expect("fulfilled request has launch time");
        let rate = req
            .launch_price
            .expect("fulfilled request has launch price");
        let pi = self.pool_index[&market.pool()];
        self.pools[pi].pool.release_spot_external(units);
        self.ledger.charge(
            now,
            market,
            UsageKind::SpotRevoked,
            now.saturating_since(launched),
            rate,
        );
        self.region_api[market.region().index()].spot_open = self.region_api
            [market.region().index()]
        .spot_open
        .saturating_sub(1);
        self.events.push(CloudEvent::SpotTerminatedByPrice {
            request: id,
            market,
            at: now,
        });
    }

    /// Re-evaluates a held spot request against current conditions.
    fn reevaluate_held(&mut self, id: SpotRequestId, now: SimTime) {
        let (market, bid, units, old_state) = {
            let r = &self.spot_requests[&id];
            (r.market, r.bid, r.units, r.state.current())
        };
        let outcome = self.evaluate_spot(market, bid, units);
        let new_state = match outcome {
            SpotEval::Fulfill => SpotRequestState::Fulfilled,
            SpotEval::PriceTooLow => SpotRequestState::PriceTooLow,
            SpotEval::Oversubscribed => SpotRequestState::CapacityOversubscribed,
            SpotEval::NotAvailable => SpotRequestState::CapacityNotAvailable,
        };
        if new_state == old_state {
            return;
        }
        if new_state == SpotRequestState::Fulfilled {
            let price = self.markets[self.market_index[&market]].state.true_price();
            self.fulfil_spot(id, now, price);
        } else {
            let req = self.spot_requests.get_mut(&id).expect("present");
            req.state
                .transition(new_state, now)
                .expect("held states rotate freely");
        }
        self.events.push(CloudEvent::SpotRequestUpdate {
            request: id,
            market,
            status: new_state,
            at: now,
        });
    }

    /// Executes fulfilment: occupies the pool (displacing background spot
    /// capacity if needed) and launches the instance.
    pub(crate) fn fulfil_spot(&mut self, id: SpotRequestId, now: SimTime, price: Price) {
        let (market, units) = {
            let r = &self.spot_requests[&id];
            (r.market, u64::from(r.units))
        };
        let pi = self.pool_index[&market.pool()];
        let pool = &mut self.pools[pi].pool;
        if !pool.admit_spot_external(units) {
            // Displace background spot capacity to make room.
            let cur = pool.spot_market_units();
            pool.set_spot_market(cur.saturating_sub(units));
            let admitted = pool.admit_spot_external(units);
            debug_assert!(admitted, "displacement must free enough room");
        }
        let instance = self.fresh_instance_id();
        let req = self.spot_requests.get_mut(&id).expect("present");
        req.state
            .transition(SpotRequestState::Fulfilled, now)
            .expect("held/pending -> fulfilled is legal");
        req.instance = Some(instance);
        req.launched_at = Some(now);
        req.launch_price = Some(price);
    }

    /// Evaluates a spot request against the current market state without
    /// mutating anything.
    pub(crate) fn evaluate_spot(&self, market: MarketId, bid: Price, units: u32) -> SpotEval {
        let mi = self.market_index[&market];
        let m = &self.markets[mi];
        let floor = m.state.floor_price(self.config.demand.level_multiples[0]);
        let price = m.state.true_price();
        if bid < price.max(floor) {
            return SpotEval::PriceTooLow;
        }
        let pool = &self.pools[m.pool_idx].pool;
        let units = u64::from(units);
        // A parked pool withholds capacity from every new spot request
        // regardless of bid — the literal capacity-not-available of §5.3.
        if pool.parking_active() {
            return SpotEval::NotAvailable;
        }
        let room = pool.spot_fulfilment_room() >= units;
        if bid == price {
            if room {
                SpotEval::Fulfill
            } else {
                SpotEval::Oversubscribed
            }
        } else {
            // bid > price: the request can displace the marginal winner
            // unless the market cleared at the floor (no marginal loser).
            let displaceable = pool.spot_market_units() >= units && !m.state.last_clearing.at_floor;
            if room || displaceable {
                SpotEval::Fulfill
            } else {
                SpotEval::NotAvailable
            }
        }
    }

    /// Drops terminal spot requests (their final state was already
    /// returned to the caller and emitted as events).
    fn gc_terminal_requests(&mut self) {
        let mut terminal = std::mem::take(&mut self.request_scratch);
        terminal.clear();
        terminal.extend(self.active_spot.iter().copied().filter(|id| {
            self.spot_requests
                .get(id)
                .is_none_or(|r| r.state.current().is_terminal())
        }));
        for &id in &terminal {
            self.active_spot.remove(&id);
            self.spot_requests.remove(&id);
        }
        self.request_scratch = terminal;
    }
}

/// Outcome of evaluating a spot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpotEval {
    Fulfill,
    PriceTooLow,
    Oversubscribed,
    NotAvailable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DemandProfile;

    fn quiet_cloud() -> Cloud {
        let mut config = SimConfig::paper(42);
        config.demand = DemandProfile::quiet();
        Cloud::new(Catalog::testbed(), config)
    }

    #[test]
    fn construction_wires_indices() {
        let c = quiet_cloud();
        assert_eq!(c.market_count(), c.catalog().markets().len());
        assert_eq!(c.pool_count(), c.catalog().pools().len());
        for &m in c.catalog().markets() {
            assert!(c.oracle_true_price(m).is_some());
        }
    }

    #[test]
    fn tick_advances_time() {
        let mut c = quiet_cloud();
        let t0 = c.now();
        c.tick();
        assert_eq!(c.now(), t0 + c.config().tick);
    }

    #[test]
    fn quiet_cloud_prices_settle_at_floor() {
        let mut c = quiet_cloud();
        c.warmup(50);
        for &m in c.catalog().markets() {
            let price = c.oracle_true_price(m).unwrap();
            let od = c.catalog().od_price(m);
            let ratio = price.ratio_to(od);
            assert!(
                ratio <= 0.30,
                "market {m} should be near the floor, ratio {ratio}"
            );
        }
    }

    #[test]
    fn quiet_cloud_od_always_available() {
        let mut c = quiet_cloud();
        c.warmup(50);
        for &m in c.catalog().markets() {
            assert_eq!(c.oracle_od_available(m), Some(true), "market {m}");
        }
    }

    #[test]
    fn pool_invariants_hold_under_paper_demand() {
        let mut config = SimConfig::paper(7);
        config.demand = DemandProfile::paper_calibration();
        let mut c = Cloud::new(Catalog::testbed(), config);
        for _ in 0..500 {
            c.tick();
            for p in &c.pools {
                assert!(p.pool.invariants_hold(), "pool {} broke invariants", p.id);
            }
        }
    }

    #[test]
    fn price_changes_are_published_with_lag() {
        let mut config = SimConfig::paper(9);
        config.demand = DemandProfile::paper_calibration();
        config.record_all_prices = true;
        let mut c = Cloud::new(Catalog::testbed(), config);
        let mut saw_change = false;
        for _ in 0..300 {
            c.tick();
            for ev in c.take_events() {
                if let CloudEvent::PriceChange { market, price, .. } = ev {
                    saw_change = true;
                    // The published price matches the event.
                    assert_eq!(c.oracle_published_price(market), Some(price));
                }
            }
        }
        assert!(
            saw_change,
            "expected at least one price change in 300 ticks"
        );
    }

    #[test]
    fn shortage_events_are_paired() {
        let config = SimConfig::paper(11);
        let mut c = Cloud::new(Catalog::testbed(), config);
        let mut open: HashMap<PoolId, u32> = HashMap::new();
        for _ in 0..1500 {
            c.tick();
            for ev in c.take_events() {
                match ev {
                    CloudEvent::PoolShortageStarted { pool, .. } => {
                        *open.entry(pool).or_insert(0) += 1;
                        assert_eq!(open[&pool], 1, "double start for {pool}");
                    }
                    CloudEvent::PoolShortageEnded { pool, .. } => {
                        let v = open.get_mut(&pool).expect("end without start");
                        *v -= 1;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn warmup_clears_events() {
        let mut c = quiet_cloud();
        c.warmup(10);
        assert!(c.take_events().is_empty());
    }
}
