//! The simulated cloud: pools, markets, instances, and the tick loop
//! that advances demand, clears every spot market, and drives
//! revocations.
//!
//! [`Cloud`] owns all dynamic state. Requests arrive through the API
//! methods in [`crate::api`]; the engine (or any driver) calls
//! [`Cloud::tick`] to advance time one demand step and then drains
//! [`Cloud::take_events`] (or, allocation-free,
//! [`Cloud::drain_events_into`]) for what happened.
//!
//! # The region-sharded ownership model
//!
//! Pools, markets, demand processes, and spot requests partition cleanly
//! by region: a pool's siblings live in the same region, demand spills
//! only between sibling zones, region surges touch one region, and a
//! spot request targets a single market. The cloud therefore stores all
//! dynamic state in one [`RegionShard`] per catalog region. A shard owns
//!
//! * its pools and markets (with shard-local index vectors and lookup
//!   maps — `PoolEntry::market_indices` and `MarketEntry::pool_idx` are
//!   shard-local indices),
//! * the region's demand process, API token bucket and service-limit
//!   counters, and open spot requests,
//! * its own [`SimRng`] stream, forked per region at construction, and
//! * local output buffers: a `CloudEvent` buffer plus trace-op and
//!   billing-charge buffers that cannot be written to the shared
//!   [`TraceStore`]/[`Ledger`] mid-tick.
//!
//! [`Cloud::tick`] fans the shards out across the **shared persistent
//! worker pool** ([`spotlight_pool::WorkerPool`]) — up to
//! [`crate::config::SimConfig::threads`] worker groups per tick; `1`
//! runs them inline with no cross-thread dispatch at all — and then
//! merges every shard's buffered events, trace ops, and charges in
//! ascending region order. Earlier revisions spawned OS threads via
//! `std::thread::scope` on every tick; the pool's parked workers make
//! dispatch a queue push + wakeup instead of a `clone(2)` (the
//! `pool_dispatch` bench in `crates/bench` tracks the ratio), and the
//! HTTP service and snapshot builder share the same pool, sized once
//! to the host.
//!
//! # The determinism contract
//!
//! Same seed + same config ⇒ identical event stream, prices, traces,
//! and billing **at any thread count**. This holds because (a) each
//! shard only ever draws from its own RNG stream, in a fixed shard-local
//! phase order, (b) shards never touch another shard's state during the
//! parallel phase, and (c) the merge order is the fixed region order,
//! not completion order. `threads` moves wall-clock time only. The
//! `tests/determinism.rs` property test and
//! `cloud::tests::tick_is_thread_count_invariant` guard this contract;
//! keep any new tick-path randomness on the shard's stream and any new
//! cross-shard output in a merged buffer.
//!
//! # The no-allocation tick contract
//!
//! `Cloud::tick` is the simulator's hot path: the repro experiments run
//! it millions of times, so the steady-state tick performs **no heap
//! allocation** (with `threads = 1`; higher settings pay one boxed
//! pool task per worker group plus the worker-group vector per tick —
//! the persistent pool's dispatch cost, orders of magnitude below the
//! per-tick thread spawns it replaced).
//! Concretely:
//!
//! * the demand profile, level grid, and per-pool market indices are
//!   only *borrowed* during a tick — never cloned (shards receive a
//!   shared [`TickCtx`] of read-only state);
//! * static topology (pools per region, sibling pools, market indices)
//!   is precomputed once in [`Cloud::new`];
//! * per-tick working sets reuse scratch buffers owned by each shard
//!   (`scratch` for bid-level masses, `request_scratch` for the active
//!   spot-request sweep), and the per-shard event/trace/charge buffers
//!   keep their capacity across the per-tick drain.
//!
//! `events` and the per-request bookkeeping may still allocate when
//! *new* work appears (an event is emitted, a request is admitted) —
//! amortized by `Vec` growth — but a quiescent tick allocates nothing.
//! Keep it that way: anything added to the tick path should either
//! borrow or reuse a scratch buffer, and `benches/substrate.rs` guards
//! the budget.

use crate::billing::{Ledger, UsageKind};
use crate::catalog::Catalog;
use crate::chaos::ChaosState;
use crate::config::{DemandProfile, SimConfig, PARALLEL_AUTO_MIN_MARKETS};
use crate::demand::{surge_weights, LevelGrid, MarketDemand, PoolDemand, RegionDemand, Surge};
use crate::ids::{Family, InstanceId, MarketId, PoolId, SpotRequestId};
use crate::lifecycle::{OdState, SpotRequestState, Tracked};
use crate::market::{clear_with_total, MarketState};
use crate::pool::CapacityPool;
use crate::price::Price;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceStore;
use spotlight_pool::WorkerPool;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Something observable that happened inside the cloud.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CloudEvent {
    /// A market's published spot price changed.
    PriceChange {
        /// The market whose price changed.
        market: MarketId,
        /// The previous published price.
        previous: Price,
        /// The new published price.
        price: Price,
        /// When the new price became visible.
        at: SimTime,
    },
    /// A spot instance received its two-minute revocation warning.
    SpotRevocationWarning {
        /// The owning request.
        request: SpotRequestId,
        /// The market the instance runs in.
        market: MarketId,
        /// When the warning was issued.
        at: SimTime,
        /// When the instance will be reclaimed.
        terminate_at: SimTime,
    },
    /// A spot instance was reclaimed because the price exceeded its bid.
    SpotTerminatedByPrice {
        /// The owning request.
        request: SpotRequestId,
        /// The market the instance ran in.
        market: MarketId,
        /// When the instance was reclaimed.
        at: SimTime,
    },
    /// A held spot request changed status during re-evaluation.
    SpotRequestUpdate {
        /// The request.
        request: SpotRequestId,
        /// The market it targets.
        market: MarketId,
        /// Its new status.
        status: SpotRequestState,
        /// When the status changed.
        at: SimTime,
    },
    /// Ground truth: a pool ran out of on-demand capacity.
    PoolShortageStarted {
        /// The pool.
        pool: PoolId,
        /// When the shortage began.
        at: SimTime,
    },
    /// Ground truth: a pool's on-demand shortage ended.
    PoolShortageEnded {
        /// The pool.
        pool: PoolId,
        /// When the shortage ended.
        at: SimTime,
    },
    /// Advance notice that a market's capacity will be reclaimed (a
    /// chaos-injected eviction, modelling the interruption notices real
    /// providers emit ahead of capacity reclaims). Running spot
    /// instances in the market receive revocation warnings with the
    /// same deadline, and the pool withholds spot capacity for the
    /// configured hold once the reclaim lands.
    CapacityEvictionNotice {
        /// The market losing capacity.
        market: MarketId,
        /// When the notice was issued.
        at: SimTime,
        /// When the capacity will be reclaimed.
        evict_at: SimTime,
    },
}

/// One capacity pool with its demand process and clearing bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct PoolEntry {
    pub id: PoolId,
    pub pool: CapacityPool,
    pub demand: PoolDemand,
    /// Shard-local indices of this pool's member markets.
    pub market_indices: Vec<usize>,
    /// Mean spot/od price ratio of member markets after the last tick.
    pub last_ratio: f64,
    /// End of the current reclaim (spot → od shift) window.
    pub reclaim_until: SimTime,
    /// Demand spilled toward this pool for the next tick, in units.
    pub spill_next: f64,
    /// Whether a ground-truth shortage interval is open.
    pub shortage_open: bool,
    /// End of the current parked (capacity-withholding) state.
    pub parked_until: SimTime,
}

/// One spot market with its demand process.
#[derive(Debug, Clone)]
pub(crate) struct MarketEntry {
    pub id: MarketId,
    pub state: MarketState,
    pub demand: MarketDemand,
    /// Shard-local index of the owning pool.
    pub pool_idx: usize,
    pub volatility: f64,
}

/// An externally launched on-demand instance.
#[derive(Debug, Clone)]
pub struct OdInstance {
    /// Instance id.
    pub id: InstanceId,
    /// The market it runs in.
    pub market: MarketId,
    /// Capacity units it occupies.
    pub units: u32,
    /// Launch time.
    pub launched_at: SimTime,
    /// Lifecycle state (Figure 3.1).
    pub state: Tracked<OdState>,
}

/// An externally submitted spot instance request.
#[derive(Debug, Clone)]
pub struct SpotRequest {
    /// Request id.
    pub id: SpotRequestId,
    /// The market it targets.
    pub market: MarketId,
    /// The maximum price the requester will pay.
    pub bid: Price,
    /// Capacity units per instance.
    pub units: u32,
    /// Lifecycle state (Figure 3.2).
    pub state: Tracked<SpotRequestState>,
    /// The launched instance, if fulfilled.
    pub instance: Option<InstanceId>,
    /// When the instance launched.
    pub launched_at: Option<SimTime>,
    /// The spot price at launch (the billing rate).
    pub launch_price: Option<Price>,
    /// When a marked instance will be reclaimed.
    pub terminate_at: Option<SimTime>,
}

/// Per-region API bookkeeping: token-bucket rate limiting and service
/// limits (Chapter 4).
#[derive(Debug, Clone)]
pub(crate) struct RegionApiState {
    pub tokens: f64,
    pub last_refill: SimTime,
    pub od_running: u32,
    pub spot_open: u32,
}

impl RegionApiState {
    fn new() -> Self {
        RegionApiState {
            tokens: 0.0,
            last_refill: SimTime::ZERO,
            od_running: 0,
            spot_open: 0,
        }
    }

    /// Empties the bucket and restarts refill accounting from `now` —
    /// a chaos throttling storm pins the bucket here on every call, so
    /// post-storm recovery starts from zero tokens.
    pub fn drain(&mut self, now: SimTime) {
        self.tokens = 0.0;
        self.last_refill = now;
    }

    /// Refills the bucket up to one minute's burst and consumes a token.
    pub fn try_consume(&mut self, now: SimTime, per_minute: u32) -> bool {
        let burst = per_minute as f64;
        let elapsed = now.saturating_since(self.last_refill).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * per_minute as f64 / 60.0).min(burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// High bit distinguishing spot instance ids (derived from their request
/// id inside a shard, where the global id counter is unreachable) from
/// sequentially allocated on-demand instance ids.
const SPOT_INSTANCE_BIT: u64 = 1 << 63;

/// First stream id of the per-region RNG streams (stream 0 is the root,
/// 1 was the pre-sharding global demand stream).
const REGION_STREAM_BASE: u64 = 2;

/// First stream id of the per-region *chaos* RNG streams (see
/// [`crate::chaos`]). Forked from the root after the demand streams, so
/// enabling chaos never perturbs a seed's demand trajectory, and each
/// region's chaos draws stay shard-local (the determinism contract).
const CHAOS_STREAM_BASE: u64 = 16;

/// A buffered [`TraceStore`] write, applied at merge time because the
/// store is shared across shards.
#[derive(Debug, Clone, Copy)]
enum TraceOp {
    Price(MarketId, SimTime, Price),
    ShortageStarted(PoolId, SimTime),
    ShortageEnded(PoolId, SimTime),
}

/// A buffered [`Ledger`] charge, applied at merge time because the
/// ledger is shared across shards.
#[derive(Debug, Clone, Copy)]
struct PendingCharge {
    at: SimTime,
    market: MarketId,
    kind: UsageKind,
    used: SimDuration,
    rate: Price,
}

/// Read-only state every shard borrows during one tick.
struct TickCtx<'a> {
    config: &'a SimConfig,
    level_grid: &'a LevelGrid,
    surge_dist: &'a [f64],
    trace: &'a TraceStore,
    now: SimTime,
    dt: SimDuration,
}

impl TickCtx<'_> {
    fn profile(&self) -> &DemandProfile {
        &self.config.demand
    }
}

/// One region's slice of the cloud: every piece of dynamic state the
/// tick loop touches for that region, plus the region's RNG stream and
/// output buffers. See the module docs for the ownership model.
pub(crate) struct RegionShard {
    /// Dense [`crate::ids::Region::index`] of this shard.
    pub region_idx: usize,
    pub pools: Vec<PoolEntry>,
    pub markets: Vec<MarketEntry>,
    pub pool_index: HashMap<PoolId, usize>,
    pub market_index: HashMap<MarketId, usize>,
    /// Pools of the same family in this region, per pool (local indices).
    pub sibling_pools: Vec<Vec<usize>>,
    pub region_demand: RegionDemand,
    pub api: RegionApiState,
    pub spot_requests: HashMap<SpotRequestId, SpotRequest>,
    /// Non-terminal spot requests, re-evaluated every tick.
    pub active_spot: BTreeSet<SpotRequestId>,
    /// This region's RNG stream; every draw on the tick path happens
    /// here, in shard-local phase order.
    pub rng: SimRng,
    /// This region's fault-injection runtime, with its own RNG stream.
    pub chaos: ChaosState,
    /// Events held back by chaos-injected delivery delay, as
    /// `(release_at, event)` in emission order.
    delayed_events: Vec<(SimTime, CloudEvent)>,
    /// Chaos evictions announced but not yet landed, as
    /// `(evict_at, local pool index)`.
    pending_evictions: Vec<(SimTime, usize)>,
    /// Events emitted this tick, merged into [`Cloud::events`] in region
    /// order after the parallel phase.
    events: Vec<CloudEvent>,
    /// Buffered trace writes (the `TraceStore` is shared).
    trace_ops: Vec<TraceOp>,
    /// Buffered ledger charges (the `Ledger` is shared).
    charges: Vec<PendingCharge>,
    /// Reusable bid-level mass buffer for market clearing.
    scratch: Vec<f64>,
    /// Reusable request-id buffer for the per-tick spot-request sweep.
    request_scratch: Vec<SpotRequestId>,
}

impl RegionShard {
    fn new(region_idx: usize, rng: SimRng, chaos: ChaosState, n_levels: usize) -> Self {
        RegionShard {
            region_idx,
            pools: Vec::new(),
            markets: Vec::new(),
            pool_index: HashMap::new(),
            market_index: HashMap::new(),
            sibling_pools: Vec::new(),
            region_demand: RegionDemand::new(),
            api: RegionApiState::new(),
            spot_requests: HashMap::new(),
            active_spot: BTreeSet::new(),
            rng,
            chaos,
            delayed_events: Vec::new(),
            pending_evictions: Vec::new(),
            events: Vec::new(),
            trace_ops: Vec::new(),
            charges: Vec::new(),
            scratch: vec![0.0; n_levels],
            request_scratch: Vec::new(),
        }
    }

    /// One full demand step for this region. Touches only shard-owned
    /// state plus the read-only [`TickCtx`]; all shared-store writes go
    /// to the shard's output buffers.
    fn tick(&mut self, ctx: &TickCtx<'_>) {
        if self.chaos.enabled() {
            self.chaos_pre_tick(ctx);
        }
        self.publish_due_prices(ctx);
        self.region_demand.tick(ctx.profile(), &mut self.rng);
        self.update_pools(ctx);
        self.clear_markets(ctx);
        self.spawn_surges(ctx);
        self.process_spot_requests(ctx);
        self.gc_terminal_requests();
        if self.chaos.enabled() {
            self.chaos_post_tick(ctx);
        }
    }

    /// Chaos phase A, before the demand step: deliver delayed events
    /// that have come due, land announced evictions (the pool withholds
    /// spot capacity for the configured hold), and draw new evictions —
    /// each announced with a [`CloudEvent::CapacityEvictionNotice`] and
    /// revocation warnings for the market's running spot instances,
    /// both carrying the eviction deadline. All draws come from the
    /// shard's chaos stream, in shard-local phase order.
    fn chaos_pre_tick(&mut self, ctx: &TickCtx<'_>) {
        let now = ctx.now;

        // Delayed deliveries, preserving emission order. The shard's
        // event buffer was drained at the last merge, so released
        // events precede everything this tick emits.
        let mut i = 0;
        while i < self.delayed_events.len() {
            if self.delayed_events[i].0 <= now {
                let (_, ev) = self.delayed_events.remove(i);
                self.events.push(ev);
            } else {
                i += 1;
            }
        }

        let Some(profile) = self.chaos.evictions else {
            return;
        };

        // Announced evictions land: park the pool so new spot requests
        // see capacity-not-available for the hold.
        let hold = profile.hold;
        let mut i = 0;
        while i < self.pending_evictions.len() {
            if self.pending_evictions[i].0 <= now {
                let (_, pi) = self.pending_evictions.remove(i);
                let parked = &mut self.pools[pi].parked_until;
                *parked = (*parked).max(now + hold);
            } else {
                i += 1;
            }
        }

        // Draw new evictions per market. Fixed market order keeps the
        // draw sequence identical at any thread count.
        let dt_days = ctx.dt.as_secs() as f64 / 86_400.0;
        let rate = profile.rate_per_market_day;
        for mi in 0..self.markets.len() {
            if !self.chaos.rng.chance(rate * dt_days) {
                continue;
            }
            let market = self.markets[mi].id;
            let evict_at = now + profile.notice_lead;
            self.events.push(CloudEvent::CapacityEvictionNotice {
                market,
                at: now,
                evict_at,
            });
            self.pending_evictions
                .push((evict_at, self.markets[mi].pool_idx));
            // Running instances in the market get their warning now,
            // with the eviction deadline instead of the standard price
            // warning.
            let evicted: Vec<SpotRequestId> = self
                .active_spot
                .iter()
                .copied()
                .filter(|id| {
                    self.spot_requests.get(id).is_some_and(|r| {
                        r.market == market && r.state.current() == SpotRequestState::Fulfilled
                    })
                })
                .collect();
            for id in evicted {
                let req = self.spot_requests.get_mut(&id).expect("just matched");
                req.state
                    .transition(SpotRequestState::MarkedForTermination, now)
                    .expect("fulfilled -> marked is legal");
                req.terminate_at = Some(evict_at);
                self.events.push(CloudEvent::SpotRevocationWarning {
                    request: id,
                    market,
                    at: now,
                    terminate_at: evict_at,
                });
            }
        }
    }

    /// Chaos phase B, after the demand step: hold back a slice of this
    /// tick's emitted events for delayed delivery. Only *delivery*
    /// lags — event timestamps and the price trace stay truthful, the
    /// way a slow notification pipeline lags the published history.
    fn chaos_post_tick(&mut self, ctx: &TickCtx<'_>) {
        let Some(delay) = self.chaos.delay else {
            return;
        };
        let mut i = 0;
        while i < self.events.len() {
            if self.chaos.rng.chance(delay.probability) {
                let ev = self.events.remove(i);
                let ticks = self
                    .chaos
                    .rng
                    .uniform_usize(1, delay.max_delay_ticks as usize + 1)
                    as u64;
                let release_at = ctx.now + SimDuration::from_secs(ticks * ctx.dt.as_secs());
                self.delayed_events.push((release_at, ev));
            } else {
                i += 1;
            }
        }
    }

    fn publish_due_prices(&mut self, ctx: &TickCtx<'_>) {
        let now = ctx.now;
        for m in &mut self.markets {
            let previous = m.state.published_price();
            if let Some(price) = m.state.publish_due(now) {
                let at = now; // published within the elapsed tick
                if ctx.trace.is_watched(m.id) {
                    self.trace_ops.push(TraceOp::Price(m.id, at, price));
                }
                self.events.push(CloudEvent::PriceChange {
                    market: m.id,
                    previous,
                    price,
                    at,
                });
            }
        }
    }

    fn update_pools(&mut self, ctx: &TickCtx<'_>) {
        let profile = ctx.profile();
        let now = ctx.now;
        let warning = ctx.config.revocation_warning;
        let busy = self.region_demand.busy();
        let aggressiveness = profile.park_region_aggressiveness[self.region_idx];
        let dt_days = ctx.dt.as_secs() as f64 / 86_400.0;
        for i in 0..self.pools.len() {
            // Apply spill-in scheduled by siblings last tick.
            let spill = self.pools[i].spill_next;
            self.pools[i].spill_next = 0.0;
            self.pools[i].demand.spill_in += spill;

            let targets = self.pools[i].demand.tick(now, profile, busy, &mut self.rng);

            // Parking: a persistent capacity-withholding state the
            // operator enters during low-price regimes (§5.3) and leaves
            // after a lognormal-distributed episode.
            let ratio = self.pools[i].last_ratio;
            if now >= self.pools[i].parked_until
                && ratio < profile.park_ratio_hi
                && aggressiveness > 0.0
            {
                let rate = profile.park_enter_rate_per_day
                    * aggressiveness
                    * (1.0 - ratio / profile.park_ratio_hi);
                if self.rng.chance(rate * dt_days) {
                    let dur = self
                        .rng
                        .lognormal_median(
                            profile.park_duration_median_secs,
                            profile.park_duration_sigma,
                        )
                        .max(300.0) as u64;
                    self.pools[i].parked_until = now + SimDuration::from_secs(dur);
                }
            }
            let parked_frac = if now < self.pools[i].parked_until {
                1.0
            } else {
                0.0
            };

            let displaced = self.pools[i].pool.apply_demand(
                targets.reserved_units,
                targets.od_units,
                parked_frac,
            );

            if displaced > 0 {
                self.pools[i].pool.set_reclaiming(true);
                self.pools[i].reclaim_until = now + warning;
            } else if now >= self.pools[i].reclaim_until {
                self.pools[i].pool.set_reclaiming(false);
            }

            // Ground-truth shortage intervals + spill-over to siblings.
            let short = self.pools[i].pool.od_shortage();
            if short && !self.pools[i].shortage_open {
                self.pools[i].shortage_open = true;
                self.trace_ops
                    .push(TraceOp::ShortageStarted(self.pools[i].id, now));
                self.events.push(CloudEvent::PoolShortageStarted {
                    pool: self.pools[i].id,
                    at: now,
                });
            } else if !short && self.pools[i].shortage_open {
                self.pools[i].shortage_open = false;
                self.trace_ops
                    .push(TraceOp::ShortageEnded(self.pools[i].id, now));
                self.events.push(CloudEvent::PoolShortageEnded {
                    pool: self.pools[i].id,
                    at: now,
                });
            }
            if short {
                let unmet = self.pools[i].pool.od_unmet() as f64;
                let siblings = &self.sibling_pools[i];
                if !siblings.is_empty() {
                    let share = profile.spill_fraction * unmet / siblings.len() as f64;
                    for &j in siblings {
                        self.pools[j].spill_next += share;
                    }
                }
            }
        }
    }

    fn clear_markets(&mut self, ctx: &TickCtx<'_>) {
        let profile = ctx.profile();
        let now = ctx.now;
        let (lag_lo, lag_hi) = ctx.config.price_lag_secs;
        let multiples = &profile.level_multiples;

        for pi in 0..self.pools.len() {
            let supply_units = self.pools[pi].pool.spot_supply() as f64;
            let mut served_units_total = 0.0_f64;
            let mut ratio_sum = 0.0_f64;
            let n_markets = self.pools[pi].market_indices.len();
            for k in 0..n_markets {
                let mi = self.pools[pi].market_indices[k];
                let m = &mut self.markets[mi];
                m.demand.tick(now, profile, &mut self.rng);
                // Fused fill-sum-walk over the fixed-width level
                // arrays: masses are written, totalled, and cleared in
                // one L1-resident pass (bit-identical to the separate
                // `level_masses_into` + `clear` it replaced).
                let total = m.demand.level_masses_and_total_into(
                    ctx.level_grid,
                    m.state.base_mass,
                    ctx.surge_dist,
                    &mut self.scratch,
                );
                let supply_m = supply_units * m.state.weight / m.state.units as f64;
                let clearing = clear_with_total(multiples, &self.scratch, total, supply_m);
                // Draw a propagation lag only when the price actually
                // moves; stable markets skip the randomness entirely.
                let price_moves =
                    m.state.od_price.scale(clearing.price_multiple) != m.state.true_price();
                let lag = if price_moves && lag_hi > lag_lo {
                    self.rng.uniform_range(lag_lo as f64, lag_hi as f64) as u64
                } else {
                    lag_lo
                };
                m.state
                    .apply_clearing(clearing, now, now + SimDuration::from_secs(lag));
                served_units_total += clearing.served * m.state.units as f64;
                ratio_sum += m.state.price_ratio();
            }
            // The operator keeps a sliver of spot supply free of the
            // background market so well-priced new requests can fulfil.
            let cap_units = (supply_units * (1.0 - profile.spot_headroom_frac)).floor();
            self.pools[pi]
                .pool
                .set_spot_market(served_units_total.min(cap_units).round().max(0.0) as u64);
            if n_markets > 0 {
                self.pools[pi].last_ratio = ratio_sum / n_markets as f64;
            }
        }
    }

    fn spawn_surges(&mut self, ctx: &TickCtx<'_>) {
        let profile = ctx.profile();
        let now = ctx.now;
        let dt_days = ctx.dt.as_secs() as f64 / 86_400.0;

        // Zone-local pool surges: rare, heavy-tailed, uncorrelated.
        for i in 0..self.pools.len() {
            let pressure = profile.pool_pressure(self.pools[i].id);
            let vol = profile.family_volatility(self.pools[i].id.family);
            let rate = profile.pool_surge_rate_per_day
                * vol.sqrt()
                * pressure.powf(profile.surge_rate_pressure_exp);
            if self.rng.chance(rate * dt_days) {
                let magnitude = (self
                    .rng
                    .pareto(profile.surge_magnitude_scale, profile.surge_magnitude_alpha)
                    * pressure.powf(profile.surge_magnitude_pressure_exp))
                .min(profile.surge_magnitude_cap);
                // Specialized families suffer longer shortages (the
                // heavy Figure 5.9 tail and the chronic d2/g2 outages of
                // the case studies).
                let duration = (self.rng.lognormal_median(
                    profile.surge_duration_median_secs,
                    profile.surge_duration_sigma,
                ) * vol)
                    .max(60.0) as u64;
                self.pools[i].demand.add_surge(Surge {
                    magnitude,
                    ends_at: now + SimDuration::from_secs(duration),
                });
            }
        }

        // Region-wide family surges: moderate, correlated across zones.
        // The shard *is* the region, so every local pool is a candidate.
        if !self.pools.is_empty() {
            let pressure = profile.region_pressure[self.region_idx];
            let rate =
                profile.region_surge_rate_per_day * pressure.powf(profile.surge_rate_pressure_exp);
            if self.rng.chance(rate * dt_days) {
                let anchor = self.rng.uniform_usize(0, self.pools.len());
                let family = self.pools[anchor].id.family;
                let base_mag = (self
                    .rng
                    .pareto(profile.surge_magnitude_scale, profile.surge_magnitude_alpha)
                    * profile.region_surge_attenuation
                    * pressure.powf(profile.surge_magnitude_pressure_exp))
                .min(profile.surge_magnitude_cap);
                let duration = self
                    .rng
                    .lognormal_median(
                        profile.surge_duration_median_secs,
                        profile.surge_duration_sigma,
                    )
                    .max(60.0) as u64;
                for i in 0..self.pools.len() {
                    if self.pools[i].id.family != family {
                        continue;
                    }
                    let jitter = self.rng.uniform_range(0.6, 1.4);
                    let dj = (duration as f64 * self.rng.uniform_range(0.8, 1.2)) as u64;
                    self.pools[i].demand.add_surge(Surge {
                        magnitude: base_mag * jitter,
                        ends_at: now + SimDuration::from_secs(dj),
                    });
                }
            }
        }

        // Spot-side surges per market: price spikes without a shortage.
        for mi in 0..self.markets.len() {
            let vol = self.markets[mi].volatility;
            let rate = profile.spot_surge_rate_per_day * vol.sqrt();
            if self.rng.chance(rate * dt_days) {
                let magnitude = (self
                    .rng
                    .pareto(profile.spot_surge_scale, profile.spot_surge_alpha)
                    * vol.sqrt())
                .min(profile.spot_surge_cap);
                let duration = self
                    .rng
                    .lognormal_median(
                        profile.surge_duration_median_secs,
                        profile.surge_duration_sigma,
                    )
                    .max(60.0) as u64;
                self.markets[mi].demand.add_surge(Surge {
                    magnitude,
                    ends_at: now + SimDuration::from_secs(duration),
                });
            }
        }
    }

    /// Revocations, reclaim terminations, and held-request re-evaluation.
    fn process_spot_requests(&mut self, ctx: &TickCtx<'_>) {
        let now = ctx.now;
        let warning = ctx.config.revocation_warning;
        // Reuse the sweep buffer instead of collecting a fresh Vec, and
        // read everything a dispatch decision needs in ONE map lookup.
        let mut ids = std::mem::take(&mut self.request_scratch);
        ids.clear();
        ids.extend(self.active_spot.iter().copied());
        for &id in &ids {
            let Some(req) = self.spot_requests.get(&id) else {
                continue;
            };
            let market = req.market;
            let bid = req.bid;
            let terminate_due = req.terminate_at.is_some_and(|t| t <= now);
            let state = req.state.current();
            match state {
                SpotRequestState::Fulfilled => {
                    let mi = self.market_index[&market];
                    let price = self.markets[mi].state.true_price();
                    if price > bid {
                        let terminate_at = now + warning;
                        let req = self.spot_requests.get_mut(&id).expect("present");
                        req.state
                            .transition(SpotRequestState::MarkedForTermination, now)
                            .expect("fulfilled -> marked is legal");
                        req.terminate_at = Some(terminate_at);
                        self.events.push(CloudEvent::SpotRevocationWarning {
                            request: id,
                            market,
                            at: now,
                            terminate_at,
                        });
                    }
                }
                SpotRequestState::MarkedForTermination if terminate_due => {
                    self.finish_revocation(id, now);
                }
                s if s.is_held() => {
                    self.reevaluate_held(id, now, ctx.profile());
                }
                _ => {}
            }
        }
        self.request_scratch = ids;
    }

    /// Completes a price revocation: frees capacity, bills (partial hour
    /// free) via the charge buffer, and emits the termination event.
    fn finish_revocation(&mut self, id: SpotRequestId, now: SimTime) {
        let req = self.spot_requests.get_mut(&id).expect("present");
        req.state
            .transition(SpotRequestState::InstanceTerminatedByPrice, now)
            .expect("marked -> terminated-by-price is legal");
        let market = req.market;
        let units = u64::from(req.units);
        let launched = req.launched_at.expect("fulfilled request has launch time");
        let rate = req
            .launch_price
            .expect("fulfilled request has launch price");
        let pi = self.pool_index[&market.pool()];
        self.pools[pi].pool.release_spot_external(units);
        self.charges.push(PendingCharge {
            at: now,
            market,
            kind: UsageKind::SpotRevoked,
            used: now.saturating_since(launched),
            rate,
        });
        self.api.spot_open = self.api.spot_open.saturating_sub(1);
        self.events.push(CloudEvent::SpotTerminatedByPrice {
            request: id,
            market,
            at: now,
        });
    }

    /// Re-evaluates a held spot request against current conditions.
    fn reevaluate_held(&mut self, id: SpotRequestId, now: SimTime, profile: &DemandProfile) {
        let (market, bid, units, old_state) = {
            let r = &self.spot_requests[&id];
            (r.market, r.bid, r.units, r.state.current())
        };
        let outcome = self.evaluate_spot(profile, market, bid, units);
        let new_state = match outcome {
            SpotEval::Fulfill => SpotRequestState::Fulfilled,
            SpotEval::PriceTooLow => SpotRequestState::PriceTooLow,
            SpotEval::Oversubscribed => SpotRequestState::CapacityOversubscribed,
            SpotEval::NotAvailable => SpotRequestState::CapacityNotAvailable,
        };
        if new_state == old_state {
            return;
        }
        if new_state == SpotRequestState::Fulfilled {
            let price = self.markets[self.market_index[&market]].state.true_price();
            self.fulfil_spot(id, now, price);
        } else {
            let req = self.spot_requests.get_mut(&id).expect("present");
            req.state
                .transition(new_state, now)
                .expect("held states rotate freely");
        }
        self.events.push(CloudEvent::SpotRequestUpdate {
            request: id,
            market,
            status: new_state,
            at: now,
        });
    }

    /// Executes fulfilment: occupies the pool (displacing background spot
    /// capacity if needed) and launches the instance. The instance id is
    /// derived from the request id (each request launches at most one
    /// instance), so fulfilment inside the parallel phase needs no shared
    /// id counter.
    pub(crate) fn fulfil_spot(&mut self, id: SpotRequestId, now: SimTime, price: Price) {
        let (market, units) = {
            let r = &self.spot_requests[&id];
            (r.market, u64::from(r.units))
        };
        let pi = self.pool_index[&market.pool()];
        let pool = &mut self.pools[pi].pool;
        if !pool.admit_spot_external(units) {
            // Displace background spot capacity to make room.
            let cur = pool.spot_market_units();
            pool.set_spot_market(cur.saturating_sub(units));
            let admitted = pool.admit_spot_external(units);
            debug_assert!(admitted, "displacement must free enough room");
        }
        let instance = InstanceId(id.0 | SPOT_INSTANCE_BIT);
        let req = self.spot_requests.get_mut(&id).expect("present");
        req.state
            .transition(SpotRequestState::Fulfilled, now)
            .expect("held/pending -> fulfilled is legal");
        req.instance = Some(instance);
        req.launched_at = Some(now);
        req.launch_price = Some(price);
    }

    /// Evaluates a spot request against the current market state without
    /// mutating anything.
    pub(crate) fn evaluate_spot(
        &self,
        profile: &DemandProfile,
        market: MarketId,
        bid: Price,
        units: u32,
    ) -> SpotEval {
        let mi = self.market_index[&market];
        let m = &self.markets[mi];
        let floor = m.state.floor_price(profile.level_multiples[0]);
        let price = m.state.true_price();
        if bid < price.max(floor) {
            return SpotEval::PriceTooLow;
        }
        let pool = &self.pools[m.pool_idx].pool;
        let units = u64::from(units);
        // A parked pool withholds capacity from every new spot request
        // regardless of bid — the literal capacity-not-available of §5.3.
        if pool.parking_active() {
            return SpotEval::NotAvailable;
        }
        let room = pool.spot_fulfilment_room() >= units;
        if bid == price {
            if room {
                SpotEval::Fulfill
            } else {
                SpotEval::Oversubscribed
            }
        } else {
            // bid > price: the request can displace the marginal winner
            // unless the market cleared at the floor (no marginal loser).
            let displaceable = pool.spot_market_units() >= units && !m.state.last_clearing.at_floor;
            if room || displaceable {
                SpotEval::Fulfill
            } else {
                SpotEval::NotAvailable
            }
        }
    }

    /// Drops terminal spot requests (their final state was already
    /// returned to the caller and emitted as events).
    fn gc_terminal_requests(&mut self) {
        let mut terminal = std::mem::take(&mut self.request_scratch);
        terminal.clear();
        terminal.extend(self.active_spot.iter().copied().filter(|id| {
            self.spot_requests
                .get(id)
                .is_none_or(|r| r.state.current().is_terminal())
        }));
        for &id in &terminal {
            self.active_spot.remove(&id);
            self.spot_requests.remove(&id);
        }
        self.request_scratch = terminal;
    }
}

/// The simulated IaaS cloud.
pub struct Cloud {
    pub(crate) catalog: Catalog,
    pub(crate) config: SimConfig,
    pub(crate) now: SimTime,
    /// One shard per catalog region, ascending by [`crate::ids::Region::index`] —
    /// the fixed merge order of the determinism contract.
    pub(crate) shards: Vec<RegionShard>,
    /// Shard index per region (`None` for regions the catalog omits).
    pub(crate) shard_of_region: [Option<usize>; 9],
    /// Market id → (shard index, shard-local market index).
    pub(crate) market_loc: HashMap<MarketId, (usize, usize)>,
    /// Pool id → (shard index, shard-local pool index).
    pub(crate) pool_loc: HashMap<PoolId, (usize, usize)>,
    pub(crate) od_instances: HashMap<InstanceId, OdInstance>,
    pub(crate) ledger: Ledger,
    pub(crate) trace: TraceStore,
    pub(crate) next_id: u64,
    /// Events merged from all shards, in region order, since the last
    /// drain.
    pub(crate) events: Vec<CloudEvent>,
    surge_dist: Vec<f64>,
    /// Precomputed normalized level profile and tilt basis.
    level_grid: LevelGrid,
    /// Resolved worker count (config `threads`, with `0` resolved at
    /// construction to the machine's available parallelism — or to `1`
    /// when the catalog is too small for fan-out to pay).
    threads: usize,
    /// Worker-group index per shard: a longest-processing-time balance
    /// over shard market counts, fixed at construction. Scheduling only
    /// — results never depend on the grouping.
    group_of_shard: Vec<usize>,
    /// The shared persistent worker pool the parallel tick fans out
    /// on (the process-wide [`WorkerPool::global`] instance, grown to
    /// the resolved worker count at construction).
    pool: Arc<WorkerPool>,
    /// Test/bench escape hatch: `true` restores the pre-pool per-tick
    /// `std::thread::scope` fan-out. See [`Cloud::force_scoped_fanout`].
    scoped_fanout: bool,
}

impl std::fmt::Debug for Cloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cloud")
            .field("now", &self.now)
            .field("shards", &self.shards.len())
            .field("pools", &self.pool_count())
            .field("markets", &self.market_count())
            .field("od_instances", &self.od_instances.len())
            .field("spot_requests", &self.spot_request_count())
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Cloud {
    /// Creates a cloud over `catalog` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(catalog: Catalog, config: SimConfig) -> Self {
        config.validate().expect("invalid simulation config");
        let profile = &config.demand;
        let mut rng = SimRng::seed_from(config.seed);
        // One stream per region, split in canonical region order so a
        // region's stream depends only on the seed. Chaos streams are
        // forked after, so enabling fault injection leaves the demand
        // streams bit-identical.
        let region_streams = rng.fork_streams(REGION_STREAM_BASE, 9);
        let chaos_streams = rng.fork_streams(CHAOS_STREAM_BASE, 9);
        let n_levels = profile.level_multiples.len();

        let mut region_has_pool = [false; 9];
        for &pid in catalog.pools() {
            region_has_pool[pid.az.region().index()] = true;
        }
        let mut shards: Vec<RegionShard> = Vec::new();
        let mut shard_of_region = [None; 9];
        for (r, (stream, chaos_stream)) in region_streams.into_iter().zip(chaos_streams).enumerate()
        {
            if region_has_pool[r] {
                shard_of_region[r] = Some(shards.len());
                let chaos = ChaosState::for_region(&config.chaos, r, chaos_stream);
                shards.push(RegionShard::new(r, stream, chaos, n_levels));
            }
        }

        let mut pool_loc: HashMap<PoolId, (usize, usize)> = HashMap::new();
        for &pid in catalog.pools() {
            let si = shard_of_region[pid.az.region().index()].expect("pool region is active");
            let shard = &mut shards[si];
            let member_units = catalog.pool_member_units(pid) as f64;
            let physical =
                (profile.pool_scale * member_units * profile.family_pool_scale(pid.family))
                    .round()
                    .max(8.0) as u64;
            let granted = (profile.reserved_fraction * physical as f64).round() as u64;
            let pressure = profile.pool_pressure(pid);
            let demand = PoolDemand::new(
                physical - granted,
                granted,
                profile.family_volatility(pid.family),
                pressure,
                profile.region_phase(pid.az.region()),
                profile,
            );
            let li = shard.pools.len();
            pool_loc.insert(pid, (si, li));
            shard.pool_index.insert(pid, li);
            shard.pools.push(PoolEntry {
                id: pid,
                pool: CapacityPool::new(physical, granted),
                demand,
                market_indices: Vec::new(),
                last_ratio: profile.level_multiples[0],
                reclaim_until: SimTime::ZERO,
                spill_next: 0.0,
                shortage_open: false,
                parked_until: SimTime::ZERO,
            });
        }

        // Market weights: normalized within each pool. First pass
        // accumulates raw weights per shard (in shard market order).
        let mut raw_weight: Vec<Vec<f64>> = vec![Vec::new(); shards.len()];
        let mut pool_weight_sum: Vec<Vec<f64>> =
            shards.iter().map(|s| vec![0.0; s.pools.len()]).collect();
        for &mid in catalog.markets() {
            let (si, pi) = pool_loc[&mid.pool()];
            let w = profile.platform_weight(mid.platform)
                * profile.size_weight(mid.instance_type.size());
            raw_weight[si].push(w);
            pool_weight_sum[si][pi] += w;
        }

        let mut market_loc: HashMap<MarketId, (usize, usize)> = HashMap::new();
        for &mid in catalog.markets() {
            let (si, pi) = pool_loc[&mid.pool()];
            let shard = &mut shards[si];
            let li = shard.markets.len();
            let weight = raw_weight[si][li] / pool_weight_sum[si][pi];
            let pool = &shard.pools[pi];
            let physical = pool.pool.physical() as f64;
            let granted = pool.pool.reserved_granted() as f64;
            let od_cap = physical - granted;
            let pressure = profile.pool_pressure(mid.pool());
            let expected_supply = (physical
                - profile.reserved_util_mean * granted
                - (profile.od_base_util * pressure).min(1.0) * od_cap)
                .max(0.05 * physical);
            let units = mid.instance_type.units();
            let base_mass =
                (expected_supply * weight / units as f64) * profile.spot_demand_intensity;
            let state = MarketState::new(
                catalog.od_price(mid),
                weight,
                base_mass,
                units,
                profile.level_multiples[0],
            );
            market_loc.insert(mid, (si, li));
            shard.market_index.insert(mid, li);
            shard.pools[pi].market_indices.push(li);
            shard.markets.push(MarketEntry {
                id: mid,
                state,
                demand: MarketDemand::new(),
                pool_idx: pi,
                volatility: profile.family_volatility(mid.instance_type.family()),
            });
        }

        // Sibling pools: same family, different zone — same region by
        // construction, so siblings are always shard-local.
        for shard in &mut shards {
            let mut by_family: HashMap<Family, Vec<usize>> = HashMap::new();
            for (i, p) in shard.pools.iter().enumerate() {
                by_family.entry(p.id.family).or_default().push(i);
            }
            shard.sibling_pools = shard
                .pools
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    by_family[&p.id.family]
                        .iter()
                        .copied()
                        .filter(|&j| j != i)
                        .collect()
                })
                .collect();
        }

        let surge_dist = surge_weights(
            &profile.level_multiples,
            0.85,
            profile.surge_bid_decay,
            profile.surge_bid_cap_share,
        );
        let level_grid = LevelGrid::new(profile);
        let trace = TraceStore::new(config.record_all_prices);
        let market_total: usize = shards.iter().map(|s| s.markets.len()).sum();
        let threads = match config.threads {
            // Auto: parallelism pays only when each worker gets enough
            // markets to outweigh the per-tick spawn cost, so small
            // catalogs (the testbed, unit-test fixtures) stay inline.
            // An explicit `threads` setting is always honoured.
            0 if market_total < PARALLEL_AUTO_MIN_MARKETS => 1,
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };

        // The shared persistent pool runs the parallel fan-out; make
        // sure it has at least as many workers as the tick will ask
        // for (a no-op when another component already grew it).
        let pool = WorkerPool::global();
        let workers = threads.min(shards.len()).max(1);
        if workers > 1 {
            pool.reserve(workers);
        }

        // Longest-processing-time assignment of shards to workers: the
        // heaviest regions (us-east-1 dominates real catalogs) land on
        // the least-loaded worker, so the parallel phase's critical path
        // is balanced rather than whatever a contiguous split yields.
        let mut group_of_shard = vec![0usize; shards.len()];
        if workers > 1 {
            let mut order: Vec<usize> = (0..shards.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(shards[i].markets.len()));
            let mut load = vec![0usize; workers];
            for i in order {
                let g = (0..workers).min_by_key(|&g| load[g]).expect("workers > 0");
                group_of_shard[i] = g;
                load[g] += shards[i].markets.len().max(1);
            }
        }

        Cloud {
            catalog,
            config,
            now: SimTime::ZERO,
            shards,
            shard_of_region,
            market_loc,
            pool_loc,
            od_instances: HashMap::new(),
            ledger: Ledger::new(),
            trace,
            next_id: 1,
            events: Vec::new(),
            surge_dist,
            level_grid,
            threads,
            group_of_shard,
            pool,
            scoped_fanout: false,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The catalog this cloud serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The resolved tick worker count (`config.threads`, with `0`
    /// resolved to the machine's available parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The account ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The trace store (price histories, ground-truth shortages).
    pub fn trace(&self) -> &TraceStore {
        &self.trace
    }

    /// Starts recording the full price history of a market.
    pub fn watch_market(&mut self, market: MarketId) {
        self.trace.watch(market);
    }

    /// Drains the events accumulated since the last call.
    ///
    /// Allocates a fresh `Vec` per call; tick-loop drivers should prefer
    /// [`Cloud::drain_events_into`], which recycles a caller-owned
    /// buffer.
    pub fn take_events(&mut self) -> Vec<CloudEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains the accumulated events into `out` (cleared first) by
    /// swapping buffers: `out`'s old allocation becomes the cloud's next
    /// accumulation buffer, so a steady-state drive loop ping-pongs two
    /// buffers and never reallocates, even under event churn.
    pub fn drain_events_into(&mut self, out: &mut Vec<CloudEvent>) {
        out.clear();
        std::mem::swap(out, &mut self.events);
    }

    /// Runs `ticks` demand steps to move the system off its artificial
    /// initial state before an experiment begins.
    pub fn warmup(&mut self, ticks: u32) {
        for _ in 0..ticks {
            self.tick();
        }
        self.events.clear();
    }

    pub(crate) fn fresh_instance_id(&mut self) -> InstanceId {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        id
    }

    pub(crate) fn fresh_request_id(&mut self) -> SpotRequestId {
        let id = SpotRequestId(self.next_id);
        self.next_id += 1;
        id
    }

    /// The shard holding `id`, if the request is still tracked. Shards
    /// are per-region, so this scans at most nine hash maps — fine for
    /// the (rate-limited) API paths that look requests up by id.
    pub(crate) fn find_spot_request(&self, id: SpotRequestId) -> Option<(usize, MarketId)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(si, s)| s.spot_requests.get(&id).map(|r| (si, r.market)))
    }

    /// All pool entries across shards, in region order.
    #[cfg(test)]
    pub(crate) fn iter_pool_entries(&self) -> impl Iterator<Item = &PoolEntry> {
        self.shards.iter().flat_map(|s| s.pools.iter())
    }

    // ---------------------------------------------------------------
    // Oracle accessors (simulation-side ground truth; not part of the
    // rate-limited API).
    // ---------------------------------------------------------------

    /// The true (instantaneous) clearing price of a market.
    pub fn oracle_true_price(&self, market: MarketId) -> Option<Price> {
        self.market_loc
            .get(&market)
            .map(|&(si, mi)| self.shards[si].markets[mi].state.true_price())
    }

    /// The currently published price of a market (no API token consumed).
    pub fn oracle_published_price(&self, market: MarketId) -> Option<Price> {
        self.market_loc
            .get(&market)
            .map(|&(si, mi)| self.shards[si].markets[mi].state.published_price())
    }

    /// Whether an on-demand request for this market would be admitted
    /// right now (ground truth, no probe).
    pub fn oracle_od_available(&self, market: MarketId) -> Option<bool> {
        let &(si, pi) = self.pool_loc.get(&market.pool())?;
        let units = u64::from(market.instance_type.units());
        Some(
            self.shards[si].pools[pi]
                .pool
                .check_od_admission(units)
                .is_ok(),
        )
    }

    /// Ground-truth snapshot of a pool.
    pub fn oracle_pool(&self, pool: PoolId) -> Option<crate::pool::PoolSnapshot> {
        self.pool_loc
            .get(&pool)
            .map(|&(si, pi)| self.shards[si].pools[pi].pool.snapshot())
    }

    /// Number of markets simulated.
    pub fn market_count(&self) -> usize {
        self.shards.iter().map(|s| s.markets.len()).sum()
    }

    /// Number of capacity pools simulated.
    pub fn pool_count(&self) -> usize {
        self.shards.iter().map(|s| s.pools.len()).sum()
    }

    /// Number of open (non-garbage-collected) spot requests.
    pub fn spot_request_count(&self) -> usize {
        self.shards.iter().map(|s| s.spot_requests.len()).sum()
    }

    // ---------------------------------------------------------------
    // The tick loop.
    // ---------------------------------------------------------------

    /// Advances the simulation one demand tick: publishes pending price
    /// changes, updates demand, clears every market, spawns surges, and
    /// processes spot revocations and held-request re-evaluation — per
    /// region shard, fanned out across up to `threads` workers, with
    /// shard outputs merged in fixed region order (see the module docs
    /// for the determinism contract).
    pub fn tick(&mut self) {
        let dt = self.config.tick;
        self.now += dt;
        let ctx = TickCtx {
            config: &self.config,
            level_grid: &self.level_grid,
            surge_dist: &self.surge_dist,
            trace: &self.trace,
            now: self.now,
            dt,
        };
        let workers = self.threads.min(self.shards.len()).max(1);
        if workers <= 1 {
            for shard in &mut self.shards {
                shard.tick(&ctx);
            }
        } else {
            // Distribute shards by the precomputed load-balanced
            // grouping, one pool task per non-empty group. The pool's
            // scope is the same join barrier `thread::scope` gave us —
            // every shard has ticked before the merge below runs —
            // without the per-tick thread spawn/join cycle.
            let mut groups: Vec<Vec<&mut RegionShard>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, shard) in self.shards.iter_mut().enumerate() {
                groups[self.group_of_shard[i]].push(shard);
            }
            let ctx = &ctx;
            if self.scoped_fanout {
                std::thread::scope(|s| {
                    for group in groups {
                        if group.is_empty() {
                            continue;
                        }
                        s.spawn(move || {
                            for shard in group {
                                shard.tick(ctx);
                            }
                        });
                    }
                });
            } else {
                self.pool.scope(|s| {
                    for group in groups {
                        if group.is_empty() {
                            continue;
                        }
                        s.spawn(move || {
                            for shard in group {
                                shard.tick(ctx);
                            }
                        });
                    }
                });
            }
        }
        self.merge_shard_outputs();
    }

    /// Test/bench escape hatch: `true` fans the parallel tick out via
    /// per-tick `std::thread::scope` spawns (the pre-pool dispatch)
    /// instead of the shared worker pool. Results are bit-identical
    /// either way — `tests/determinism.rs` proves it — only dispatch
    /// cost differs. Not part of the simulation API.
    #[doc(hidden)]
    pub fn force_scoped_fanout(&mut self, scoped: bool) {
        self.scoped_fanout = scoped;
    }

    /// Benchmark hook: one market-clearing pass at the current time,
    /// without advancing demand or request processing. Exists so the
    /// substrate bench can isolate the (single-threaded) clearing cost;
    /// not part of the simulation API.
    #[doc(hidden)]
    pub fn bench_clear_markets(&mut self) {
        let ctx = TickCtx {
            config: &self.config,
            level_grid: &self.level_grid,
            surge_dist: &self.surge_dist,
            trace: &self.trace,
            now: self.now,
            dt: self.config.tick,
        };
        for shard in &mut self.shards {
            shard.clear_markets(&ctx);
        }
    }

    /// Applies every shard's buffered events, trace writes, and ledger
    /// charges, in ascending region order — the single deterministic
    /// serialization point of the parallel tick.
    fn merge_shard_outputs(&mut self) {
        for shard in &mut self.shards {
            self.events.append(&mut shard.events);
            for op in shard.trace_ops.drain(..) {
                match op {
                    TraceOp::Price(market, at, price) => self.trace.record_price(market, at, price),
                    TraceOp::ShortageStarted(pool, at) => self.trace.shortage_started(pool, at),
                    TraceOp::ShortageEnded(pool, at) => self.trace.shortage_ended(pool, at),
                }
            }
            for c in shard.charges.drain(..) {
                self.ledger.charge(c.at, c.market, c.kind, c.used, c.rate);
            }
        }
    }
}

/// Outcome of evaluating a spot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpotEval {
    Fulfill,
    PriceTooLow,
    Oversubscribed,
    NotAvailable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DemandProfile;

    fn quiet_cloud() -> Cloud {
        let mut config = SimConfig::paper(42);
        config.demand = DemandProfile::quiet();
        Cloud::new(Catalog::testbed(), config)
    }

    #[test]
    fn construction_wires_indices() {
        let c = quiet_cloud();
        assert_eq!(c.market_count(), c.catalog().markets().len());
        assert_eq!(c.pool_count(), c.catalog().pools().len());
        for &m in c.catalog().markets() {
            assert!(c.oracle_true_price(m).is_some());
        }
        // Shards cover exactly the catalog's regions, ascending.
        let regions: Vec<usize> = c.shards.iter().map(|s| s.region_idx).collect();
        let mut sorted = regions.clone();
        sorted.sort_unstable();
        assert_eq!(regions, sorted, "shards must be in region order");
    }

    #[test]
    fn tick_advances_time() {
        let mut c = quiet_cloud();
        let t0 = c.now();
        c.tick();
        assert_eq!(c.now(), t0 + c.config().tick);
    }

    #[test]
    fn quiet_cloud_prices_settle_at_floor() {
        let mut c = quiet_cloud();
        c.warmup(50);
        for &m in c.catalog().markets() {
            let price = c.oracle_true_price(m).unwrap();
            let od = c.catalog().od_price(m);
            let ratio = price.ratio_to(od);
            assert!(
                ratio <= 0.30,
                "market {m} should be near the floor, ratio {ratio}"
            );
        }
    }

    #[test]
    fn quiet_cloud_od_always_available() {
        let mut c = quiet_cloud();
        c.warmup(50);
        for &m in c.catalog().markets() {
            assert_eq!(c.oracle_od_available(m), Some(true), "market {m}");
        }
    }

    #[test]
    fn pool_invariants_hold_under_paper_demand() {
        let mut config = SimConfig::paper(7);
        config.demand = DemandProfile::paper_calibration();
        let mut c = Cloud::new(Catalog::testbed(), config);
        for _ in 0..500 {
            c.tick();
            for p in c.iter_pool_entries() {
                assert!(p.pool.invariants_hold(), "pool {} broke invariants", p.id);
            }
        }
    }

    #[test]
    fn price_changes_are_published_with_lag() {
        let mut config = SimConfig::paper(9);
        config.demand = DemandProfile::paper_calibration();
        config.record_all_prices = true;
        let mut c = Cloud::new(Catalog::testbed(), config);
        let mut saw_change = false;
        for _ in 0..300 {
            c.tick();
            for ev in c.take_events() {
                if let CloudEvent::PriceChange { market, price, .. } = ev {
                    saw_change = true;
                    // The published price matches the event.
                    assert_eq!(c.oracle_published_price(market), Some(price));
                }
            }
        }
        assert!(
            saw_change,
            "expected at least one price change in 300 ticks"
        );
    }

    #[test]
    fn shortage_events_are_paired() {
        let config = SimConfig::paper(11);
        let mut c = Cloud::new(Catalog::testbed(), config);
        let mut open: HashMap<PoolId, u32> = HashMap::new();
        for _ in 0..1500 {
            c.tick();
            for ev in c.take_events() {
                match ev {
                    CloudEvent::PoolShortageStarted { pool, .. } => {
                        *open.entry(pool).or_insert(0) += 1;
                        assert_eq!(open[&pool], 1, "double start for {pool}");
                    }
                    CloudEvent::PoolShortageEnded { pool, .. } => {
                        let v = open.get_mut(&pool).expect("end without start");
                        *v -= 1;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn warmup_clears_events() {
        let mut c = quiet_cloud();
        c.warmup(10);
        assert!(c.take_events().is_empty());
    }

    #[test]
    fn drain_events_into_recycles_the_buffer() {
        let mut config = SimConfig::paper(13);
        config.record_all_prices = true;
        let mut c = Cloud::new(Catalog::testbed(), config);
        let mut buf = Vec::new();
        let mut total = 0usize;
        for _ in 0..100 {
            c.tick();
            c.drain_events_into(&mut buf);
            total += buf.len();
        }
        assert!(total > 0, "expected events in 100 paper-demand ticks");
        // After a drain the internal buffer is empty again.
        assert!(c.take_events().is_empty());
    }

    /// The determinism contract: the same seed and config produce the
    /// same event stream and prices at every thread count.
    #[test]
    fn tick_is_thread_count_invariant() {
        let run = |threads: usize| {
            let mut config = SimConfig::paper(23);
            config.record_all_prices = true;
            config.threads = threads;
            let mut c = Cloud::new(Catalog::testbed(), config);
            let mut events = Vec::new();
            for _ in 0..300 {
                c.tick();
                events.extend(c.take_events());
            }
            let prices: Vec<Price> = c
                .catalog()
                .markets()
                .iter()
                .map(|&m| c.oracle_true_price(m).unwrap())
                .collect();
            (events, prices)
        };
        let base = run(1);
        assert_eq!(base, run(2), "threads=2 diverged from threads=1");
        assert_eq!(base, run(5), "threads=5 diverged from threads=1");
    }
}
