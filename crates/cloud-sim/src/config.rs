//! Simulation configuration: service limits and the demand-model
//! calibration constants.
//!
//! The demand model is deliberately explicit about its constants —
//! [`DemandProfile::paper_calibration`] is the preset that reproduces the
//! qualitative shapes of the paper's Chapter 5, and the ablation benches
//! sweep the constants DESIGN.md calls out (surge mixture, provisioning
//! factors, reserve-price floor) to show the shapes are robust.

use crate::chaos::ChaosConfig;
use crate::ids::{Family, Platform, Region, Size};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-region service limits, mirroring the limits SpotLight's prototype
/// had to manage (Chapter 4): at most 20 running on-demand instances and
/// 20 open spot requests per region, plus an API rate limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceLimits {
    /// Maximum concurrently running externally launched on-demand
    /// instances per region.
    pub max_od_instances_per_region: u32,
    /// Maximum concurrently open spot requests per region.
    pub max_spot_requests_per_region: u32,
    /// API calls allowed per minute per region (token bucket).
    pub api_calls_per_minute_per_region: u32,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        ServiceLimits {
            max_od_instances_per_region: 20,
            max_spot_requests_per_region: 20,
            api_calls_per_minute_per_region: 240,
        }
    }
}

/// All calibration constants of the generative demand model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandProfile {
    // ---- pool sizing -------------------------------------------------
    /// Physical pool units = `pool_scale × Σ member-market units`,
    /// scaled by the family scale.
    pub pool_scale: f64,
    /// Per-region demand pressure, indexed by [`Region::index`]: a
    /// multiplier on mean on-demand utilization, surge rates, and surge
    /// magnitudes. Well-provisioned regions (us-east-1) sit below 1;
    /// under-provisioned ones (sa-east-1, ap-southeast-1/2) above.
    pub region_pressure: [f64; 9],
    /// Exponent applied to regional pressure when scaling surge *rates*.
    pub surge_rate_pressure_exp: f64,
    /// Exponent applied to regional pressure when scaling surge
    /// *magnitudes*.
    pub surge_magnitude_pressure_exp: f64,
    /// Fraction of each pool promised to reserved instances.
    pub reserved_fraction: f64,
    /// Mean fraction of the reserved grant that is running.
    pub reserved_util_mean: f64,
    /// Diurnal amplitude of reserved running utilization.
    pub reserved_util_amplitude: f64,
    /// How strongly reserved *starts* couple to demand surges: users
    /// light up idle reservations during the same events that surge
    /// on-demand, shrinking spot supply toward its §2.2 lower bound
    /// (granted-but-not-running reservations) and pinning the price at
    /// the 10× cap.
    pub reserved_surge_coupling: f64,

    // ---- on-demand demand -------------------------------------------
    /// Mean organic on-demand utilization as a fraction of the §2.2 cap.
    pub od_base_util: f64,
    /// Diurnal amplitude of on-demand demand.
    pub od_diurnal_amplitude: f64,
    /// Weekly amplitude of on-demand demand.
    pub od_weekly_amplitude: f64,
    /// Mean-reversion rate of the on-demand OU process per tick.
    pub od_reversion: f64,
    /// Noise of the on-demand OU process (fraction of cap, per tick).
    pub od_noise: f64,
    /// Region-shared "busy factor" OU noise per tick.
    pub region_busy_noise: f64,
    /// Region-shared busy-factor mean-reversion per tick.
    pub region_busy_reversion: f64,

    // ---- on-demand surge events --------------------------------------
    /// Poisson rate (events/day) of zone-local demand surges per pool,
    /// before family-volatility scaling. These are heavy-tailed and
    /// *uncorrelated* across zones.
    pub pool_surge_rate_per_day: f64,
    /// Poisson rate (events/day) of region-wide family surges per region.
    /// These are moderate and *correlated* across zones (§3.2.2).
    pub region_surge_rate_per_day: f64,
    /// Pareto scale of zone-local surge magnitude (fraction of od cap).
    pub surge_magnitude_scale: f64,
    /// Pareto shape of zone-local surge magnitude.
    pub surge_magnitude_alpha: f64,
    /// Cap on a single surge's magnitude (fraction of od cap).
    pub surge_magnitude_cap: f64,
    /// Magnitude multiplier for region-wide surges (they are broader but
    /// shallower than local ones).
    pub region_surge_attenuation: f64,
    /// Median surge duration in seconds (lognormal).
    pub surge_duration_median_secs: f64,
    /// Lognormal sigma of surge durations.
    pub surge_duration_sigma: f64,
    /// Fraction of unserved on-demand demand that spills to the same
    /// family in the region's other zones on the next tick (§5.2.3).
    pub spill_fraction: f64,

    // ---- spot demand -------------------------------------------------
    /// Bid levels as multiples of the on-demand price, ascending. The
    /// lowest level doubles as the market's reserve floor.
    pub level_multiples: Vec<f64>,
    /// Relative demand mass at each level (same length as
    /// `level_multiples`); most mass sits at low multiples with a bump of
    /// "convenience" bids at 1×.
    pub level_profile: Vec<f64>,
    /// Total base spot demand as a multiple of a market's baseline
    /// supply; >1 keeps the floor busy.
    pub spot_demand_intensity: f64,
    /// Fraction of a pool's spot supply the operator keeps free of
    /// background demand so new spot requests bidding the current price
    /// normally fulfil (capacity-oversubscribed stays rare, §3.3).
    pub spot_headroom_frac: f64,
    /// Mean-reversion of the per-market demand-scale OU per tick.
    pub spot_reversion: f64,
    /// Noise of the per-market demand-scale OU per tick.
    pub spot_noise: f64,
    /// Noise of the per-market demand-tilt OU per tick (shifts mass
    /// between low and high bid levels).
    pub spot_tilt_noise: f64,
    /// Poisson rate (events/day) of spot-side demand surges per market,
    /// before family-volatility scaling. These spike the price *without*
    /// an on-demand shortage.
    pub spot_surge_rate_per_day: f64,
    /// Pareto scale of spot-surge mass (relative to baseline supply).
    pub spot_surge_scale: f64,
    /// Pareto shape of spot-surge mass.
    pub spot_surge_alpha: f64,
    /// Cap on spot-surge mass (relative to baseline supply).
    pub spot_surge_cap: f64,
    /// Exponential decay (in price multiples) of surge bid mass across
    /// the high bid levels: larger values put more panic bids at high
    /// multiples, enabling demand-driven spikes to the cap.
    pub surge_bid_decay: f64,
    /// Fraction of surge bid mass placed directly at the 10× cap — the
    /// "convenience bids" of §2.1.3 that users park at the maximum to
    /// avoid revocation.
    pub surge_bid_cap_share: f64,
    /// Structurally tight pools observed during the study period (the
    /// markets the paper's case studies pick), as
    /// `(region, zone index, family, pressure multiplier)`.
    pub hot_pools: Vec<(Region, u8, Family, f64)>,

    // ---- capacity parking (spot capacity-not-available, §5.3) --------
    /// Price ratio (spot/od) above which the operator never parks idle
    /// capacity.
    pub park_ratio_hi: f64,
    /// Rate (per pool per day, at a price ratio of zero) of entering the
    /// parked state; scales linearly down to zero at `park_ratio_hi`.
    pub park_enter_rate_per_day: f64,
    /// Median parked-state duration in seconds (lognormal).
    pub park_duration_median_secs: f64,
    /// Lognormal sigma of parked-state durations.
    pub park_duration_sigma: f64,
    /// Per-region parking aggressiveness, indexed by [`Region::index`].
    pub park_region_aggressiveness: [f64; 9],
}

impl DemandProfile {
    /// The calibration that reproduces the paper's Chapter 5 shapes.
    pub fn paper_calibration() -> Self {
        DemandProfile {
            pool_scale: 12.0,
            //               use1  usw1  usw2  euw1  euc1  apn1  aps1  aps2  sae1
            region_pressure: [0.75, 0.90, 0.85, 0.87, 0.92, 0.89, 1.08, 1.10, 1.22],
            surge_rate_pressure_exp: 2.0,
            surge_magnitude_pressure_exp: 2.0,
            reserved_fraction: 0.35,
            reserved_util_mean: 0.70,
            reserved_util_amplitude: 0.08,
            reserved_surge_coupling: 0.48,

            od_base_util: 0.55,
            od_diurnal_amplitude: 0.10,
            od_weekly_amplitude: 0.05,
            od_reversion: 0.25,
            od_noise: 0.020,
            region_busy_noise: 0.035,
            region_busy_reversion: 0.10,

            pool_surge_rate_per_day: 0.04,
            region_surge_rate_per_day: 0.50,
            surge_magnitude_scale: 0.17,
            surge_magnitude_alpha: 1.35,
            surge_magnitude_cap: 2.2,
            region_surge_attenuation: 0.30,
            surge_duration_median_secs: 600.0,
            surge_duration_sigma: 3.0,
            spill_fraction: 0.08,

            level_multiples: vec![
                0.08, 0.12, 0.18, 0.25, 0.35, 0.50, 0.70, 0.85, 1.00, 1.30, 1.80, 2.50, 4.00, 6.00,
                10.0,
            ],
            level_profile: vec![
                2.4, 2.6, 2.4, 2.0, 1.5, 1.1, 0.7, 0.45, 1.30, 0.18, 0.10, 0.06, 0.04, 0.025, 0.015,
            ],
            spot_demand_intensity: 1.18,
            spot_headroom_frac: 0.06,
            spot_reversion: 0.18,
            spot_noise: 0.030,
            spot_tilt_noise: 0.020,
            spot_surge_rate_per_day: 2.2,
            spot_surge_scale: 0.55,
            spot_surge_alpha: 1.45,
            spot_surge_cap: 15.0,
            surge_bid_decay: 12.0,
            surge_bid_cap_share: 0.30,
            hot_pools: vec![
                (Region::UsEast1, 4, Family::D2, 1.90),
                (Region::ApSoutheast2, 0, Family::G2, 1.35),
                (Region::ApSoutheast2, 1, Family::G2, 1.30),
            ],

            park_ratio_hi: 0.30,
            park_enter_rate_per_day: 1.2,
            park_duration_median_secs: 5400.0,
            park_duration_sigma: 1.0,
            //                       use1  usw1 usw2 euw1 euc1 apn1 aps1 aps2 sae1
            park_region_aggressiveness: [1.0, 0.45, 0.5, 0.5, 0.4, 0.5, 0.55, 0.55, 0.85],
        }
    }

    /// A quiet profile with no surges and no noise — capacity is always
    /// available. Useful as a unit-test baseline.
    pub fn quiet() -> Self {
        DemandProfile {
            od_base_util: 0.4,
            od_noise: 0.0,
            region_busy_noise: 0.0,
            reserved_util_amplitude: 0.0,
            od_diurnal_amplitude: 0.0,
            od_weekly_amplitude: 0.0,
            pool_surge_rate_per_day: 0.0,
            region_surge_rate_per_day: 0.0,
            spot_surge_rate_per_day: 0.0,
            spot_noise: 0.0,
            spot_tilt_noise: 0.0,
            park_enter_rate_per_day: 0.0,
            park_region_aggressiveness: [0.0; 9],
            hot_pools: Vec::new(),
            ..DemandProfile::paper_calibration()
        }
    }

    /// The volatility multiplier of a family: specialized hardware (d2,
    /// g2, i2, cluster types) has small, spiky pools; commodity families
    /// are calm. This is why the paper's case studies (Fig 6.1/6.2) pick
    /// d2 and g2 markets.
    pub fn family_volatility(&self, family: Family) -> f64 {
        match family {
            Family::D2 => 3.2,
            Family::G2 => 3.8,
            Family::I2 => 2.2,
            Family::Cc2 | Family::Cr1 | Family::Cg1 => 2.5,
            Family::Hs1 | Family::Hi1 => 2.0,
            Family::C3 => 1.7,
            Family::R3 => 1.4,
            Family::M3 => 1.1,
            Family::M1 | Family::M2 | Family::C1 | Family::T1 => 1.2,
            Family::M4 | Family::C4 | Family::T2 => 0.8,
        }
    }

    /// The demand-pressure multiplier of one pool: regional pressure ×
    /// family pressure × any hot-pool override.
    pub fn pool_pressure(&self, pool: crate::ids::PoolId) -> f64 {
        let region = pool.az.region();
        let base = self.region_pressure[region.index()] * self.family_od_pressure(pool.family);
        let hot = self
            .hot_pools
            .iter()
            .find(|&&(r, z, f, _)| r == region && z == pool.az.zone_index() && f == pool.family)
            .map(|&(_, _, _, mult)| mult);
        base * hot.unwrap_or(1.0)
    }

    /// Chronic on-demand pressure multiplier of a family: the
    /// specialized-hardware pools (d2, g2) the paper's case studies pick
    /// are structurally tight, so their revocations coincide with
    /// on-demand shortages far more often than commodity families'.
    pub fn family_od_pressure(&self, family: Family) -> f64 {
        match family {
            Family::D2 => 1.18,
            Family::G2 => 1.28,
            Family::I2 => 1.05,
            Family::Hs1 | Family::Hi1 | Family::Cc2 | Family::Cr1 | Family::Cg1 => 1.08,
            _ => 1.0,
        }
    }

    /// The pool-size multiplier of a family (specialized pools are
    /// smaller relative to their member demand).
    pub fn family_pool_scale(&self, family: Family) -> f64 {
        match family {
            Family::D2 | Family::G2 => 0.55,
            Family::I2 | Family::Hs1 | Family::Hi1 => 0.7,
            Family::Cc2 | Family::Cr1 | Family::Cg1 => 0.6,
            Family::C3 => 0.85,
            _ => 1.0,
        }
    }

    /// Relative popularity of a platform; used to split a pool's spot
    /// supply among member markets.
    pub fn platform_weight(&self, platform: Platform) -> f64 {
        match platform {
            Platform::LinuxUnix => 0.45,
            Platform::LinuxUnixVpc => 0.30,
            Platform::Windows => 0.15,
            Platform::SuseLinux => 0.10,
        }
    }

    /// Relative popularity of a size; smaller instances are requested
    /// more often.
    pub fn size_weight(&self, size: Size) -> f64 {
        match size {
            Size::Micro | Size::Small | Size::Medium => 1.0,
            Size::Large => 1.0,
            Size::Xlarge => 0.9,
            Size::X2 => 0.8,
            Size::X4 => 0.5,
            Size::X8 => 0.35,
            Size::X10 => 0.30,
        }
    }

    /// The diurnal phase shift of a region (fraction of a day), modelling
    /// its dominant customer time zone.
    pub fn region_phase(&self, region: Region) -> f64 {
        match region {
            Region::UsEast1 => 0.0,
            Region::UsWest1 | Region::UsWest2 => 0.125,
            Region::EuWest1 => -0.21,
            Region::EuCentral1 => -0.25,
            Region::ApNortheast1 => 0.42,
            Region::ApSoutheast1 => 0.46,
            Region::ApSoutheast2 => 0.54,
            Region::SaEast1 => 0.04,
        }
    }

    /// Validates internal consistency (level arrays aligned, monotone
    /// multiples, probabilities in range).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.level_multiples.len() != self.level_profile.len() {
            return Err(format!(
                "level_multiples ({}) and level_profile ({}) lengths differ",
                self.level_multiples.len(),
                self.level_profile.len()
            ));
        }
        if self.level_multiples.len() < 3 {
            return Err("need at least 3 bid levels".into());
        }
        if !self
            .level_multiples
            .windows(2)
            .all(|w| w[0] < w[1] && w[0] > 0.0)
        {
            return Err("level_multiples must be positive and strictly increasing".into());
        }
        if self.level_profile.iter().any(|&m| m < 0.0) {
            return Err("level_profile masses must be non-negative".into());
        }
        for (name, v) in [
            ("reserved_fraction", self.reserved_fraction),
            ("reserved_util_mean", self.reserved_util_mean),
            ("od_base_util", self.od_base_util),
            ("spill_fraction", self.spill_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.pool_scale <= 0.0 || self.spot_demand_intensity <= 0.0 {
            return Err("pool_scale and spot_demand_intensity must be positive".into());
        }
        Ok(())
    }
}

impl Default for DemandProfile {
    fn default() -> Self {
        DemandProfile::paper_calibration()
    }
}

/// Below this many catalog markets, `threads = 0` (auto) resolves to
/// `1` and the tick runs inline. Explicit `threads` values are always
/// honoured.
///
/// Derivation (PR 10, re-derived for the persistent worker pool): the
/// `pool_dispatch/pool_scope_4` bench — submitting four worker-group
/// tasks to the parked pool and joining the barrier — measures
/// ≈ 1.4 µs on the 1-CPU reference host (vs ≈ 98 µs for the
/// `thread_scope_4` spawn/join it replaced, a ~70× drop), while one
/// market's share of the tick is ≈ 93 ns
/// (`tick/standard_catalog_tick_5184_markets` ≈ 480 µs over 5184
/// markets). A `W`-worker fan-out saves at most `T·(W−1)/W` of a
/// `T`-long tick, so parallelism breaks even around `T ≈ 2·dispatch ≈
/// 2.8 µs ≈ 30 markets; 128 keeps a ~4× margin for the boxed task and
/// worker-group vector each parallel tick allocates. The pre-pool
/// cutoff was 512, sized to per-tick `std::thread::scope` spawns; the
/// pool moves the crossover down 4×.
pub(crate) const PARALLEL_AUTO_MIN_MARKETS: usize = 128;

/// Top-level simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed for every stochastic process in the run.
    pub seed: u64,
    /// Demand-tick interval; prices and pool occupancy update at this
    /// granularity (EC2 spot prices move on a minutes scale).
    pub tick: SimDuration,
    /// Published spot prices lag the true clearing price by a uniform
    /// draw from this range, in seconds (the 20–40 s propagation delay of
    /// §5.1.2).
    pub price_lag_secs: (u64, u64),
    /// Warning EC2 gives before reclaiming a spot instance.
    pub revocation_warning: SimDuration,
    /// Demand-model calibration.
    pub demand: DemandProfile,
    /// Per-region service limits.
    pub limits: ServiceLimits,
    /// Record the full price history of every market (memory-heavy);
    /// when `false` only watched markets are recorded.
    pub record_all_prices: bool,
    /// Worker threads for the region-sharded tick: `0` (auto) resolves
    /// at construction to the machine's available parallelism — or to
    /// `1` for catalogs under [`PARALLEL_AUTO_MIN_MARKETS`] markets,
    /// where even the persistent pool's dispatch would cost more than
    /// the tick itself; `1` runs the shards inline on the calling
    /// thread (no cross-thread dispatch); higher values are always
    /// honoured and fan region shards out across that many workers of
    /// the shared persistent pool (`spotlight_pool`). The thread count
    /// affects wall-clock time only — results are bit-identical at any
    /// setting (see the determinism contract in [`crate::cloud`]).
    pub threads: usize,
    /// Deterministic fault injection (see [`crate::chaos`]). Defaults to
    /// everything off; stochastic faults draw from dedicated per-region
    /// chaos streams so enabling them does not perturb the demand
    /// trajectory of a seed.
    pub chaos: ChaosConfig,
}

impl SimConfig {
    /// The paper-calibrated configuration with the given seed.
    pub fn paper(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick.is_zero() {
            return Err("tick must be positive".into());
        }
        if self.price_lag_secs.0 > self.price_lag_secs.1 {
            return Err("price lag range is inverted".into());
        }
        if self.price_lag_secs.1 >= self.tick.as_secs() {
            return Err("price lag must be shorter than a tick".into());
        }
        self.chaos.validate()?;
        self.demand.validate()
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x0005_4971,
            tick: SimDuration::from_secs(300),
            price_lag_secs: (20, 40),
            revocation_warning: SimDuration::from_secs(120),
            demand: DemandProfile::paper_calibration(),
            limits: ServiceLimits::default(),
            record_all_prices: false,
            threads: 0,
            chaos: ChaosConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_is_valid() {
        DemandProfile::paper_calibration().validate().unwrap();
        SimConfig::default().validate().unwrap();
        SimConfig::paper(7).validate().unwrap();
    }

    #[test]
    fn quiet_profile_is_valid_and_quiet() {
        let q = DemandProfile::quiet();
        q.validate().unwrap();
        assert_eq!(q.pool_surge_rate_per_day, 0.0);
        assert_eq!(q.od_noise, 0.0);
    }

    #[test]
    fn validation_catches_bad_levels() {
        let mut p = DemandProfile::paper_calibration();
        p.level_profile.pop();
        assert!(p.validate().is_err());

        let mut p = DemandProfile::paper_calibration();
        p.level_multiples[0] = 0.5; // no longer increasing
        assert!(p.validate().is_err());

        let mut p = DemandProfile::paper_calibration();
        p.od_base_util = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_catches_bad_lag() {
        let mut c = SimConfig::default();
        c.price_lag_secs = (50, 40);
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.price_lag_secs = (20, 400);
        assert!(c.validate().is_err());
    }

    #[test]
    fn under_provisioned_regions_have_higher_pressure() {
        let p = DemandProfile::paper_calibration();
        use crate::ids::Region::*;
        assert!(p.region_pressure[SaEast1.index()] > p.region_pressure[UsEast1.index()]);
        assert!(p.region_pressure[ApSoutheast1.index()] > p.region_pressure[UsEast1.index()]);
        assert!(p.region_pressure[ApSoutheast2.index()] > p.region_pressure[UsEast1.index()]);
    }

    #[test]
    fn volatile_families_are_volatile() {
        let p = DemandProfile::paper_calibration();
        assert!(p.family_volatility(Family::G2) > p.family_volatility(Family::M4));
        assert!(p.family_pool_scale(Family::D2) < p.family_pool_scale(Family::M3));
    }
}
