//! Generative demand processes driving the simulated cloud.
//!
//! Three layers of stochastic demand reproduce the causal structure the
//! paper hypothesizes (§2.2, §5.2):
//!
//! * a **region busy factor** — one mean-reverting process per region,
//!   shared by every pool in it, giving the *ambient* cross-zone demand
//!   correlation of §5.2.3;
//! * **pool demand** — per (family × zone): organic on-demand and
//!   reserved utilization follow seasonal Ornstein–Uhlenbeck processes,
//!   punctuated by heavy-tailed *surge events*. Zone-local surges are
//!   rare and large; region-wide family surges are more frequent but
//!   attenuated, which is what makes big spikes *local* and small ones
//!   *correlated* (the trend of Figure 5.8);
//! * **market demand** — per spot market: a parametric bid curve (mass
//!   at each bid level) whose scale and tilt drift, plus spot-side surge
//!   events that spike the price *without* an on-demand shortage — the
//!   reason spike size only loosely correlates with unavailability
//!   (Figure 5.4).

use crate::config::DemandProfile;
use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Seasonal multiplier combining diurnal and weekly cycles.
///
/// `phase` shifts the diurnal peak to the region's time zone.
pub fn seasonal_factor(
    t: SimTime,
    phase: f64,
    diurnal_amplitude: f64,
    weekly_amplitude: f64,
) -> f64 {
    let day = (t.day_fraction() - phase) * std::f64::consts::TAU;
    let week = t.week_fraction() * std::f64::consts::TAU;
    // Peak mid-afternoon (sin peaks at 1/4 of the cycle).
    1.0 + diurnal_amplitude * day.sin() + weekly_amplitude * week.sin()
}

/// One active demand surge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Surge {
    /// Extra demand while active. For pool surges this is a fraction of
    /// the pool's on-demand cap; for market surges it is bid mass
    /// relative to the market's baseline supply.
    pub magnitude: f64,
    /// When the surge ends.
    pub ends_at: SimTime,
}

/// The region-shared busy factor: an OU process around 1.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDemand {
    busy: f64,
}

impl RegionDemand {
    /// Starts at the neutral level.
    pub fn new() -> Self {
        RegionDemand { busy: 1.0 }
    }

    /// Current busy factor (≥ 0.5).
    pub fn busy(&self) -> f64 {
        self.busy
    }

    /// Advances the process one tick.
    pub fn tick(&mut self, profile: &DemandProfile, rng: &mut SimRng) {
        self.busy += profile.region_busy_reversion * (1.0 - self.busy)
            + profile.region_busy_noise * rng.standard_normal();
        self.busy = self.busy.clamp(0.5, 2.0);
    }
}

impl Default for RegionDemand {
    fn default() -> Self {
        RegionDemand::new()
    }
}

/// Demand targets produced by one pool tick, in capacity units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolTargets {
    /// Desired running reserved units.
    pub reserved_units: u64,
    /// Desired organic on-demand units (before the pool clamps to its
    /// cap; the excess becomes `od_unmet`).
    pub od_units: u64,
}

/// Per-pool demand state: reserved and on-demand OU processes plus
/// active surge events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolDemand {
    od_cap: f64,
    reserved_granted: f64,
    /// Volatility multiplier of the pool's family.
    volatility: f64,
    /// Regional demand pressure multiplier.
    pressure: f64,
    /// Diurnal phase of the pool's region.
    phase: f64,
    od_level: f64,
    reserved_level: f64,
    surges: Vec<Surge>,
    /// Demand spilled in from sibling zones, applied on the next tick.
    pub spill_in: f64,
}

impl PoolDemand {
    /// Creates the demand state for a pool with the given static
    /// parameters, starting at its seasonal mean.
    pub fn new(
        od_cap: u64,
        reserved_granted: u64,
        volatility: f64,
        pressure: f64,
        phase: f64,
        profile: &DemandProfile,
    ) -> Self {
        PoolDemand {
            od_cap: od_cap as f64,
            reserved_granted: reserved_granted as f64,
            volatility,
            pressure,
            phase,
            od_level: profile.od_base_util * pressure * od_cap as f64,
            reserved_level: profile.reserved_util_mean * reserved_granted as f64,
            surges: Vec::new(),
            spill_in: 0.0,
        }
    }

    /// Registers a new surge event.
    pub fn add_surge(&mut self, surge: Surge) {
        self.surges.push(surge);
    }

    /// Number of active surges (after the last tick's pruning).
    pub fn active_surges(&self) -> usize {
        self.surges.len()
    }

    /// Total surge demand currently active, as a fraction of the od cap.
    pub fn surge_level(&self) -> f64 {
        self.surges.iter().map(|s| s.magnitude).sum()
    }

    /// Advances the pool demand one tick and returns the new targets.
    pub fn tick(
        &mut self,
        now: SimTime,
        profile: &DemandProfile,
        region_busy: f64,
        rng: &mut SimRng,
    ) -> PoolTargets {
        self.surges.retain(|s| s.ends_at > now);

        let season = seasonal_factor(
            now,
            self.phase,
            profile.od_diurnal_amplitude,
            profile.od_weekly_amplitude,
        );
        let od_mean = profile.od_base_util * self.pressure * self.od_cap * season * region_busy;
        self.od_level += profile.od_reversion * (od_mean - self.od_level)
            + profile.od_noise * self.od_cap * rng.standard_normal();
        self.od_level = self.od_level.clamp(0.0, 2.5 * self.od_cap);

        let res_season = 1.0
            + profile.reserved_util_amplitude
                * ((now.day_fraction() - self.phase) * std::f64::consts::TAU).sin();
        // Reserved starts couple to the same events that surge on-demand
        // (§2.2: starting an unused reservation shrinks the spot pool).
        let res_mean = (profile.reserved_util_mean * res_season
            + profile.reserved_surge_coupling * self.surge_level().min(1.0))
        .min(1.0)
            * self.reserved_granted;
        self.reserved_level += 0.2 * (res_mean - self.reserved_level)
            + 0.5 * profile.od_noise * self.reserved_granted * rng.standard_normal();
        self.reserved_level = self.reserved_level.clamp(0.0, self.reserved_granted);

        let surge_units = self.surge_level() * self.od_cap;
        let od_target = (self.od_level + surge_units + self.spill_in).max(0.0);
        self.spill_in = 0.0;

        PoolTargets {
            reserved_units: self.reserved_level.round() as u64,
            od_units: od_target.round() as u64,
        }
    }
}

/// Bid-level count of the paper-calibrated grid; the dense clearing
/// kernels carry a constant-trip-count fast path for this width so the
/// compiler can unroll and vectorize them.
pub(crate) const FIXED_LEVELS: usize = 15;

/// Precomputed bid-level constants shared by every market: the
/// normalized level profile and the tilt basis. Building this once per
/// cloud removes a divide-heavy inner loop from the per-market clearing
/// path ([`MarketDemand::level_masses_into`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelGrid {
    /// `level_profile[i] / Σ level_profile`.
    norm_profile: Vec<f64>,
    /// `(i − center) / center` per level, the linear tilt basis.
    tilt_basis: Vec<f64>,
}

impl LevelGrid {
    /// Precomputes the grid for a profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile has fewer than two levels (validated
    /// profiles always have at least three).
    pub fn new(profile: &DemandProfile) -> Self {
        let n = profile.level_profile.len();
        assert!(n >= 2, "need at least two bid levels");
        let sum: f64 = profile.level_profile.iter().sum();
        let center = (n as f64 - 1.0) / 2.0;
        LevelGrid {
            norm_profile: profile.level_profile.iter().map(|&p| p / sum).collect(),
            tilt_basis: (0..n).map(|i| (i as f64 - center) / center).collect(),
        }
    }

    /// Number of bid levels.
    pub fn len(&self) -> usize {
        self.norm_profile.len()
    }

    /// True when the grid has no levels (never, for validated profiles).
    pub fn is_empty(&self) -> bool {
        self.norm_profile.is_empty()
    }
}

/// Per-market spot demand: a parametric bid curve with drifting scale
/// and tilt, plus spot-side surges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketDemand {
    scale: f64,
    tilt: f64,
    surges: Vec<Surge>,
}

impl MarketDemand {
    /// Creates a market demand state at its neutral level.
    pub fn new() -> Self {
        MarketDemand {
            scale: 1.0,
            tilt: 0.0,
            surges: Vec::new(),
        }
    }

    /// Registers a spot-side surge.
    pub fn add_surge(&mut self, surge: Surge) {
        self.surges.push(surge);
    }

    /// Total active surge mass relative to baseline supply.
    pub fn surge_level(&self) -> f64 {
        self.surges.iter().map(|s| s.magnitude).sum()
    }

    /// Advances the demand state one tick.
    pub fn tick(&mut self, now: SimTime, profile: &DemandProfile, rng: &mut SimRng) {
        self.surges.retain(|s| s.ends_at > now);
        self.scale += profile.spot_reversion * (1.0 - self.scale)
            + profile.spot_noise * rng.standard_normal();
        self.scale = self.scale.clamp(0.2, 3.0);
        self.tilt += profile.spot_reversion * (0.0 - self.tilt)
            + profile.spot_tilt_noise * rng.standard_normal();
        self.tilt = self.tilt.clamp(-0.9, 0.9);
    }

    /// Writes the current bid-level masses (in instances) into `out`.
    ///
    /// `base_mass` is the market's baseline total demand in instances;
    /// `surge_weights` distributes surge mass over the high bid levels.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the profile.
    pub fn level_masses(
        &self,
        profile: &DemandProfile,
        base_mass: f64,
        surge_weights: &[f64],
        out: &mut [f64],
    ) {
        self.level_masses_into(&LevelGrid::new(profile), base_mass, surge_weights, out);
    }

    /// [`MarketDemand::level_masses`] over a precomputed [`LevelGrid`] —
    /// the form the tick loop uses, with no per-call normalization work.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the grid.
    pub fn level_masses_into(
        &self,
        grid: &LevelGrid,
        base_mass: f64,
        surge_weights: &[f64],
        out: &mut [f64],
    ) {
        let n = grid.len();
        assert_eq!(out.len(), n, "output slice length mismatch");
        assert_eq!(surge_weights.len(), n, "surge weight length mismatch");
        let scaled_base = base_mass * self.scale;
        let surge_mass = self.surge_level() * base_mass;
        // Fast path for the paper's fixed 15-level grid: converting the
        // slices to `[f64; 15]` gives the loop a constant trip count, so
        // the compiler fully unrolls and auto-vectorizes the kernel
        // (element-wise only — bit-identical to the generic loop). The
        // `tick_component/level_masses_and_clear` bench guards this.
        if let (Ok(out), Ok(profile), Ok(tilt), Ok(surge)) = (
            <&mut [f64; FIXED_LEVELS]>::try_from(&mut *out),
            <&[f64; FIXED_LEVELS]>::try_from(grid.norm_profile.as_slice()),
            <&[f64; FIXED_LEVELS]>::try_from(grid.tilt_basis.as_slice()),
            <&[f64; FIXED_LEVELS]>::try_from(surge_weights),
        ) {
            for i in 0..FIXED_LEVELS {
                let tilt_factor = (1.0 + self.tilt * tilt[i]).max(0.05);
                out[i] = profile[i] * scaled_base * tilt_factor + surge_mass * surge[i];
            }
            return;
        }
        for i in 0..n {
            let tilt_factor = (1.0 + self.tilt * grid.tilt_basis[i]).max(0.05);
            out[i] =
                grid.norm_profile[i] * scaled_base * tilt_factor + surge_mass * surge_weights[i];
        }
    }

    /// [`MarketDemand::level_masses_into`] fused with the mass sum the
    /// clearing step needs: writes the bid-level masses into `out` and
    /// returns `Σ out[i]`, accumulated left to right over the
    /// just-written (L1-hot) array — bit-identical to re-summing the
    /// slice, which is exactly what [`crate::market::clear`] would
    /// otherwise do. The tick loop pairs this with
    /// [`crate::market::clear_with_total`] so each market's masses are
    /// produced, summed, and walked in one pass over flat fixed-width
    /// arrays with no rescan.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the grid.
    pub fn level_masses_and_total_into(
        &self,
        grid: &LevelGrid,
        base_mass: f64,
        surge_weights: &[f64],
        out: &mut [f64],
    ) -> f64 {
        self.level_masses_into(grid, base_mass, surge_weights, out);
        // Constant-trip-count sum on the fixed 15-level grid (same
        // left-to-right order as the generic fallback — FP addition
        // order is part of the determinism contract).
        match <&[f64; FIXED_LEVELS]>::try_from(&*out) {
            Ok(m) => m.iter().sum(),
            Err(_) => out.iter().sum(),
        }
    }
}

impl Default for MarketDemand {
    fn default() -> Self {
        MarketDemand::new()
    }
}

/// Computes the surge-mass distribution over bid levels: `cap_share` of
/// the mass sits directly at the bid cap (§2.1.3's "convenience bids"),
/// and the rest lands on levels at or above `from_multiple`, decaying
/// with the level multiple at rate `decay`.
pub fn surge_weights(
    level_multiples: &[f64],
    from_multiple: f64,
    decay: f64,
    cap_share: f64,
) -> Vec<f64> {
    let raw: Vec<f64> = level_multiples
        .iter()
        .map(|&m| {
            if m >= from_multiple {
                (-m / decay).exp()
            } else {
                0.0
            }
        })
        .collect();
    let sum: f64 = raw.iter().sum();
    let n = level_multiples.len();
    if sum <= 0.0 {
        // Degenerate grid: put everything on the top level.
        let mut w = vec![0.0; n];
        if let Some(last) = w.last_mut() {
            *last = 1.0;
        }
        return w;
    }
    let cap_share = cap_share.clamp(0.0, 1.0);
    let mut w: Vec<f64> = raw
        .into_iter()
        .map(|x| x / sum * (1.0 - cap_share))
        .collect();
    w[n - 1] += cap_share;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn profile() -> DemandProfile {
        DemandProfile::paper_calibration()
    }

    #[test]
    fn seasonal_factor_oscillates_around_one() {
        let mut sum = 0.0;
        let n = 24 * 7;
        for h in 0..n {
            sum += seasonal_factor(SimTime::from_secs(h * 3600), 0.0, 0.1, 0.05);
        }
        assert!((sum / n as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    fn region_demand_stays_bounded() {
        let mut rd = RegionDemand::new();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            rd.tick(&profile(), &mut rng);
            assert!((0.5..=2.0).contains(&rd.busy()));
        }
    }

    #[test]
    fn quiet_pool_demand_is_deterministic_mean() {
        let p = DemandProfile::quiet();
        let mut pd = PoolDemand::new(100, 50, 1.0, 1.0, 0.0, &p);
        let mut rng = SimRng::seed_from(2);
        let t = pd.tick(SimTime::ZERO, &p, 1.0, &mut rng);
        assert_eq!(t.od_units, (p.od_base_util * 100.0).round() as u64);
        assert!(t.reserved_units <= 50);
    }

    #[test]
    fn surges_raise_and_expire() {
        let p = DemandProfile::quiet();
        let mut pd = PoolDemand::new(100, 0, 1.0, 1.0, 0.0, &p);
        let mut rng = SimRng::seed_from(3);
        pd.add_surge(Surge {
            magnitude: 0.5,
            ends_at: SimTime::from_secs(600),
        });
        let during = pd.tick(SimTime::from_secs(300), &p, 1.0, &mut rng);
        let after = pd.tick(SimTime::from_secs(900), &p, 1.0, &mut rng);
        assert!(during.od_units > after.od_units);
        assert_eq!(pd.active_surges(), 0);
    }

    #[test]
    fn spill_in_applies_once() {
        let p = DemandProfile::quiet();
        let mut pd = PoolDemand::new(100, 0, 1.0, 1.0, 0.0, &p);
        let mut rng = SimRng::seed_from(4);
        let base = pd.tick(SimTime::ZERO, &p, 1.0, &mut rng).od_units;
        pd.spill_in = 20.0;
        let spiked = pd
            .tick(SimTime::ZERO + SimDuration::minutes(5), &p, 1.0, &mut rng)
            .od_units;
        let back = pd
            .tick(SimTime::ZERO + SimDuration::minutes(10), &p, 1.0, &mut rng)
            .od_units;
        assert_eq!(spiked, base + 20);
        assert_eq!(back, base);
    }

    #[test]
    fn market_masses_conserve_base_mass() {
        let p = profile();
        let md = MarketDemand::new();
        let n = p.level_profile.len();
        let sw = surge_weights(
            &p.level_multiples,
            0.85,
            p.surge_bid_decay,
            p.surge_bid_cap_share,
        );
        let mut out = vec![0.0; n];
        md.level_masses(&p, 50.0, &sw, &mut out);
        let total: f64 = out.iter().sum();
        assert!((total - 50.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn market_surge_adds_high_level_mass() {
        let p = profile();
        let mut md = MarketDemand::new();
        let n = p.level_profile.len();
        let sw = surge_weights(
            &p.level_multiples,
            0.85,
            p.surge_bid_decay,
            p.surge_bid_cap_share,
        );
        let mut base = vec![0.0; n];
        md.level_masses(&p, 50.0, &sw, &mut base);
        md.add_surge(Surge {
            magnitude: 1.0,
            ends_at: SimTime::from_secs(600),
        });
        let mut surged = vec![0.0; n];
        md.level_masses(&p, 50.0, &sw, &mut surged);
        // Mass below 0.85× unchanged; mass above increased.
        for i in 0..n {
            if p.level_multiples[i] < 0.85 {
                assert!((surged[i] - base[i]).abs() < 1e-9);
            }
        }
        let high_base: f64 = base
            .iter()
            .zip(&p.level_multiples)
            .filter(|(_, &m)| m >= 0.85)
            .map(|(x, _)| x)
            .sum();
        let high_surged: f64 = surged
            .iter()
            .zip(&p.level_multiples)
            .filter(|(_, &m)| m >= 0.85)
            .map(|(x, _)| x)
            .sum();
        assert!((high_surged - high_base - 50.0).abs() < 1e-9);
    }

    #[test]
    fn surge_weights_sum_to_one_on_high_levels() {
        let p = profile();
        let w = surge_weights(
            &p.level_multiples,
            0.85,
            p.surge_bid_decay,
            p.surge_bid_cap_share,
        );
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (i, &m) in p.level_multiples.iter().enumerate() {
            if m < 0.85 {
                assert_eq!(w[i], 0.0);
            }
        }
    }

    #[test]
    fn surge_weights_degenerate_grid() {
        let w = surge_weights(&[0.1, 0.2], 0.5, 4.0, 0.3);
        assert_eq!(w, vec![0.0, 1.0]);
    }
}
