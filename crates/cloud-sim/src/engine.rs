//! The discrete-event engine: drives the cloud's tick loop and hosts
//! *agents* (SpotLight, case-study workloads) that react to cloud events
//! and schedule their own wake-ups.
//!
//! The engine is single-threaded and deterministic: given the same seed
//! and the same agents, a run replays exactly. Agents interact with the
//! world through [`Ctx`], which exposes the cloud plus a scheduler.
//!
//! # Examples
//!
//! ```
//! use cloud_sim::catalog::Catalog;
//! use cloud_sim::config::SimConfig;
//! use cloud_sim::engine::{Agent, Ctx, Engine};
//! use cloud_sim::cloud::CloudEvent;
//! use cloud_sim::time::{SimDuration, SimTime};
//!
//! struct Counter(u64);
//! impl Agent for Counter {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.wake_in(SimDuration::hours(1), 0);
//!     }
//!     fn on_wake(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
//!         self.0 += 1;
//!         ctx.wake_in(SimDuration::hours(1), 0);
//!     }
//!     fn on_cloud_event(&mut self, _ctx: &mut Ctx<'_>, _event: &CloudEvent) {}
//! }
//!
//! let mut engine = Engine::new(Catalog::testbed(), SimConfig::paper(1));
//! engine.add_agent(Box::new(Counter(0)));
//! engine.run_until(SimTime::from_secs(6 * 3600));
//! ```

use crate::catalog::Catalog;
use crate::cloud::{Cloud, CloudEvent};
use crate::config::SimConfig;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle agents use to act on the world: the cloud plus scheduling.
pub struct Ctx<'a> {
    /// The cloud, for API calls and oracle reads.
    pub cloud: &'a mut Cloud,
    agent_idx: usize,
    now: SimTime,
    wakes: &'a mut Vec<(SimTime, usize, u64)>,
}

impl Ctx<'_> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a wake-up for this agent at absolute time `at` with an
    /// opaque `token` the agent uses to recognize the purpose.
    pub fn wake_at(&mut self, at: SimTime, token: u64) {
        let at = at.max(self.now);
        self.wakes.push((at, self.agent_idx, token));
    }

    /// Schedules a wake-up `delay` from now.
    pub fn wake_in(&mut self, delay: SimDuration, token: u64) {
        self.wakes.push((self.now + delay, self.agent_idx, token));
    }
}

/// A deterministic actor hosted by the engine.
///
/// All methods receive a [`Ctx`] giving mutable access to the cloud and
/// the ability to schedule wake-ups.
pub trait Agent {
    /// Called once before the first tick.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// Called at a previously scheduled wake-up time.
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// Called for every cloud event, after each tick.
    fn on_cloud_event(&mut self, ctx: &mut Ctx<'_>, event: &CloudEvent);

    /// Called once when the run ends.
    fn on_finish(&mut self, _ctx: &mut Ctx<'_>) {}
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum QueueItem {
    /// Advance the cloud one tick (ordering: ticks before wakes at the
    /// same instant so agents see fresh state).
    Tick,
    /// Wake agent `{1}` with token `{2}`.
    Wake(usize, u64),
}

/// The simulation engine.
pub struct Engine {
    cloud: Cloud,
    agents: Vec<Box<dyn Agent>>,
    /// Min-heap on `(time, item, seq)`: at equal times ticks sort before
    /// wakes, so agents always observe fresh state.
    queue: BinaryHeap<Reverse<(SimTime, QueueItem, u64)>>,
    seq: u64,
    started: bool,
    /// Reusable event-drain buffer: ping-pongs with the cloud's internal
    /// buffer via [`Cloud::drain_events_into`], so the steady-state
    /// drive loop allocates nothing per tick even under event churn.
    events_buf: Vec<CloudEvent>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.cloud.now())
            .field("agents", &self.agents.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Engine {
    /// Creates an engine over a fresh cloud.
    pub fn new(catalog: Catalog, config: SimConfig) -> Self {
        Engine::with_cloud(Cloud::new(catalog, config))
    }

    /// Creates an engine over an existing (possibly warmed-up) cloud.
    pub fn with_cloud(cloud: Cloud) -> Self {
        Engine {
            cloud,
            agents: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            started: false,
            events_buf: Vec::new(),
        }
    }

    /// Adds an agent; returns its index.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> usize {
        self.agents.push(agent);
        self.agents.len() - 1
    }

    /// Immutable access to the cloud.
    pub fn cloud(&self) -> &Cloud {
        &self.cloud
    }

    /// Mutable access to the cloud (setup: watching markets, warmup).
    pub fn cloud_mut(&mut self) -> &mut Cloud {
        &mut self.cloud
    }

    /// Consumes the engine and returns the cloud and agents.
    pub fn into_parts(self) -> (Cloud, Vec<Box<dyn Agent>>) {
        (self.cloud, self.agents)
    }

    fn push(&mut self, at: SimTime, item: QueueItem) {
        self.seq += 1;
        self.queue.push(Reverse((at, item, self.seq)));
    }

    fn drain_wakes(&mut self, pending: Vec<(SimTime, usize, u64)>) {
        for (at, agent, token) in pending {
            self.push(at, QueueItem::Wake(agent, token));
        }
    }

    /// Runs the simulation until `end` (inclusive of the tick landing on
    /// it). May be called repeatedly to extend a run.
    pub fn run_until(&mut self, end: SimTime) {
        let tick = self.cloud.config().tick;
        let mut wakes: Vec<(SimTime, usize, u64)> = Vec::new();

        if !self.started {
            self.started = true;
            for i in 0..self.agents.len() {
                let now = self.cloud.now();
                let mut ctx = Ctx {
                    cloud: &mut self.cloud,
                    agent_idx: i,
                    now,
                    wakes: &mut wakes,
                };
                self.agents[i].on_start(&mut ctx);
            }
            let pending = std::mem::take(&mut wakes);
            self.drain_wakes(pending);
            self.push(self.cloud.now() + tick, QueueItem::Tick);
        }

        while let Some(next_at) = self.queue.peek().map(|Reverse((at, _, _))| *at) {
            if next_at > end {
                break;
            }
            let Reverse((at, item, _)) = self.queue.pop().expect("peeked above");
            match item {
                QueueItem::Tick => {
                    self.cloud.tick();
                    debug_assert_eq!(self.cloud.now(), at);
                    // Swap the events out through the reusable buffer
                    // (taken while agents hold the cloud mutably).
                    let events = {
                        let mut buf = std::mem::take(&mut self.events_buf);
                        self.cloud.drain_events_into(&mut buf);
                        buf
                    };
                    for event in &events {
                        for i in 0..self.agents.len() {
                            let mut ctx = Ctx {
                                cloud: &mut self.cloud,
                                agent_idx: i,
                                now: at,
                                wakes: &mut wakes,
                            };
                            self.agents[i].on_cloud_event(&mut ctx, event);
                        }
                    }
                    self.events_buf = events;
                    let pending = std::mem::take(&mut wakes);
                    self.drain_wakes(pending);
                    self.push(at + tick, QueueItem::Tick);
                }
                QueueItem::Wake(agent, token) => {
                    let mut ctx = Ctx {
                        cloud: &mut self.cloud,
                        agent_idx: agent,
                        now: at,
                        wakes: &mut wakes,
                    };
                    self.agents[agent].on_wake(&mut ctx, token);
                    let pending = std::mem::take(&mut wakes);
                    self.drain_wakes(pending);
                }
            }
        }

        for i in 0..self.agents.len() {
            let now = self.cloud.now();
            let mut ctx = Ctx {
                cloud: &mut self.cloud,
                agent_idx: i,
                now,
                wakes: &mut wakes,
            };
            self.agents[i].on_finish(&mut ctx);
        }
        wakes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DemandProfile;

    struct Recorder {
        wakes: Vec<(SimTime, u64)>,
        events: usize,
        started: bool,
        finished: bool,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder {
                wakes: Vec::new(),
                events: 0,
                started: false,
                finished: false,
            }
        }
    }

    impl Agent for Recorder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.started = true;
            ctx.wake_in(SimDuration::from_secs(450), 7);
            ctx.wake_at(SimTime::from_secs(1000), 8);
        }
        fn on_wake(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.wakes.push((ctx.now(), token));
        }
        fn on_cloud_event(&mut self, _ctx: &mut Ctx<'_>, _event: &CloudEvent) {
            self.events += 1;
        }
        fn on_finish(&mut self, _ctx: &mut Ctx<'_>) {
            self.finished = true;
        }
    }

    fn quiet_config(seed: u64) -> SimConfig {
        let mut config = SimConfig::paper(seed);
        config.demand = DemandProfile::quiet();
        config
    }

    #[test]
    fn wakes_fire_in_order_at_requested_times() {
        let mut engine = Engine::new(Catalog::testbed(), quiet_config(1));
        engine.add_agent(Box::new(Recorder::new()));
        engine.run_until(SimTime::from_secs(2000));
        let (_, agents) = engine.into_parts();
        let rec = agents.into_iter().next().unwrap();
        // Can't downcast Box<dyn Agent> without Any; test via a second
        // engine with direct inspection instead.
        drop(rec);
    }

    // A variant storing observations in a shared cell so we can inspect.
    use std::cell::RefCell;
    use std::rc::Rc;

    struct SharedRecorder(Rc<RefCell<Recorder>>);

    impl Agent for SharedRecorder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.0.borrow_mut().on_start(ctx);
        }
        fn on_wake(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.0.borrow_mut().on_wake(ctx, token);
        }
        fn on_cloud_event(&mut self, ctx: &mut Ctx<'_>, event: &CloudEvent) {
            self.0.borrow_mut().on_cloud_event(ctx, event);
        }
        fn on_finish(&mut self, ctx: &mut Ctx<'_>) {
            self.0.borrow_mut().on_finish(ctx);
        }
    }

    #[test]
    fn lifecycle_hooks_and_wake_times() {
        let shared = Rc::new(RefCell::new(Recorder::new()));
        let mut engine = Engine::new(Catalog::testbed(), quiet_config(2));
        engine.add_agent(Box::new(SharedRecorder(Rc::clone(&shared))));
        engine.run_until(SimTime::from_secs(2000));
        let rec = shared.borrow();
        assert!(rec.started);
        assert!(rec.finished);
        assert_eq!(
            rec.wakes,
            vec![(SimTime::from_secs(450), 7), (SimTime::from_secs(1000), 8)]
        );
    }

    #[test]
    fn run_until_can_be_extended() {
        let shared = Rc::new(RefCell::new(Recorder::new()));
        let mut engine = Engine::new(Catalog::testbed(), quiet_config(3));
        engine.add_agent(Box::new(SharedRecorder(Rc::clone(&shared))));
        engine.run_until(SimTime::from_secs(500));
        assert_eq!(shared.borrow().wakes.len(), 1);
        engine.run_until(SimTime::from_secs(1500));
        assert_eq!(shared.borrow().wakes.len(), 2);
    }

    #[test]
    fn ticks_advance_cloud_during_run() {
        let mut engine = Engine::new(Catalog::testbed(), quiet_config(4));
        engine.run_until(SimTime::from_secs(3000));
        assert_eq!(engine.cloud().now(), SimTime::from_secs(3000));
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut config = SimConfig::paper(seed);
            config.record_all_prices = true;
            let mut engine = Engine::new(Catalog::testbed(), config);
            engine.run_until(SimTime::from_secs(50 * 300));
            let cloud = engine.into_parts().0;
            let m = cloud.catalog().markets()[0];
            cloud.trace().history(m).to_vec()
        };
        assert_eq!(run(99), run(99));
    }
}
