//! Identifiers for the entities in the simulated cloud.
//!
//! The identifier vocabulary mirrors EC2's: a [`Region`] contains
//! [`Az`]s (availability zones); an [`InstanceType`] is a [`Family`]
//! plus a [`Size`]; a *spot market* ([`MarketId`]) is the combination of
//! an availability zone, an instance type, and a [`Platform`] (product
//! description). Capacity is pooled per `(Az, Family)` — a [`PoolId`] —
//! following the shared-pool model of the paper's Figure 2.2.
//!
//! # Examples
//!
//! ```
//! use cloud_sim::ids::{InstanceType, Region};
//!
//! let ty: InstanceType = "c3.2xlarge".parse()?;
//! assert_eq!(ty.family().name(), "c3");
//! assert_eq!(ty.units(), 8);
//! let region: Region = "us-east-1".parse()?;
//! assert_eq!(region.name(), "us-east-1");
//! # Ok::<(), cloud_sim::ids::ParseIdError>(())
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a region, size, or instance type fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIdError {
    kind: &'static str,
    input: String,
}

impl ParseIdError {
    fn new(kind: &'static str, input: &str) -> Self {
        ParseIdError {
            kind,
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} `{}`", self.kind, self.input)
    }
}

impl std::error::Error for ParseIdError {}

/// A geographical region of the cloud.
///
/// The nine regions match EC2's footprint at the time of the SpotLight
/// study (Chapter 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// N. Virginia — EC2's largest and best-provisioned region.
    UsEast1,
    /// N. California.
    UsWest1,
    /// Oregon.
    UsWest2,
    /// Ireland.
    EuWest1,
    /// Frankfurt.
    EuCentral1,
    /// Tokyo.
    ApNortheast1,
    /// Singapore — under-provisioned in the paper's data.
    ApSoutheast1,
    /// Sydney — under-provisioned in the paper's data.
    ApSoutheast2,
    /// São Paulo — the most under-provisioned region in the paper's data.
    SaEast1,
}

impl Region {
    /// All nine regions, in canonical order.
    pub const ALL: [Region; 9] = [
        Region::UsEast1,
        Region::UsWest1,
        Region::UsWest2,
        Region::EuWest1,
        Region::EuCentral1,
        Region::ApNortheast1,
        Region::ApSoutheast1,
        Region::ApSoutheast2,
        Region::SaEast1,
    ];

    /// The canonical lowercase region name, e.g. `"us-east-1"`.
    pub const fn name(self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsWest1 => "us-west-1",
            Region::UsWest2 => "us-west-2",
            Region::EuWest1 => "eu-west-1",
            Region::EuCentral1 => "eu-central-1",
            Region::ApNortheast1 => "ap-northeast-1",
            Region::ApSoutheast1 => "ap-southeast-1",
            Region::ApSoutheast2 => "ap-southeast-2",
            Region::SaEast1 => "sa-east-1",
        }
    }

    /// A dense index in `0..9`, usable for array-backed per-region state.
    pub const fn index(self) -> usize {
        match self {
            Region::UsEast1 => 0,
            Region::UsWest1 => 1,
            Region::UsWest2 => 2,
            Region::EuWest1 => 3,
            Region::EuCentral1 => 4,
            Region::ApNortheast1 => 5,
            Region::ApSoutheast1 => 6,
            Region::ApSoutheast2 => 7,
            Region::SaEast1 => 8,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Region {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Region::ALL
            .into_iter()
            .find(|r| r.name() == s)
            .ok_or_else(|| ParseIdError::new("region", s))
    }
}

/// An availability zone: a region plus a zone letter (`a`, `b`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Az {
    region: Region,
    index: u8,
}

impl Az {
    /// Creates the `index`-th zone of `region` (0 = `a`, 1 = `b`, …).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 26` (zone letters run `a..=z`).
    pub fn new(region: Region, index: u8) -> Self {
        assert!(index < 26, "availability zone index out of range: {index}");
        Az { region, index }
    }

    /// The region this zone belongs to.
    pub const fn region(self) -> Region {
        self.region
    }

    /// The zero-based zone index within its region.
    pub const fn zone_index(self) -> u8 {
        self.index
    }

    /// The zone letter, `'a'` for index 0 and so on.
    pub const fn letter(self) -> char {
        (b'a' + self.index) as char
    }
}

impl fmt::Display for Az {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.region.name(), self.letter())
    }
}

impl FromStr for Az {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseIdError::new("availability zone", s);
        if s.len() < 2 {
            return Err(err());
        }
        let (region_part, letter) = s.split_at(s.len() - 1);
        let region: Region = region_part.parse().map_err(|_| err())?;
        let letter = letter.chars().next().ok_or_else(err)?;
        if !letter.is_ascii_lowercase() {
            return Err(err());
        }
        Ok(Az::new(region, letter as u8 - b'a'))
    }
}

/// An instance family: types sharing a hardware platform and a name
/// prefix (`m3.*`, `c4.*`, …).
///
/// The paper defines a family as "server types with the same prefix"
/// (§3.2.1) and assumes members of a family share one physical pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Burstable previous generation.
    T1,
    /// Burstable general purpose.
    T2,
    /// General purpose, first generation.
    M1,
    /// Memory optimized, previous generation.
    M2,
    /// General purpose, third generation.
    M3,
    /// General purpose, fourth generation.
    M4,
    /// Compute optimized, first generation.
    C1,
    /// Compute optimized, third generation.
    C3,
    /// Compute optimized, fourth generation.
    C4,
    /// Memory optimized, third generation.
    R3,
    /// Dense storage.
    D2,
    /// GPU.
    G2,
    /// Storage optimized (IOPS).
    I2,
    /// High storage density, previous generation.
    Hs1,
    /// High I/O, previous generation.
    Hi1,
    /// Cluster compute.
    Cc2,
    /// High-memory cluster.
    Cr1,
    /// Cluster GPU.
    Cg1,
}

impl Family {
    /// All families, in canonical order.
    pub const ALL: [Family; 18] = [
        Family::T1,
        Family::T2,
        Family::M1,
        Family::M2,
        Family::M3,
        Family::M4,
        Family::C1,
        Family::C3,
        Family::C4,
        Family::R3,
        Family::D2,
        Family::G2,
        Family::I2,
        Family::Hs1,
        Family::Hi1,
        Family::Cc2,
        Family::Cr1,
        Family::Cg1,
    ];

    /// The lowercase family prefix, e.g. `"c3"`.
    pub const fn name(self) -> &'static str {
        match self {
            Family::T1 => "t1",
            Family::T2 => "t2",
            Family::M1 => "m1",
            Family::M2 => "m2",
            Family::M3 => "m3",
            Family::M4 => "m4",
            Family::C1 => "c1",
            Family::C3 => "c3",
            Family::C4 => "c4",
            Family::R3 => "r3",
            Family::D2 => "d2",
            Family::G2 => "g2",
            Family::I2 => "i2",
            Family::Hs1 => "hs1",
            Family::Hi1 => "hi1",
            Family::Cc2 => "cc2",
            Family::Cr1 => "cr1",
            Family::Cg1 => "cg1",
        }
    }

    /// A dense index usable for array-backed per-family state.
    pub fn index(self) -> usize {
        Family::ALL
            .iter()
            .position(|f| *f == self)
            .expect("family in ALL")
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Family {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Family::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| ParseIdError::new("instance family", s))
    }
}

/// An instance size within a family.
///
/// Sizes within a family differ by powers of two in capacity (§3.2.1),
/// which is what makes bin-packing them onto one physical pool simple and
/// what [`Size::units`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Size {
    /// `.micro`
    Micro,
    /// `.small`
    Small,
    /// `.medium`
    Medium,
    /// `.large`
    Large,
    /// `.xlarge`
    Xlarge,
    /// `.2xlarge`
    X2,
    /// `.4xlarge`
    X4,
    /// `.8xlarge`
    X8,
    /// `.10xlarge`
    X10,
}

impl Size {
    /// The size suffix, e.g. `"2xlarge"`.
    pub const fn suffix(self) -> &'static str {
        match self {
            Size::Micro => "micro",
            Size::Small => "small",
            Size::Medium => "medium",
            Size::Large => "large",
            Size::Xlarge => "xlarge",
            Size::X2 => "2xlarge",
            Size::X4 => "4xlarge",
            Size::X8 => "8xlarge",
            Size::X10 => "10xlarge",
        }
    }

    /// Normalized capacity units consumed by one instance of this size.
    ///
    /// One unit is roughly one "small" worth of hardware; sizes double:
    /// `large` = 2, `xlarge` = 4, …, `8xlarge` = 32.
    pub const fn units(self) -> u32 {
        match self {
            Size::Micro => 1,
            Size::Small => 1,
            Size::Medium => 1,
            Size::Large => 2,
            Size::Xlarge => 4,
            Size::X2 => 8,
            Size::X4 => 16,
            Size::X8 => 32,
            Size::X10 => 40,
        }
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

impl FromStr for Size {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        const ALL: [Size; 9] = [
            Size::Micro,
            Size::Small,
            Size::Medium,
            Size::Large,
            Size::Xlarge,
            Size::X2,
            Size::X4,
            Size::X8,
            Size::X10,
        ];
        ALL.into_iter()
            .find(|z| z.suffix() == s)
            .ok_or_else(|| ParseIdError::new("instance size", s))
    }
}

/// An instance type: a family plus a size, e.g. `c3.2xlarge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceType {
    family: Family,
    size: Size,
}

impl InstanceType {
    /// Creates an instance type from its family and size.
    pub const fn new(family: Family, size: Size) -> Self {
        InstanceType { family, size }
    }

    /// The family prefix of the type.
    pub const fn family(self) -> Family {
        self.family
    }

    /// The size of the type.
    pub const fn size(self) -> Size {
        self.size
    }

    /// Normalized capacity units one instance of this type occupies in
    /// its family pool.
    pub const fn units(self) -> u32 {
        self.size.units()
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.family, self.size)
    }
}

impl FromStr for InstanceType {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (fam, size) = s
            .split_once('.')
            .ok_or_else(|| ParseIdError::new("instance type", s))?;
        Ok(InstanceType::new(
            fam.parse()
                .map_err(|_| ParseIdError::new("instance type", s))?,
            size.parse()
                .map_err(|_| ParseIdError::new("instance type", s))?,
        ))
    }
}

/// A product platform / product description, e.g. `Linux/UNIX`.
///
/// Each platform of each instance type in each availability zone is a
/// distinct spot market with its own price (Chapter 2), but all platforms
/// share the same physical pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// `Linux/UNIX` (EC2-Classic).
    LinuxUnix,
    /// `Linux/UNIX (Amazon VPC)`.
    LinuxUnixVpc,
    /// `Windows`.
    Windows,
    /// `SUSE Linux`.
    SuseLinux,
}

impl Platform {
    /// All platforms, in canonical order.
    pub const ALL: [Platform; 4] = [
        Platform::LinuxUnix,
        Platform::LinuxUnixVpc,
        Platform::Windows,
        Platform::SuseLinux,
    ];

    /// The product-description string EC2 uses for this platform.
    pub const fn description(self) -> &'static str {
        match self {
            Platform::LinuxUnix => "Linux/UNIX",
            Platform::LinuxUnixVpc => "Linux/UNIX (Amazon VPC)",
            Platform::Windows => "Windows",
            Platform::SuseLinux => "SUSE Linux",
        }
    }

    /// A dense index usable for array-backed per-platform state.
    pub fn index(self) -> usize {
        Platform::ALL
            .iter()
            .position(|p| *p == self)
            .expect("platform in ALL")
    }

    /// The multiplicative markup over the base (Linux/UNIX) on-demand
    /// price for this platform's license/overhead.
    pub const fn price_markup(self) -> f64 {
        match self {
            Platform::LinuxUnix => 1.0,
            Platform::LinuxUnixVpc => 1.0,
            Platform::Windows => 1.35,
            Platform::SuseLinux => 1.10,
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.description())
    }
}

/// A capacity pool identifier: one physical pool per family per zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoolId {
    /// The availability zone hosting the pool.
    pub az: Az,
    /// The hardware family the pool serves.
    pub family: Family,
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.az, self.family)
    }
}

/// A market identifier: one spot (and on-demand) market per availability
/// zone × instance type × platform, the unit SpotLight monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MarketId {
    /// The availability zone.
    pub az: Az,
    /// The instance type.
    pub instance_type: InstanceType,
    /// The product platform.
    pub platform: Platform,
}

impl MarketId {
    /// The capacity pool backing this market.
    pub const fn pool(self) -> PoolId {
        PoolId {
            az: self.az,
            family: self.instance_type.family(),
        }
    }

    /// The region containing this market.
    pub const fn region(self) -> Region {
        self.az.region()
    }

    /// The market for the same type and platform in a different zone.
    pub const fn with_az(self, az: Az) -> MarketId {
        MarketId { az, ..self }
    }

    /// The market for a different type in the same zone and platform.
    pub const fn with_type(self, instance_type: InstanceType) -> MarketId {
        MarketId {
            instance_type,
            ..self
        }
    }
}

impl fmt::Display for MarketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.az, self.instance_type, self.platform)
    }
}

/// Unique identifier of a launched instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i-{:08x}", self.0)
    }
}

/// Unique identifier of a spot instance request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpotRequestId(pub u64);

impl fmt::Display for SpotRequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sir-{:08x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_roundtrip() {
        for r in Region::ALL {
            assert_eq!(r.name().parse::<Region>().unwrap(), r);
        }
        assert!("mars-north-1".parse::<Region>().is_err());
    }

    #[test]
    fn region_indices_dense() {
        for (i, r) in Region::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn az_display_and_parse() {
        let az = Az::new(Region::UsEast1, 3);
        assert_eq!(az.to_string(), "us-east-1d");
        assert_eq!("us-east-1d".parse::<Az>().unwrap(), az);
        assert!("us-east-1".parse::<Az>().is_err());
        assert!("us-east-1D".parse::<Az>().is_err());
    }

    #[test]
    fn instance_type_roundtrip() {
        let ty: InstanceType = "c3.2xlarge".parse().unwrap();
        assert_eq!(ty.family(), Family::C3);
        assert_eq!(ty.size(), Size::X2);
        assert_eq!(ty.to_string(), "c3.2xlarge");
        assert!("c3".parse::<InstanceType>().is_err());
        assert!("zz.9xlarge".parse::<InstanceType>().is_err());
    }

    #[test]
    fn sizes_double() {
        assert_eq!(Size::Large.units() * 2, Size::Xlarge.units());
        assert_eq!(Size::Xlarge.units() * 2, Size::X2.units());
        assert_eq!(Size::X2.units() * 2, Size::X4.units());
        assert_eq!(Size::X4.units() * 2, Size::X8.units());
    }

    #[test]
    fn market_id_relations() {
        let az = Az::new(Region::UsEast1, 4);
        let m = MarketId {
            az,
            instance_type: "d2.2xlarge".parse().unwrap(),
            platform: Platform::Windows,
        };
        assert_eq!(m.pool().family, Family::D2);
        assert_eq!(m.region(), Region::UsEast1);
        let other_az = Az::new(Region::UsEast1, 0);
        assert_eq!(m.with_az(other_az).az, other_az);
        assert_eq!(m.to_string(), "us-east-1e/d2.2xlarge/Windows");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn az_index_out_of_range_panics() {
        let _ = Az::new(Region::UsEast1, 26);
    }
}
