//! # cloud-sim
//!
//! A discrete-event simulator of an EC2-like IaaS cloud, built as the
//! substrate for the SpotLight reproduction (Ouyang, *SpotLight: An
//! Information Service for the Cloud*, UMass Amherst, 2016).
//!
//! The simulator models exactly the mechanisms the paper's measurements
//! depend on:
//!
//! * **Shared capacity pools** ([`pool`]) — reserved, on-demand, and
//!   spot servers carved from one physical pool per family × zone
//!   (the paper's Figure 2.2), with the §2.2 bounds enforced.
//! * **Spot auctions** ([`market`]) — uniform-price clearing where the
//!   lowest winning bid sets the price, a reserve floor, the 10×
//!   on-demand bid cap, and the 20–40 s price propagation delay.
//! * **Instance lifecycles** ([`lifecycle`]) — the state machines of
//!   Figures 3.1 and 3.2, with timestamped transition logs.
//! * **Generative demand** ([`demand`]) — seasonal + mean-reverting
//!   background demand with heavy-tailed surge events, correlated within
//!   families and across zones, calibrated per region.
//! * **An EC2-style API** ([`api`]) — `run_od_instance`,
//!   `request_spot_instance`, …, with per-region rate limits and service
//!   limits, returning EC2-style error codes such as
//!   `InsufficientInstanceCapacity`.
//! * **Billing** ([`billing`]) — one-hour minimum charges, free partial
//!   hours on platform revocation.
//! * **A deterministic engine** ([`engine`]) — seeded, replayable runs
//!   hosting agents (SpotLight itself, case-study workloads).
//!
//! ## Quick start
//!
//! ```
//! use cloud_sim::catalog::Catalog;
//! use cloud_sim::config::SimConfig;
//! use cloud_sim::cloud::Cloud;
//!
//! // A small testbed cloud, deterministic under seed 7.
//! let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(7));
//! cloud.warmup(20);
//!
//! // Probe a market the way SpotLight does.
//! let market = cloud.catalog().markets()[0];
//! match cloud.run_od_instance(market) {
//!     Ok(id) => {
//!         let charged = cloud.terminate_od_instance(id)?;
//!         println!("on-demand obtainable; probe cost {charged}");
//!     }
//!     Err(err) => println!("rejected: {}", err.error_code()),
//! }
//! # Ok::<(), cloud_sim::api::ApiError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod api;
pub mod billing;
pub mod catalog;
pub mod chaos;
pub mod cloud;
pub mod config;
pub mod demand;
pub mod engine;
pub mod ids;
pub mod lifecycle;
pub mod market;
pub mod pool;
pub mod price;
pub mod rng;
pub mod time;
pub mod trace;

pub use api::ApiError;
pub use catalog::Catalog;
pub use chaos::ChaosConfig;
pub use cloud::{Cloud, CloudEvent};
pub use config::SimConfig;
pub use engine::{Agent, Ctx, Engine};
pub use ids::{Az, Family, InstanceType, MarketId, Platform, PoolId, Region, Size};
pub use price::Price;
pub use time::{SimDuration, SimTime};
