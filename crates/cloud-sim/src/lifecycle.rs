//! Instance and spot-request lifecycle state machines.
//!
//! These are the state machines of the paper's Figures 3.1 (on-demand
//! instances) and 3.2 (spot instance requests). Every transition in the
//! simulator goes through [`OdState::can_transition_to`] /
//! [`SpotRequestState::can_transition_to`], and every state change is
//! recorded with its timestamp, exactly as SpotLight's prototype logged
//! "all states and status changes timestamps" (Chapter 4).
//!
//! Both machines can be exported as Graphviz DOT (`repro fig-3-1` /
//! `fig-3-2` regenerate the figures from this module).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// States of an on-demand instance (Figure 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OdState {
    /// Request submitted, not yet running.
    Pending,
    /// Request denied with `InsufficientInstanceCapacity` (terminal).
    Denied,
    /// Instance is running.
    Running,
    /// User requested termination; instance is shutting down.
    ShuttingDown,
    /// Instance terminated (terminal).
    Terminated,
}

impl OdState {
    /// All states, in diagram order.
    pub const ALL: [OdState; 5] = [
        OdState::Pending,
        OdState::Denied,
        OdState::Running,
        OdState::ShuttingDown,
        OdState::Terminated,
    ];

    /// The EC2 name of the state.
    pub const fn name(self) -> &'static str {
        match self {
            OdState::Pending => "pending",
            OdState::Denied => "denied",
            OdState::Running => "running",
            OdState::ShuttingDown => "shutting-down",
            OdState::Terminated => "terminated",
        }
    }

    /// Whether the state machine allows moving from `self` to `next`.
    pub fn can_transition_to(self, next: OdState) -> bool {
        use OdState::*;
        matches!(
            (self, next),
            (Pending, Running)
                | (Pending, Denied)
                | (Running, ShuttingDown)
                | (ShuttingDown, Terminated)
        )
    }

    /// True for states with no outgoing transitions.
    pub fn is_terminal(self) -> bool {
        matches!(self, OdState::Denied | OdState::Terminated)
    }

    /// The legal transitions of Figure 3.1, as `(from, to, label)` edges.
    pub fn edges() -> Vec<(OdState, OdState, &'static str)> {
        use OdState::*;
        vec![
            (Pending, Running, "accepted"),
            (Pending, Denied, "InsufficientInstanceCapacity"),
            (Running, ShuttingDown, "terminate"),
            (ShuttingDown, Terminated, "shutdown complete"),
        ]
    }

    /// Renders Figure 3.1 as Graphviz DOT.
    pub fn to_dot() -> String {
        render_dot(
            "od_instance",
            &OdState::ALL.map(|s| (s.name(), s.is_terminal())),
            &OdState::edges()
                .into_iter()
                .map(|(a, b, l)| (a.name(), b.name(), l))
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for OdState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// States of a spot instance request (Figure 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpotRequestState {
    /// Request submitted; parameters being evaluated.
    PendingEvaluation,
    /// Request malformed (terminal).
    BadParameters,
    /// Internal error (terminal).
    SystemError,
    /// Bid is below the current spot price; waiting.
    PriceTooLow,
    /// The market has no capacity for new spot instances; waiting.
    CapacityNotAvailable,
    /// Too many bids tie at the spot price for the remaining capacity;
    /// waiting.
    CapacityOversubscribed,
    /// Accepted; waiting for an instance slot.
    PendingFulfillment,
    /// Cancelled before an instance was launched (terminal).
    CanceledBeforeFulfillment,
    /// An instance was launched for this request.
    Fulfilled,
    /// Request cancelled while its instance keeps running (terminal).
    RequestCanceledAndInstanceRunning,
    /// The spot price rose above the bid; two-minute warning under way.
    MarkedForTermination,
    /// Instance reclaimed because the spot price exceeded the bid
    /// (terminal).
    InstanceTerminatedByPrice,
    /// Instance terminated by its owner (terminal).
    InstanceTerminatedByUser,
}

impl SpotRequestState {
    /// All states, in diagram order.
    pub const ALL: [SpotRequestState; 13] = [
        SpotRequestState::PendingEvaluation,
        SpotRequestState::BadParameters,
        SpotRequestState::SystemError,
        SpotRequestState::PriceTooLow,
        SpotRequestState::CapacityNotAvailable,
        SpotRequestState::CapacityOversubscribed,
        SpotRequestState::PendingFulfillment,
        SpotRequestState::CanceledBeforeFulfillment,
        SpotRequestState::Fulfilled,
        SpotRequestState::RequestCanceledAndInstanceRunning,
        SpotRequestState::MarkedForTermination,
        SpotRequestState::InstanceTerminatedByPrice,
        SpotRequestState::InstanceTerminatedByUser,
    ];

    /// The EC2 status string of the state.
    pub const fn name(self) -> &'static str {
        use SpotRequestState::*;
        match self {
            PendingEvaluation => "pending-evaluation",
            BadParameters => "bad-parameters",
            SystemError => "system-error",
            PriceTooLow => "price-too-low",
            CapacityNotAvailable => "capacity-not-available",
            CapacityOversubscribed => "capacity-oversubscribed",
            PendingFulfillment => "pending-fulfillment",
            CanceledBeforeFulfillment => "canceled-before-fulfillment",
            Fulfilled => "fulfilled",
            RequestCanceledAndInstanceRunning => "request-canceled-and-instance-running",
            MarkedForTermination => "marked-for-termination",
            InstanceTerminatedByPrice => "instance-terminated-by-price",
            InstanceTerminatedByUser => "instance-terminated-by-user",
        }
    }

    /// Whether the request is still waiting in the queue (may later be
    /// fulfilled or cancelled).
    pub fn is_held(self) -> bool {
        use SpotRequestState::*;
        matches!(
            self,
            PriceTooLow | CapacityNotAvailable | CapacityOversubscribed | PendingFulfillment
        )
    }

    /// True for states with no outgoing transitions.
    pub fn is_terminal(self) -> bool {
        use SpotRequestState::*;
        matches!(
            self,
            BadParameters
                | SystemError
                | CanceledBeforeFulfillment
                | RequestCanceledAndInstanceRunning
                | InstanceTerminatedByPrice
                | InstanceTerminatedByUser
        )
    }

    /// Whether an instance is currently running for this request.
    pub fn instance_running(self) -> bool {
        matches!(
            self,
            SpotRequestState::Fulfilled | SpotRequestState::MarkedForTermination
        )
    }

    /// Whether the state machine allows moving from `self` to `next`.
    pub fn can_transition_to(self, next: SpotRequestState) -> bool {
        use SpotRequestState::*;
        let held_outcomes = |n: SpotRequestState| {
            matches!(
                n,
                PriceTooLow
                    | CapacityNotAvailable
                    | CapacityOversubscribed
                    | PendingFulfillment
                    | CanceledBeforeFulfillment
                    | Fulfilled
            )
        };
        match self {
            PendingEvaluation => held_outcomes(next) || matches!(next, BadParameters | SystemError),
            // Held requests are re-evaluated as conditions change and can
            // move between the holding statuses, be cancelled, or be
            // fulfilled.
            PriceTooLow | CapacityNotAvailable | CapacityOversubscribed | PendingFulfillment => {
                held_outcomes(next)
            }
            Fulfilled => matches!(
                next,
                MarkedForTermination | InstanceTerminatedByUser | RequestCanceledAndInstanceRunning
            ),
            MarkedForTermination => {
                matches!(next, InstanceTerminatedByPrice | InstanceTerminatedByUser)
            }
            BadParameters
            | SystemError
            | CanceledBeforeFulfillment
            | RequestCanceledAndInstanceRunning
            | InstanceTerminatedByPrice
            | InstanceTerminatedByUser => false,
        }
    }

    /// The legal transitions of Figure 3.2, as `(from, to, label)` edges.
    pub fn edges() -> Vec<(SpotRequestState, SpotRequestState, &'static str)> {
        use SpotRequestState::*;
        let mut edges = vec![
            (PendingEvaluation, BadParameters, "invalid"),
            (PendingEvaluation, SystemError, "error"),
            (PendingEvaluation, PriceTooLow, "bid < price"),
            (PendingEvaluation, CapacityNotAvailable, "no capacity"),
            (PendingEvaluation, CapacityOversubscribed, "oversubscribed"),
            (PendingEvaluation, PendingFulfillment, "accepted"),
            (PendingFulfillment, Fulfilled, "launched"),
            (PendingFulfillment, CanceledBeforeFulfillment, "cancelled"),
            (Fulfilled, MarkedForTermination, "price > bid"),
            (Fulfilled, InstanceTerminatedByUser, "terminate"),
            (
                Fulfilled,
                RequestCanceledAndInstanceRunning,
                "cancel request",
            ),
            (MarkedForTermination, InstanceTerminatedByPrice, "revoked"),
            (MarkedForTermination, InstanceTerminatedByUser, "terminate"),
        ];
        for held in [PriceTooLow, CapacityNotAvailable, CapacityOversubscribed] {
            edges.push((held, PendingFulfillment, "re-evaluated"));
            edges.push((held, CanceledBeforeFulfillment, "cancelled"));
        }
        edges
    }

    /// Renders Figure 3.2 as Graphviz DOT.
    pub fn to_dot() -> String {
        render_dot(
            "spot_request",
            &SpotRequestState::ALL.map(|s| (s.name(), s.is_terminal())),
            &SpotRequestState::edges()
                .into_iter()
                .map(|(a, b, l)| (a.name(), b.name(), l))
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for SpotRequestState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn render_dot(name: &str, nodes: &[(&str, bool)], edges: &[(&str, &str, &str)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for (node, terminal) in nodes {
        let shape = if *terminal { "doublecircle" } else { "box" };
        let _ = writeln!(out, "  \"{node}\" [shape={shape}];");
    }
    for (from, to, label) in edges {
        let _ = writeln!(out, "  \"{from}\" -> \"{to}\" [label=\"{label}\"];");
    }
    out.push_str("}\n");
    out
}

/// A timestamped record of one state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition<S> {
    /// When the transition happened.
    pub at: SimTime,
    /// The state entered.
    pub to: S,
}

/// A state variable that enforces machine legality and logs transitions.
///
/// # Examples
///
/// ```
/// use cloud_sim::lifecycle::{OdState, Tracked};
/// use cloud_sim::time::SimTime;
///
/// let mut st = Tracked::new(OdState::Pending, SimTime::ZERO);
/// st.transition(OdState::Running, SimTime::from_secs(30)).unwrap();
/// assert_eq!(st.current(), OdState::Running);
/// assert_eq!(st.history().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tracked<S> {
    current: S,
    history: Vec<Transition<S>>,
}

/// Error returned on an illegal state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalTransition {
    from: String,
    to: String,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal transition from `{}` to `{}`",
            self.from, self.to
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// A state type with a legality relation; implemented by the two machines
/// in this module.
pub trait StateMachine: Copy + fmt::Display {
    /// Whether the machine allows `self -> next`.
    fn allows(self, next: Self) -> bool;
}

impl StateMachine for OdState {
    fn allows(self, next: Self) -> bool {
        self.can_transition_to(next)
    }
}

impl StateMachine for SpotRequestState {
    fn allows(self, next: Self) -> bool {
        self.can_transition_to(next)
    }
}

impl<S: StateMachine> Tracked<S> {
    /// Starts a tracked state variable in `initial` at time `at`.
    pub fn new(initial: S, at: SimTime) -> Self {
        Tracked {
            current: initial,
            history: vec![Transition { at, to: initial }],
        }
    }

    /// The current state.
    pub fn current(&self) -> S {
        self.current
    }

    /// Every state entered, with timestamps, oldest first.
    pub fn history(&self) -> &[Transition<S>] {
        &self.history
    }

    /// When the current state was entered.
    pub fn since(&self) -> SimTime {
        self.history.last().expect("history never empty").at
    }

    /// Moves to `next` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`IllegalTransition`] if the machine forbids the move.
    pub fn transition(&mut self, next: S, at: SimTime) -> Result<(), IllegalTransition> {
        if !self.current.allows(next) {
            return Err(IllegalTransition {
                from: self.current.to_string(),
                to: next.to_string(),
            });
        }
        self.current = next;
        self.history.push(Transition { at, to: next });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn od_happy_path() {
        let mut st = Tracked::new(OdState::Pending, SimTime::ZERO);
        st.transition(OdState::Running, SimTime::from_secs(10))
            .unwrap();
        st.transition(OdState::ShuttingDown, SimTime::from_secs(20))
            .unwrap();
        st.transition(OdState::Terminated, SimTime::from_secs(30))
            .unwrap();
        assert!(st.current().is_terminal());
        assert_eq!(st.history().len(), 4);
    }

    #[test]
    fn od_denied_is_terminal() {
        let mut st = Tracked::new(OdState::Pending, SimTime::ZERO);
        st.transition(OdState::Denied, SimTime::from_secs(1))
            .unwrap();
        assert!(st
            .transition(OdState::Running, SimTime::from_secs(2))
            .is_err());
    }

    #[test]
    fn od_illegal_transitions_rejected() {
        assert!(!OdState::Pending.can_transition_to(OdState::Terminated));
        assert!(!OdState::Running.can_transition_to(OdState::Pending));
        assert!(!OdState::Terminated.can_transition_to(OdState::Running));
    }

    #[test]
    fn spot_revocation_path() {
        use SpotRequestState::*;
        let mut st = Tracked::new(PendingEvaluation, SimTime::ZERO);
        for (s, t) in [
            (PendingFulfillment, 5),
            (Fulfilled, 10),
            (MarkedForTermination, 100),
            (InstanceTerminatedByPrice, 220),
        ] {
            st.transition(s, SimTime::from_secs(t)).unwrap();
        }
        assert!(st.current().is_terminal());
    }

    #[test]
    fn held_states_can_rotate() {
        use SpotRequestState::*;
        assert!(PriceTooLow.can_transition_to(CapacityNotAvailable));
        assert!(CapacityNotAvailable.can_transition_to(Fulfilled));
        assert!(CapacityOversubscribed.can_transition_to(PendingFulfillment));
        assert!(PriceTooLow.is_held());
        assert!(!Fulfilled.is_held());
    }

    #[test]
    fn all_edges_are_legal() {
        for (a, b, _) in OdState::edges() {
            assert!(a.can_transition_to(b), "{a} -> {b} should be legal");
        }
        for (a, b, _) in SpotRequestState::edges() {
            assert!(a.can_transition_to(b), "{a} -> {b} should be legal");
        }
    }

    #[test]
    fn terminal_states_have_no_outgoing_edges() {
        for s in SpotRequestState::ALL {
            if s.is_terminal() {
                for n in SpotRequestState::ALL {
                    assert!(!s.can_transition_to(n), "{s} is terminal but -> {n}");
                }
            }
        }
    }

    #[test]
    fn dot_render_contains_all_states() {
        let dot = SpotRequestState::to_dot();
        for s in SpotRequestState::ALL {
            assert!(dot.contains(s.name()), "missing {s} in DOT");
        }
        assert!(OdState::to_dot().contains("InsufficientInstanceCapacity"));
    }

    #[test]
    fn instance_running_matches_states() {
        assert!(SpotRequestState::Fulfilled.instance_running());
        assert!(SpotRequestState::MarkedForTermination.instance_running());
        assert!(!SpotRequestState::PriceTooLow.instance_running());
    }
}
