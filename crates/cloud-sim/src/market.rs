//! Spot-market clearing: the uniform-price auction where "the lowest
//! winning bid dictates the spot price" (§2.1.3).
//!
//! Each market holds a parametric bid book (mass of demanded instances at
//! each bid level, produced by [`crate::demand::MarketDemand`]) and a
//! supply share of its pool. Clearing walks the bid levels from the top:
//! the marginal (lowest) winning level sets the price. Prices are floored
//! at the lowest level (the market's reserve price — EC2 "has no
//! incentive to sell spot servers below the cost of the energy", §5.3)
//! and capped at the highest (the 10× on-demand bid cap).

use crate::price::Price;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The result of clearing one market.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Clearing {
    /// Index of the price level in the level grid.
    pub level_idx: usize,
    /// The clearing price as a multiple of the on-demand price.
    pub price_multiple: f64,
    /// Instances served (min of demand above the price and supply).
    pub served: f64,
    /// True when supply was zero or the top level alone exceeded it —
    /// the price pinned at the 10× cap.
    pub at_cap: bool,
    /// True when all demand fit — the price pinned at the reserve floor.
    pub at_floor: bool,
}

/// Clears a market: given `masses[i]` instances demanded at
/// `multiples[i]` × on-demand and `supply` instances available, returns
/// the uniform clearing price (lowest winning bid).
///
/// # Panics
///
/// Panics if the slices are empty or their lengths differ.
pub fn clear(multiples: &[f64], masses: &[f64], supply: f64) -> Clearing {
    assert!(!multiples.is_empty(), "need at least one bid level");
    assert_eq!(multiples.len(), masses.len(), "level arrays must align");
    // Summing through a fixed-width array gives the compiler a constant
    // trip count to unroll on the common 15-level grid; the summation
    // order (and therefore the result) is unchanged.
    let total: f64 = match <&[f64; crate::demand::FIXED_LEVELS]>::try_from(masses) {
        Ok(m) => m.iter().sum(),
        Err(_) => masses.iter().sum(),
    };
    clear_with_total(multiples, masses, total, supply)
}

/// [`clear`] with a precomputed `total = Σ masses` — the fused tick
/// path gets the sum for free from
/// [`crate::demand::MarketDemand::level_masses_and_total_into`] and
/// must not rescan the masses. `total` has to be the left-to-right sum
/// of `masses` bit for bit, or the floor decision (`total <= supply`)
/// could disagree with [`clear`] and break replay determinism.
///
/// # Panics
///
/// Panics if the slices are empty or their lengths differ.
pub fn clear_with_total(multiples: &[f64], masses: &[f64], total: f64, supply: f64) -> Clearing {
    assert!(!multiples.is_empty(), "need at least one bid level");
    assert_eq!(multiples.len(), masses.len(), "level arrays must align");
    let n = multiples.len();
    debug_assert_eq!(
        total,
        match <&[f64; crate::demand::FIXED_LEVELS]>::try_from(masses) {
            Ok(m) => m.iter().sum::<f64>(),
            Err(_) => masses.iter().sum(),
        },
        "total must be the left-to-right sum of masses"
    );

    if supply <= 0.0 {
        return Clearing {
            level_idx: n - 1,
            price_multiple: multiples[n - 1],
            served: 0.0,
            at_cap: true,
            at_floor: false,
        };
    }
    if total <= supply {
        // Everyone wins; the price rests at the reserve floor.
        return Clearing {
            level_idx: 0,
            price_multiple: multiples[0],
            served: total,
            at_cap: false,
            at_floor: true,
        };
    }

    // Fast path for the fixed 15-level grid: a branch-free marginal-
    // level walk with a constant trip count. Each step keeps the exact
    // subtraction chain of the early-exit loop below (`remaining`
    // freezes once the marginal level is found), so the selected level
    // — and every float — is bit-identical to the generic walk; the
    // selects compile to cmov/blend instead of a data-dependent branch
    // the predictor keeps missing near the clearing level.
    if let Ok(masses) = <&[f64; crate::demand::FIXED_LEVELS]>::try_from(masses) {
        let mut remaining = supply;
        let mut level = 0usize;
        let mut found = false;
        for i in (0..crate::demand::FIXED_LEVELS).rev() {
            let hit = !found && masses[i] >= remaining;
            level = if hit { i } else { level };
            found |= hit;
            remaining = if found {
                remaining
            } else {
                remaining - masses[i]
            };
        }
        debug_assert!(found, "total > supply guarantees a marginal level exists");
        return Clearing {
            level_idx: level,
            price_multiple: multiples[level],
            served: supply,
            // At the first iteration `remaining == supply`, so the
            // early-exit loop's cap test (`masses[i] > remaining &&
            // remaining == supply` at `i == n-1`) reduces to this.
            at_cap: level == n - 1 && masses[n - 1] > supply,
            at_floor: false,
        };
    }

    // Walk from the highest bid level down, filling supply.
    let mut remaining = supply;
    for i in (0..n).rev() {
        if masses[i] >= remaining {
            // Level i is the marginal (partially served) level: the
            // lowest winning bid sits here.
            return Clearing {
                level_idx: i,
                price_multiple: multiples[i],
                served: supply,
                at_cap: i == n - 1 && masses[i] > remaining && remaining == supply,
                at_floor: false,
            };
        }
        remaining -= masses[i];
    }
    unreachable!("total > supply guarantees a marginal level exists");
}

/// Dynamic state of one spot market.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketState {
    /// The on-demand price governing this market (fixed by the catalog).
    pub od_price: Price,
    /// This market's share of its pool's spot supply.
    pub weight: f64,
    /// Baseline total demand mass, in instances.
    pub base_mass: f64,
    /// Capacity units per instance of this market's type.
    pub units: u32,
    /// Current true clearing price.
    true_price: Price,
    /// Price visible through the API (lags the true price by the 20–40 s
    /// propagation delay of §5.1.2).
    published_price: Price,
    /// A price change waiting to be published.
    pending_publish: Option<(SimTime, Price)>,
    /// Details of the last clearing.
    pub last_clearing: Clearing,
    /// Instances served to the background market at the last clearing.
    pub served_instances: f64,
}

impl MarketState {
    /// Creates a market at its floor price.
    pub fn new(
        od_price: Price,
        weight: f64,
        base_mass: f64,
        units: u32,
        floor_multiple: f64,
    ) -> Self {
        let floor = od_price.scale(floor_multiple);
        MarketState {
            od_price,
            weight,
            base_mass,
            units,
            true_price: floor,
            published_price: floor,
            pending_publish: None,
            last_clearing: Clearing {
                level_idx: 0,
                price_multiple: floor_multiple,
                served: 0.0,
                at_cap: false,
                at_floor: true,
            },
            served_instances: 0.0,
        }
    }

    /// The true (instantaneous) clearing price.
    pub fn true_price(&self) -> Price {
        self.true_price
    }

    /// The price currently visible through the API.
    pub fn published_price(&self) -> Price {
        self.published_price
    }

    /// The market's reserve floor price.
    pub fn floor_price(&self, floor_multiple: f64) -> Price {
        self.od_price.scale(floor_multiple)
    }

    /// The spot/on-demand price ratio of the true price.
    pub fn price_ratio(&self) -> f64 {
        self.true_price.ratio_to(self.od_price)
    }

    /// Applies a new clearing result at time `now`; a change to the true
    /// price is queued for publication at `publish_at`. Returns `true`
    /// when the true price changed.
    pub fn apply_clearing(
        &mut self,
        clearing: Clearing,
        now: SimTime,
        publish_at: SimTime,
    ) -> bool {
        debug_assert!(publish_at >= now);
        self.last_clearing = clearing;
        self.served_instances = clearing.served;
        let new_price = self.od_price.scale(clearing.price_multiple);
        if new_price != self.true_price {
            self.true_price = new_price;
            self.pending_publish = Some((publish_at, new_price));
            true
        } else {
            false
        }
    }

    /// Publishes any pending price whose publication time has arrived.
    /// Returns the newly published price, if any.
    pub fn publish_due(&mut self, now: SimTime) -> Option<Price> {
        match self.pending_publish {
            Some((at, price)) if at <= now => {
                self.pending_publish = None;
                if price != self.published_price {
                    self.published_price = price;
                    Some(price)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// True if a price change is still waiting to propagate — the window
    /// in which bids at the published price lose (§5.1.2).
    pub fn publication_lagging(&self) -> bool {
        self.pending_publish.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MULTIPLES: [f64; 5] = [0.1, 0.5, 1.0, 2.0, 10.0];

    #[test]
    fn all_demand_fits_price_at_floor() {
        let c = clear(&MULTIPLES, &[1.0, 1.0, 1.0, 0.0, 0.0], 10.0);
        assert!(c.at_floor);
        assert_eq!(c.price_multiple, 0.1);
        assert_eq!(c.served, 3.0);
    }

    #[test]
    fn zero_supply_pins_at_cap() {
        let c = clear(&MULTIPLES, &[1.0; 5], 0.0);
        assert!(c.at_cap);
        assert_eq!(c.price_multiple, 10.0);
        assert_eq!(c.served, 0.0);
    }

    #[test]
    fn marginal_level_sets_price() {
        // Demand: 2 @10x, 3 @2x, 5 @1x, supply 4 → winners: 2 @10x and
        // 2 of the 3 @2x → lowest winning bid = 2x.
        let c = clear(&MULTIPLES, &[0.0, 0.0, 5.0, 3.0, 2.0], 4.0);
        assert_eq!(c.price_multiple, 2.0);
        assert_eq!(c.served, 4.0);
        assert!(!c.at_floor && !c.at_cap);
    }

    #[test]
    fn exact_fill_prices_at_marginal_level() {
        // Supply exactly covers the top two levels.
        let c = clear(&MULTIPLES, &[0.0, 0.0, 5.0, 3.0, 2.0], 5.0);
        assert_eq!(c.price_multiple, 2.0);
    }

    #[test]
    fn shrinking_supply_raises_price() {
        let masses = [4.0, 3.0, 2.0, 1.0, 0.5];
        let mut last = 0.0_f64;
        let mut prices = Vec::new();
        for supply in [12.0, 6.0, 3.0, 1.0, 0.2] {
            let c = clear(&MULTIPLES, &masses, supply);
            assert!(
                c.price_multiple >= last,
                "price must not fall as supply shrinks"
            );
            last = c.price_multiple;
            prices.push(c.price_multiple);
        }
        assert!(prices[0] < prices[4], "prices should rise as supply falls");
    }

    #[test]
    fn market_state_price_lag() {
        let od = Price::from_dollars(0.42);
        let mut m = MarketState::new(od, 0.5, 10.0, 8, 0.1);
        assert_eq!(m.true_price(), od.scale(0.1));
        let clearing = clear(&MULTIPLES, &[0.0, 0.0, 5.0, 3.0, 2.0], 4.0);
        let changed = m.apply_clearing(clearing, SimTime::from_secs(100), SimTime::from_secs(130));
        assert!(changed);
        assert_eq!(m.true_price(), od.scale(2.0));
        assert_eq!(m.published_price(), od.scale(0.1), "not yet published");
        assert!(m.publication_lagging());
        assert_eq!(m.publish_due(SimTime::from_secs(120)), None);
        assert_eq!(m.publish_due(SimTime::from_secs(130)), Some(od.scale(2.0)));
        assert_eq!(m.published_price(), od.scale(2.0));
        assert!(!m.publication_lagging());
    }

    #[test]
    fn unchanged_price_does_not_publish() {
        let od = Price::from_dollars(1.0);
        let mut m = MarketState::new(od, 0.5, 10.0, 8, 0.1);
        let clearing = clear(&MULTIPLES, &[1.0, 0.0, 0.0, 0.0, 0.0], 10.0);
        let changed = m.apply_clearing(clearing, SimTime::ZERO, SimTime::from_secs(30));
        assert!(!changed, "price stayed at floor");
        assert_eq!(m.publish_due(SimTime::from_secs(60)), None);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_slices_panic() {
        let _ = clear(&MULTIPLES, &[1.0, 2.0], 1.0);
    }

    /// The branch-free fixed-15 walk must agree with the generic
    /// early-exit walk bit for bit — same level, price, served, and
    /// flags — across floor, cap, marginal, and exact-fill regimes.
    #[test]
    fn fixed_15_branchless_walk_matches_generic() {
        let multiples: [f64; 15] = core::array::from_fn(|i| 0.1 + 0.7 * i as f64);
        // A pseudo-random but deterministic mass pattern, including
        // zero levels and an uneven tail.
        let mut masses = [0.0f64; 15];
        let mut x = 9_876_543_210.0_f64;
        for m in masses.iter_mut() {
            x = (x * 1.103_515_245e0 + 12_345.0) % 1_000.0;
            *m = (x / 100.0).floor() * 0.75;
        }
        masses[3] = 0.0;
        masses[14] = 2.25;
        let total: f64 = masses.iter().sum();
        let mut supplies = vec![0.0, total * 2.0, total, 0.1, masses[14], masses[14] + 0.5];
        // Walk a supply sweep across every level boundary.
        let mut acc = 0.0;
        for i in (0..15).rev() {
            acc += masses[i];
            supplies.push(acc);
            supplies.push(acc + 0.25);
        }
        for supply in supplies {
            let fast = clear(&multiples, &masses, supply);
            // Force the generic path by clearing a 16-wide copy whose
            // extra bottom level holds zero mass: the walk visits the
            // same levels with the same remaining chain (index shifted
            // by one), and a zero level is never marginal for
            // `supply > 0`.
            let mut wide_multiples = [0.05f64; 16];
            wide_multiples[1..].copy_from_slice(&multiples);
            let mut wide_masses = [0.0f64; 16];
            wide_masses[1..].copy_from_slice(&masses);
            let generic = clear(&wide_multiples, &wide_masses, supply);
            if generic.at_floor {
                assert!(fast.at_floor, "supply {supply}");
                continue;
            }
            assert_eq!(fast.level_idx + 1, generic.level_idx, "supply {supply}");
            assert_eq!(
                fast.price_multiple, generic.price_multiple,
                "supply {supply}"
            );
            assert_eq!(fast.served, generic.served, "supply {supply}");
            assert_eq!(fast.at_cap, generic.at_cap, "supply {supply}");
        }
    }

    /// `clear_with_total` with the true sum is exactly `clear`.
    #[test]
    fn clear_with_total_matches_clear() {
        let masses = [4.0, 3.0, 2.0, 1.0, 0.5];
        let total: f64 = masses.iter().sum();
        for supply in [0.0, 0.2, 1.0, 3.0, 6.0, 12.0] {
            assert_eq!(
                clear_with_total(&MULTIPLES, &masses, total, supply),
                clear(&MULTIPLES, &masses, supply),
            );
        }
    }
}
