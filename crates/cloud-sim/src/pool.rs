//! The shared physical capacity pool behind each family × zone.
//!
//! This module implements the paper's Figure 2.2: reserved, on-demand,
//! and spot servers in a market are carved out of *one* pool of physical
//! resources. The pool enforces the two bounds derived in §2.2:
//!
//! * on-demand usage can never exceed `physical − reserved_granted`
//!   (capacity promised to reservations is off-limits even when the
//!   reservations are not running), and
//! * spot supply is whatever is left after running reserved and
//!   on-demand servers: `physical − reserved_running − od_running`.
//!
//! All quantities are in normalized capacity units (see
//! [`crate::ids::Size::units`]). The pool is a passive accounting object:
//! the demand processes in [`crate::demand`] and the clearing logic in
//! [`crate::cloud`] drive it. Each pool is owned by its region's shard
//! (see the ownership model in [`crate::cloud`]): during the parallel
//! tick phase only that shard's worker may touch it, which is what lets
//! the tick fan out across regions without locks.

use serde::{Deserialize, Serialize};

/// Why an on-demand admission attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OdRejection {
    /// The request would push on-demand usage above
    /// `physical − reserved_granted` — the pool is genuinely out of
    /// on-demand capacity (the paper's `InsufficientInstanceCapacity`).
    NoHeadroom,
    /// Capacity exists on paper but is still being reclaimed from spot
    /// instances that received their two-minute revocation warning; EC2
    /// rejects requests during this shift delay (§5.2.1).
    ReclaimInProgress,
}

/// Snapshot of a pool's occupancy, returned by [`CapacityPool::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// Total physical units.
    pub physical: u64,
    /// Units promised to granted reservations.
    pub reserved_granted: u64,
    /// Units of running reserved instances.
    pub reserved_running: u64,
    /// Units of organic (background demand) on-demand instances.
    pub od_organic: u64,
    /// Units of externally launched (API) on-demand instances.
    pub od_external: u64,
    /// Units of spot instances allocated by the market clearing.
    pub spot_market: u64,
    /// Units of externally launched (API) spot instances.
    pub spot_external: u64,
    /// Organic on-demand demand the pool could not serve, in units.
    pub od_unmet: u64,
    /// Fraction of free spot room withheld from new fulfilment
    /// ("parked", the low-price capacity withholding of §5.3).
    pub parked_frac: f64,
}

impl PoolSnapshot {
    /// Units in use by anything.
    pub fn occupied(&self) -> u64 {
        self.reserved_running + self.od_running() + self.spot_running()
    }

    /// Total running on-demand units.
    pub fn od_running(&self) -> u64 {
        self.od_organic + self.od_external
    }

    /// Total running spot units.
    pub fn spot_running(&self) -> u64 {
        self.spot_market + self.spot_external
    }

    /// Completely idle units.
    pub fn idle(&self) -> u64 {
        self.physical - self.occupied()
    }
}

/// One physical capacity pool (family × availability zone).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityPool {
    physical: u64,
    reserved_granted: u64,
    reserved_running: u64,
    od_organic: u64,
    od_external: u64,
    spot_market: u64,
    spot_external: u64,
    od_unmet: u64,
    parked_frac: f64,
    /// True while capacity is being shifted from spot to on-demand
    /// (the two-minute revocation lag).
    reclaiming: bool,
}

impl CapacityPool {
    /// Creates a pool with `physical` total units, of which
    /// `reserved_granted` are promised to reservations.
    ///
    /// # Panics
    ///
    /// Panics if `reserved_granted > physical`.
    pub fn new(physical: u64, reserved_granted: u64) -> Self {
        assert!(
            reserved_granted <= physical,
            "reserved_granted ({reserved_granted}) exceeds physical ({physical})"
        );
        CapacityPool {
            physical,
            reserved_granted,
            reserved_running: 0,
            od_organic: 0,
            od_external: 0,
            spot_market: 0,
            spot_external: 0,
            od_unmet: 0,
            parked_frac: 0.0,
            reclaiming: false,
        }
    }

    /// Total physical units.
    pub fn physical(&self) -> u64 {
        self.physical
    }

    /// Units promised to granted reservations.
    pub fn reserved_granted(&self) -> u64 {
        self.reserved_granted
    }

    /// The ceiling on total on-demand usage: `physical − reserved_granted`
    /// (§2.2's upper bound).
    pub fn od_cap(&self) -> u64 {
        self.physical - self.reserved_granted
    }

    /// Units still available to new on-demand requests.
    pub fn od_headroom(&self) -> u64 {
        self.od_cap()
            .saturating_sub(self.od_organic + self.od_external)
    }

    /// Units available to the spot market after running reserved and
    /// on-demand servers (§2.2), *excluding* externally held spot
    /// instances (they already occupy their share).
    pub fn spot_supply(&self) -> u64 {
        self.physical
            .saturating_sub(self.reserved_running + self.od_organic + self.od_external)
            .saturating_sub(self.spot_external)
    }

    /// Whether organic on-demand demand currently exceeds what the pool
    /// can serve — the pool-wide shortage state.
    pub fn od_shortage(&self) -> bool {
        self.od_unmet > 0
    }

    /// Organic demand the pool could not serve, in units.
    pub fn od_unmet(&self) -> u64 {
        self.od_unmet
    }

    /// Fraction of free spot room withheld from new fulfilment.
    pub fn parked_frac(&self) -> f64 {
        self.parked_frac
    }

    /// Whether the operator is currently withholding capacity.
    pub fn parking_active(&self) -> bool {
        self.parked_frac > 0.0
    }

    /// True while capacity is being reclaimed from revoked spot servers.
    pub fn reclaiming(&self) -> bool {
        self.reclaiming
    }

    /// A copyable snapshot of the pool's occupancy.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            physical: self.physical,
            reserved_granted: self.reserved_granted,
            reserved_running: self.reserved_running,
            od_organic: self.od_organic,
            od_external: self.od_external,
            spot_market: self.spot_market,
            spot_external: self.spot_external,
            od_unmet: self.od_unmet,
            parked_frac: self.parked_frac,
        }
    }

    /// Checks whether an on-demand request for `units` would be admitted,
    /// without mutating the pool.
    ///
    /// # Errors
    ///
    /// Returns the rejection reason when the request would be refused.
    pub fn check_od_admission(&self, units: u64) -> Result<(), OdRejection> {
        if units > self.od_headroom() {
            return Err(OdRejection::NoHeadroom);
        }
        // Capacity held by external spot instances cannot be displaced
        // instantly (they get the two-minute warning first).
        let free_excl_bg = self
            .physical
            .saturating_sub(self.reserved_running + self.od_organic + self.od_external)
            .saturating_sub(self.spot_external);
        if units > free_excl_bg {
            return Err(OdRejection::NoHeadroom);
        }
        // Admitting this request requires displacing background spot
        // capacity that has not finished shutting down yet.
        if self.reclaiming && units > free_excl_bg.saturating_sub(self.spot_market) {
            return Err(OdRejection::ReclaimInProgress);
        }
        Ok(())
    }

    /// Admits an externally launched on-demand instance of `units`.
    ///
    /// # Errors
    ///
    /// Returns the rejection reason when the pool cannot serve it.
    pub fn admit_od_external(&mut self, units: u64) -> Result<(), OdRejection> {
        self.check_od_admission(units)?;
        self.od_external += units;
        // Displace background spot capacity to make room; the reclaim
        // window (not this accounting) models the two-minute delay as
        // seen by subsequent admission checks.
        self.spot_market = self.spot_market.min(self.spot_supply());
        debug_assert!(self.invariants_hold());
        Ok(())
    }

    /// Releases an externally launched on-demand instance.
    ///
    /// # Panics
    ///
    /// Panics if more units are released than are held.
    pub fn release_od_external(&mut self, units: u64) {
        assert!(
            units <= self.od_external,
            "releasing {units} od units but only {} held",
            self.od_external
        );
        self.od_external -= units;
    }

    /// Admits an externally launched spot instance of `units`; the caller
    /// (the market clearing in [`crate::cloud`]) is responsible for
    /// checking price and parking rules first.
    ///
    /// Returns `false` without mutating if the pool has no free capacity.
    pub fn admit_spot_external(&mut self, units: u64) -> bool {
        if units > self.spot_supply().saturating_sub(self.spot_market) {
            return false;
        }
        self.spot_external += units;
        debug_assert!(self.invariants_hold());
        true
    }

    /// Releases an externally launched spot instance.
    ///
    /// # Panics
    ///
    /// Panics if more units are released than are held.
    pub fn release_spot_external(&mut self, units: u64) {
        assert!(
            units <= self.spot_external,
            "releasing {units} spot units but only {} held",
            self.spot_external
        );
        self.spot_external -= units;
    }

    /// Units currently held by external spot instances.
    pub fn spot_external(&self) -> u64 {
        self.spot_external
    }

    /// Units currently held by external on-demand instances.
    pub fn od_external(&self) -> u64 {
        self.od_external
    }

    /// Applies one demand-process step. Called once per tick by the cloud.
    ///
    /// * `reserved_running_target` — desired running reserved units.
    /// * `od_organic_target` — desired organic on-demand units.
    /// * `parked_frac` — fraction of free spot room the operator
    ///   withholds from new spot fulfilment (clamped to `[0, 1]`).
    ///
    /// Reserved demand is served first (its guarantee), then on-demand up
    /// to the §2.2 cap; whatever organic demand cannot be served is
    /// recorded in [`CapacityPool::od_unmet`]. Returns the spot units that
    /// had to be displaced to make room (used to trigger revocations and
    /// the reclaim window).
    pub fn apply_demand(
        &mut self,
        reserved_running_target: u64,
        od_organic_target: u64,
        parked_frac: f64,
    ) -> u64 {
        // Reserved demand is served first, but even it cannot instantly
        // displace externally held instances.
        let res_room = self
            .physical
            .saturating_sub(self.od_external + self.spot_external);
        self.reserved_running = reserved_running_target
            .min(self.reserved_granted)
            .min(res_room);

        // On-demand: capped by §2.2, by what external instances hold, and
        // by the physical space left after reserved and external usage.
        let od_cap_left = self.od_cap().saturating_sub(self.od_external);
        let physical_room = self
            .physical
            .saturating_sub(self.reserved_running + self.od_external + self.spot_external);
        let served = od_organic_target.min(od_cap_left).min(physical_room);
        self.od_unmet = od_organic_target - served;
        self.od_organic = served;

        // Whatever spot_market held beyond the new supply is displaced.
        let supply = self.spot_supply();
        let displaced = self.spot_market.saturating_sub(supply);
        self.spot_market = self.spot_market.min(supply);

        self.parked_frac = parked_frac.clamp(0.0, 1.0);
        debug_assert!(self.invariants_hold());
        displaced
    }

    /// Sets the units allocated by the market clearing, clamped to the
    /// available spot supply. Returns the clamped value.
    pub fn set_spot_market(&mut self, units: u64) -> u64 {
        self.spot_market = units.min(self.spot_supply());
        debug_assert!(self.invariants_hold());
        self.spot_market
    }

    /// Units allocated to the spot market by clearing.
    pub fn spot_market_units(&self) -> u64 {
        self.spot_market
    }

    /// Marks or clears the reclaim-in-progress window.
    pub fn set_reclaiming(&mut self, reclaiming: bool) {
        self.reclaiming = reclaiming;
    }

    /// Inst~units available to *new* spot fulfilment after parking:
    /// the free spot room scaled down by the parked fraction.
    pub fn spot_fulfilment_room(&self) -> u64 {
        let free = self.spot_supply().saturating_sub(self.spot_market);
        ((free as f64) * (1.0 - self.parked_frac)).round() as u64
    }

    fn occupied(&self) -> u64 {
        self.reserved_running
            + self.od_organic
            + self.od_external
            + self.spot_market
            + self.spot_external
    }

    /// The conservation invariant: nothing ever over-commits the pool.
    pub fn invariants_hold(&self) -> bool {
        self.reserved_running <= self.reserved_granted
            && self.occupied() <= self.physical
            && self.od_organic + self.od_external <= self.od_cap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> CapacityPool {
        CapacityPool::new(100, 40)
    }

    #[test]
    fn od_cap_follows_reserved_grant() {
        let p = pool();
        assert_eq!(p.od_cap(), 60);
        assert_eq!(p.od_headroom(), 60);
    }

    #[test]
    fn organic_demand_is_capped_and_unmet_recorded() {
        let mut p = pool();
        p.apply_demand(20, 80, 0.0);
        assert_eq!(p.snapshot().od_organic, 60);
        assert_eq!(p.od_unmet(), 20);
        assert!(p.od_shortage());
        assert_eq!(p.od_headroom(), 0);
    }

    #[test]
    fn spot_supply_shrinks_with_od_and_reserved() {
        let mut p = pool();
        assert_eq!(p.spot_supply(), 100);
        p.apply_demand(30, 40, 0.0);
        assert_eq!(p.spot_supply(), 30);
    }

    #[test]
    fn displacement_reported_when_od_grows() {
        let mut p = pool();
        p.apply_demand(0, 0, 0.0);
        p.set_spot_market(100);
        assert_eq!(p.spot_market_units(), 100);
        let displaced = p.apply_demand(0, 50, 0.0);
        assert_eq!(displaced, 50);
        assert_eq!(p.spot_market_units(), 50);
    }

    #[test]
    fn external_od_admission_checks_headroom() {
        let mut p = pool();
        p.apply_demand(0, 55, 0.0);
        assert_eq!(p.admit_od_external(4), Ok(()));
        assert_eq!(
            p.admit_od_external(2),
            Err(OdRejection::NoHeadroom),
            "55 organic + 4 external + 2 > cap 60"
        );
        p.release_od_external(4);
        assert_eq!(p.od_headroom(), 5);
    }

    #[test]
    fn reclaim_window_blocks_od_that_needs_displacement() {
        let mut p = pool();
        p.apply_demand(0, 0, 0.0);
        p.set_spot_market(100);
        p.set_reclaiming(true);
        // All capacity is spot-held and still shutting down.
        assert_eq!(p.check_od_admission(8), Err(OdRejection::ReclaimInProgress));
        p.set_reclaiming(false);
        assert_eq!(p.check_od_admission(8), Ok(()));
    }

    #[test]
    fn external_spot_occupies_and_releases() {
        let mut p = pool();
        assert!(p.admit_spot_external(10));
        assert_eq!(p.spot_supply(), 90);
        p.release_spot_external(10);
        assert_eq!(p.spot_supply(), 100);
    }

    #[test]
    fn spot_external_admission_fails_when_full() {
        let mut p = pool();
        p.apply_demand(40, 60, 0.0);
        assert_eq!(p.spot_supply(), 0);
        assert!(!p.admit_spot_external(1));
    }

    #[test]
    fn parking_reduces_fulfilment_room() {
        let mut p = pool();
        p.apply_demand(0, 50, 0.0);
        assert_eq!(p.spot_supply(), 50);
        assert_eq!(p.spot_fulfilment_room(), 50);
        p.apply_demand(0, 50, 0.9);
        assert_eq!(p.spot_fulfilment_room(), 5);
        p.apply_demand(0, 50, 1.0);
        assert_eq!(p.spot_fulfilment_room(), 0);
        // Out-of-range fractions are clamped.
        p.apply_demand(0, 50, 7.0);
        assert_eq!(p.spot_fulfilment_room(), 0);
    }

    #[test]
    fn snapshot_consistency() {
        let mut p = pool();
        p.apply_demand(20, 30, 0.1);
        p.set_spot_market(10);
        assert_eq!(p.admit_od_external(2), Ok(()));
        let s = p.snapshot();
        assert_eq!(s.occupied(), 20 + 30 + 2 + 10);
        assert_eq!(s.idle(), 100 - s.occupied());
        assert!(p.invariants_hold());
    }

    #[test]
    #[should_panic(expected = "exceeds physical")]
    fn overcommitted_grant_panics() {
        let _ = CapacityPool::new(10, 11);
    }
}
