//! Monetary amounts and hourly prices in fixed-point micro-dollars.
//!
//! Prices on EC2 are quoted with up to four decimal places, and SpotLight's
//! analysis constantly compares prices as *multiples* of the on-demand
//! price. To avoid floating-point drift in billing and budget accounting we
//! represent money as integer micro-dollars (`1_000_000` = $1).
//!
//! # Examples
//!
//! ```
//! use cloud_sim::price::Price;
//!
//! let od = Price::from_dollars(0.42);
//! let spike = od.scale(2.5);
//! assert_eq!(spike.as_dollars(), 1.05);
//! assert!((spike.ratio_to(od) - 2.5).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A non-negative monetary amount (or hourly price) in micro-dollars.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Price(u64);

impl Price {
    /// Zero dollars.
    pub const ZERO: Price = Price(0);

    /// Creates a price from micro-dollars.
    pub const fn from_micros(micros: u64) -> Self {
        Price(micros)
    }

    /// Creates a price from a dollar amount.
    ///
    /// Fractions below one micro-dollar are rounded to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `dollars` is negative or not finite.
    pub fn from_dollars(dollars: f64) -> Self {
        assert!(
            dollars.is_finite() && dollars >= 0.0,
            "price must be finite and non-negative, got {dollars}"
        );
        Price((dollars * 1e6).round() as u64)
    }

    /// Returns the amount in micro-dollars.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the amount in dollars.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the price by a non-negative factor, rounding to nearest
    /// micro-dollar.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Price {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Price((self.0 as f64 * factor).round() as u64)
    }

    /// Multiplies the price by an integer count (e.g. billing hours).
    pub const fn times(self, count: u64) -> Price {
        Price(self.0 * count)
    }

    /// Returns `self / other` as a float; `other` must be non-zero.
    ///
    /// This is the "spike multiple" used throughout SpotLight's analysis:
    /// a spot price of $0.80 against a $0.40 on-demand price is `2.0`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio_to(self, other: Price) -> f64 {
        assert!(other.0 != 0, "cannot take ratio to a zero price");
        self.0 as f64 / other.0 as f64
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: Price) -> Price {
        Price(self.0.saturating_sub(other.0))
    }

    /// The smaller of two prices.
    pub fn min(self, other: Price) -> Price {
        Price(self.0.min(other.0))
    }

    /// The larger of two prices.
    pub fn max(self, other: Price) -> Price {
        Price(self.0.max(other.0))
    }

    /// True if the amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Midpoint of two prices, rounding down; used by bisection searches.
    pub const fn midpoint(self, other: Price) -> Price {
        Price(self.0 / 2 + other.0 / 2 + (self.0 % 2 + other.0 % 2) / 2)
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Price) -> Price {
        Price(self.0 + rhs.0)
    }
}

impl AddAssign for Price {
    fn add_assign(&mut self, rhs: Price) {
        self.0 += rhs.0;
    }
}

impl Sub for Price {
    type Output = Price;
    fn sub(self, rhs: Price) -> Price {
        Price(self.0 - rhs.0)
    }
}

impl SubAssign for Price {
    fn sub_assign(&mut self, rhs: Price) {
        self.0 -= rhs.0;
    }
}

impl Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        Price(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}", self.as_dollars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dollar_roundtrip() {
        let p = Price::from_dollars(0.0042);
        assert_eq!(p.as_micros(), 4200);
        assert!((p.as_dollars() - 0.0042).abs() < 1e-12);
    }

    #[test]
    fn scale_and_ratio() {
        let od = Price::from_dollars(0.5);
        assert_eq!(od.scale(10.0), Price::from_dollars(5.0));
        assert!((od.scale(10.0).ratio_to(od) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn midpoint_no_overflow() {
        let a = Price::from_micros(u64::MAX - 1);
        let b = Price::from_micros(u64::MAX - 3);
        assert_eq!(a.midpoint(b), Price::from_micros(u64::MAX - 2));
        let c = Price::from_micros(3);
        let d = Price::from_micros(5);
        assert_eq!(c.midpoint(d), Price::from_micros(4));
    }

    #[test]
    fn ordering_and_sum() {
        let prices = [Price::from_dollars(0.1), Price::from_dollars(0.2)];
        let total: Price = prices.iter().copied().sum();
        assert_eq!(total, Price::from_dollars(0.3));
        assert!(prices[0] < prices[1]);
    }

    #[test]
    fn display_has_four_decimals() {
        assert_eq!(Price::from_dollars(1.5).to_string(), "$1.5000");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dollars_panics() {
        let _ = Price::from_dollars(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero price")]
    fn ratio_to_zero_panics() {
        let _ = Price::from_dollars(1.0).ratio_to(Price::ZERO);
    }
}
