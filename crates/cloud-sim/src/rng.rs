//! Seeded random sampling used by the demand processes.
//!
//! Everything in the simulator draws from one [`SimRng`] so that a run is
//! fully determined by its seed. The helpers implement the handful of
//! distributions the demand model needs (normal, lognormal, Pareto,
//! Bernoulli) without pulling in a distributions crate.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The simulator's seeded random number generator.
///
/// # Examples
///
/// ```
/// use cloud_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream; used to give subsystems their
    /// own streams so adding draws in one place does not perturb others.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let mut child = ChaCha8Rng::seed_from_u64(self.inner.gen::<u64>() ^ stream);
        child.set_stream(stream);
        SimRng { inner: child }
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// A Bernoulli trial with success probability `p` (clamped to [0,1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform() < p
    }

    /// A standard-normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// A lognormal sample parameterized by its *median* and the standard
    /// deviation of the underlying normal (`sigma`).
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * self.standard_normal()).exp()
    }

    /// A Pareto sample with scale `xm > 0` and shape `alpha > 0`:
    /// heavy-tailed surge magnitudes.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        let u = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        xm / u.powf(1.0 / alpha)
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_by_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_draw_count() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let fa = a.fork(1);
        let fb = b.fork(1);
        // Different parents give different children.
        assert_ne!(fa.clone().next_u64(), fb.clone().next_u64());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from(13);
        for _ in 0..1000 {
            assert!(rng.pareto(0.2, 1.5) >= 0.2);
        }
    }

    #[test]
    fn lognormal_median_is_median() {
        let mut rng = SimRng::seed_from(17);
        let n = 20_000;
        let mut samples: Vec<f64> =
            (0..n).map(|_| rng.lognormal_median(900.0, 2.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median / 900.0 - 1.0).abs() < 0.12, "median {median}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
