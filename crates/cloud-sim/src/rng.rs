//! Seeded random sampling used by the demand processes.
//!
//! Everything in the simulator draws from one [`SimRng`] so that a run is
//! fully determined by its seed. The generator is a self-contained
//! xoshiro256++ seeded through SplitMix64 (the container builds offline,
//! so no external RNG crate is used), and the helpers implement the
//! handful of distributions the demand model needs (normal, lognormal,
//! Pareto, Bernoulli) without pulling in a distributions crate.

/// The simulator's seeded random number generator.
///
/// # Examples
///
/// ```
/// use cloud_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// Ziggurat layer count for [`SimRng::standard_normal`].
const ZIG_LAYERS: usize = 128;
/// Tail cut-off of the 128-layer normal ziggurat (Doornik's ZIGNOR).
const ZIG_R: f64 = 3.442_619_855_899;
/// Per-layer area of the 128-layer normal ziggurat.
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

/// Precomputed ziggurat tables: layer edges `x`, the fast-path
/// acceptance ratios `x[i+1]/x[i]`, and the density at each edge.
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    ratio: [f64; ZIG_LAYERS + 1],
    pdf: [f64; ZIG_LAYERS + 1],
}

fn zig_tables() -> &'static ZigTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let density = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; ZIG_LAYERS + 1];
        // x[0] is the pseudo-width of the base strip (rectangle + tail);
        // x[1..] are the true layer edges, descending to x[128] = 0.
        x[0] = ZIG_V / density(ZIG_R);
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            let y = ZIG_V / x[i - 1] + density(x[i - 1]);
            x[i] = (-2.0 * y.ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        let mut ratio = [0.0; ZIG_LAYERS + 1];
        let mut pdf = [0.0; ZIG_LAYERS + 1];
        for i in 0..=ZIG_LAYERS {
            pdf[i] = density(x[i]);
            ratio[i] = if i < ZIG_LAYERS && x[i] > 0.0 {
                x[i + 1] / x[i]
            } else {
                0.0
            };
        }
        ZigTables { x, ratio, pdf }
    })
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng::with_stream(seed, 0)
    }

    /// Seeds a generator whose SplitMix64 expansion also folds in a
    /// stream id, so sibling streams from one seed are decorrelated.
    fn with_stream(seed: u64, stream: u64) -> Self {
        let mut x = seed ^ stream.wrapping_mul(0xa24b_aed4_963e_e407);
        let mut state = [0u64; 4];
        for word in &mut state {
            // SplitMix64 step.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        if state == [0; 4] {
            state[0] = 0x1; // xoshiro must not start at the all-zero state
        }
        SimRng { state }
    }

    /// Derives an independent child stream; used to give subsystems their
    /// own streams so adding draws in one place does not perturb others.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::with_stream(self.next_u64() ^ stream, stream)
    }

    /// Splits off `n` decorrelated child streams with ids
    /// `base..base + n`, in order. The region-sharded tick uses this at
    /// construction to give every region its own stream: because the
    /// split happens once, in canonical region order, a region's stream
    /// identity depends only on the seed — never on which other regions
    /// a catalog offers or how many threads later consume the streams.
    pub fn fork_streams(&mut self, base: u64, n: usize) -> Vec<SimRng> {
        (0..n as u64).map(|i| self.fork(base + i)).collect()
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A Bernoulli trial with success probability `p` (clamped to [0,1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform() < p
    }

    /// A standard-normal sample via the 128-layer ziggurat: the common
    /// case is one raw draw, one compare, and one multiply, which keeps
    /// the OU processes off the `ln`/trig units the tick loop would
    /// otherwise saturate. The rare wedge/tail cases fall back to exact
    /// rejection sampling, so the distribution is not truncated.
    pub fn standard_normal(&mut self) -> f64 {
        let tables = zig_tables();
        loop {
            let bits = self.next_u64();
            let i = (bits & (ZIG_LAYERS as u64 - 1)) as usize;
            // Signed uniform in (-1, 1) from the top 53 bits.
            let u = ((bits >> 11) as f64) * (2.0 / (1u64 << 53) as f64) - 1.0;
            if u.abs() < tables.ratio[i] {
                // Entirely inside layer i+1's rectangle: accept.
                return u * tables.x[i];
            }
            if i == 0 {
                // Base strip: the |x| > R tail, sampled exactly.
                let sign = if u < 0.0 { -1.0 } else { 1.0 };
                loop {
                    let e1 = -(1.0 - self.uniform()).max(f64::MIN_POSITIVE).ln() / ZIG_R;
                    let e2 = -(1.0 - self.uniform()).max(f64::MIN_POSITIVE).ln();
                    if e2 + e2 > e1 * e1 {
                        return sign * (ZIG_R + e1);
                    }
                }
            }
            // Wedge between the rectangle and the density curve.
            let x = u * tables.x[i];
            let y = tables.pdf[i] + self.uniform() * (tables.pdf[i + 1] - tables.pdf[i]);
            if y < (-0.5 * x * x).exp() {
                return x;
            }
        }
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// A lognormal sample parameterized by its *median* and the standard
    /// deviation of the underlying normal (`sigma`).
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * self.standard_normal()).exp()
    }

    /// A Pareto sample with scale `xm > 0` and shape `alpha > 0`:
    /// heavy-tailed surge magnitudes.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        let u = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        xm / u.powf(1.0 / alpha)
    }

    /// A raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_by_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_draw_count() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let fa = a.fork(1);
        let fb = b.fork(1);
        // Different parents give different children.
        assert_ne!(fa.clone().next_u64(), fb.clone().next_u64());
    }

    #[test]
    fn distinct_streams_from_one_parent_differ() {
        let mut a = SimRng::seed_from(7);
        let mut s1 = a.fork(1);
        let mut s2 = a.fork(2);
        let differs = (0..16).any(|_| s1.next_u64() != s2.next_u64());
        assert!(differs, "sibling streams must not coincide");
    }

    #[test]
    fn fork_streams_are_pairwise_distinct_and_reproducible() {
        let mut a = SimRng::seed_from(21);
        let mut b = SimRng::seed_from(21);
        let sa = a.fork_streams(2, 9);
        let sb = b.fork_streams(2, 9);
        for (x, y) in sa.iter().zip(&sb) {
            // Same seed reproduces the same streams.
            assert_eq!(x.clone().next_u64(), y.clone().next_u64());
        }
        for i in 0..sa.len() {
            for j in (i + 1)..sa.len() {
                let differs = {
                    let (mut x, mut y) = (sa[i].clone(), sa[j].clone());
                    (0..16).any(|_| x.next_u64() != y.next_u64())
                };
                assert!(differs, "streams {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from(13);
        for _ in 0..1000 {
            assert!(rng.pareto(0.2, 1.5) >= 0.2);
        }
    }

    #[test]
    fn lognormal_median_is_median() {
        let mut rng = SimRng::seed_from(17);
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal_median(900.0, 2.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median / 900.0 - 1.0).abs() < 0.12, "median {median}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
