//! Simulation time: a logical clock measured in whole seconds.
//!
//! The simulator uses an integral second clock. All scheduling, billing,
//! demand seasonality, and analysis windows are expressed in terms of
//! [`SimTime`] (an absolute instant) and [`SimDuration`] (a span).
//!
//! # Examples
//!
//! ```
//! use cloud_sim::time::{SimTime, SimDuration};
//!
//! let t = SimTime::ZERO + SimDuration::hours(2);
//! assert_eq!(t.as_secs(), 7200);
//! assert_eq!(t - SimTime::ZERO, SimDuration::hours(2));
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in seconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "end of time" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from seconds since the simulation origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Returns the number of seconds since the simulation origin.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the elapsed duration since `earlier`, saturating to zero
    /// if `earlier` is in the future.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the instant advanced by `d`, saturating at [`SimTime::MAX`].
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The hour-of-day (0..24) of this instant, assuming the simulation
    /// starts at midnight.
    pub const fn hour_of_day(self) -> u64 {
        (self.0 / 3600) % 24
    }

    /// The day-of-week (0..7) of this instant, assuming the simulation
    /// starts on day 0.
    pub const fn day_of_week(self) -> u64 {
        (self.0 / 86_400) % 7
    }

    /// Fraction of the day elapsed at this instant, in `[0, 1)`.
    pub fn day_fraction(self) -> f64 {
        (self.0 % 86_400) as f64 / 86_400.0
    }

    /// Fraction of the week elapsed at this instant, in `[0, 1)`.
    pub fn week_fraction(self) -> f64 {
        (self.0 % 604_800) as f64 / 604_800.0
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a span from whole minutes.
    pub const fn minutes(m: u64) -> Self {
        SimDuration(m * 60)
    }

    /// Creates a span from whole hours.
    pub const fn hours(h: u64) -> Self {
        SimDuration(h * 3600)
    }

    /// Creates a span from whole days.
    pub const fn days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Returns the span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Returns the number of *whole* billing hours this span covers,
    /// rounding any partial hour up (EC2 bills by the started hour).
    pub const fn billing_hours(self) -> u64 {
        self.0.div_ceil(3600)
    }

    /// True if the span is zero seconds long.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / 86_400;
        let h = (self.0 % 86_400) / 3600;
        let m = (self.0 % 3600) / 60;
        let s = self.0 % 60;
        write!(f, "d{d} {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600 {
            write!(f, "{:.2}h", self.as_hours_f64())
        } else if self.0 >= 60 {
            write!(f, "{}m{}s", self.0 / 60, self.0 % 60)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(50);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn constructors_scale() {
        assert_eq!(SimDuration::minutes(2).as_secs(), 120);
        assert_eq!(SimDuration::hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::days(2).as_secs(), 172_800);
    }

    #[test]
    fn billing_hours_round_up() {
        assert_eq!(SimDuration::from_secs(0).billing_hours(), 0);
        assert_eq!(SimDuration::from_secs(1).billing_hours(), 1);
        assert_eq!(SimDuration::from_secs(3600).billing_hours(), 1);
        assert_eq!(SimDuration::from_secs(3601).billing_hours(), 2);
    }

    #[test]
    fn calendar_helpers() {
        let t = SimTime::from_secs(86_400 * 8 + 3600 * 5 + 30);
        assert_eq!(t.day_of_week(), 1);
        assert_eq!(t.hour_of_day(), 5);
        assert!(t.day_fraction() > 0.2 && t.day_fraction() < 0.22);
    }

    #[test]
    fn saturating_ops() {
        let t = SimTime::from_secs(10);
        assert_eq!(
            t.saturating_since(SimTime::from_secs(20)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::hours(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(90_061).to_string(), "d1 01:01:01");
        assert_eq!(SimDuration::from_secs(45).to_string(), "45s");
        assert_eq!(SimDuration::from_secs(130).to_string(), "2m10s");
        assert_eq!(SimDuration::from_secs(5400).to_string(), "1.50h");
    }
}
