//! Trace recording: published price histories and ground-truth shortage
//! intervals.
//!
//! Recording every price change of every market for a three-month run is
//! memory-heavy, so by default only *watched* markets keep full price
//! histories (the figures that need full series — 2.1, 5.1–5.3, 6.1/6.2 —
//! watch their markets explicitly). Ground-truth pool shortage intervals
//! are always recorded; they are the simulator-side truth that the
//! SpotLight *probe-side* measurements are validated against.

use crate::ids::{MarketId, PoolId};
use crate::price::Price;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One point in a market's published price history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePoint {
    /// When the price became visible.
    pub at: SimTime,
    /// The published price.
    pub price: Price,
}

/// A completed or open ground-truth shortage interval of one pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShortageInterval {
    /// The pool that ran short of on-demand capacity.
    pub pool: PoolId,
    /// When the shortage began.
    pub start: SimTime,
    /// When it ended; `None` while still open.
    pub end: Option<SimTime>,
}

/// Store of recorded traces.
#[derive(Debug, Clone, Default)]
pub struct TraceStore {
    record_all: bool,
    watched: HashSet<MarketId>,
    histories: HashMap<MarketId, Vec<PricePoint>>,
    shortages: Vec<ShortageInterval>,
    open_shortage: HashMap<PoolId, usize>,
}

impl TraceStore {
    /// Creates a store; `record_all` keeps full histories for every
    /// market instead of only watched ones.
    pub fn new(record_all: bool) -> Self {
        TraceStore {
            record_all,
            ..TraceStore::default()
        }
    }

    /// Starts recording the full price history of `market`.
    pub fn watch(&mut self, market: MarketId) {
        self.watched.insert(market);
    }

    /// Whether `market`'s history is being recorded.
    pub fn is_watched(&self, market: MarketId) -> bool {
        self.record_all || self.watched.contains(&market)
    }

    /// Records a published price change.
    pub fn record_price(&mut self, market: MarketId, at: SimTime, price: Price) {
        if !self.is_watched(market) {
            return;
        }
        let history = self.histories.entry(market).or_default();
        debug_assert!(history.last().is_none_or(|p| p.at <= at));
        history.push(PricePoint { at, price });
    }

    /// The recorded price history of a market, oldest first. Empty if the
    /// market is not watched.
    pub fn history(&self, market: MarketId) -> &[PricePoint] {
        self.histories.get(&market).map_or(&[], Vec::as_slice)
    }

    /// The price in force at time `t` according to the recorded history.
    pub fn price_at(&self, market: MarketId, t: SimTime) -> Option<Price> {
        let h = self.history(market);
        let idx = h.partition_point(|p| p.at <= t);
        idx.checked_sub(1).map(|i| h[i].price)
    }

    /// Marks the start of a ground-truth shortage in `pool`.
    pub fn shortage_started(&mut self, pool: PoolId, at: SimTime) {
        if self.open_shortage.contains_key(&pool) {
            return;
        }
        self.open_shortage.insert(pool, self.shortages.len());
        self.shortages.push(ShortageInterval {
            pool,
            start: at,
            end: None,
        });
    }

    /// Marks the end of a ground-truth shortage in `pool`.
    pub fn shortage_ended(&mut self, pool: PoolId, at: SimTime) {
        if let Some(idx) = self.open_shortage.remove(&pool) {
            self.shortages[idx].end = Some(at);
        }
    }

    /// All recorded shortage intervals (open ones have `end == None`).
    pub fn shortages(&self) -> &[ShortageInterval] {
        &self.shortages
    }

    /// Whether `pool` is in a ground-truth shortage at this moment.
    pub fn shortage_open(&self, pool: PoolId) -> bool {
        self.open_shortage.contains_key(&pool)
    }

    /// Total number of price points held (memory diagnostics).
    pub fn price_points(&self) -> usize {
        self.histories.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Az, Family, Platform, Region};

    fn market() -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, 0),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn pool() -> PoolId {
        PoolId {
            az: Az::new(Region::UsEast1, 0),
            family: Family::C3,
        }
    }

    #[test]
    fn unwatched_markets_record_nothing() {
        let mut t = TraceStore::new(false);
        t.record_price(market(), SimTime::ZERO, Price::from_dollars(0.1));
        assert!(t.history(market()).is_empty());
        assert_eq!(t.price_points(), 0);
    }

    #[test]
    fn watched_markets_record_history() {
        let mut t = TraceStore::new(false);
        t.watch(market());
        for (s, p) in [(0u64, 0.1), (100, 0.2), (200, 0.15)] {
            t.record_price(market(), SimTime::from_secs(s), Price::from_dollars(p));
        }
        assert_eq!(t.history(market()).len(), 3);
        assert_eq!(
            t.price_at(market(), SimTime::from_secs(150)),
            Some(Price::from_dollars(0.2))
        );
        assert_eq!(
            t.price_at(market(), SimTime::from_secs(0)),
            Some(Price::from_dollars(0.1))
        );
    }

    #[test]
    fn record_all_overrides_watch_list() {
        let mut t = TraceStore::new(true);
        t.record_price(market(), SimTime::ZERO, Price::from_dollars(0.1));
        assert_eq!(t.history(market()).len(), 1);
    }

    #[test]
    fn price_before_history_is_none() {
        let mut t = TraceStore::new(true);
        t.record_price(market(), SimTime::from_secs(100), Price::from_dollars(0.1));
        assert_eq!(t.price_at(market(), SimTime::from_secs(50)), None);
    }

    #[test]
    fn shortage_intervals_open_and_close() {
        let mut t = TraceStore::new(false);
        t.shortage_started(pool(), SimTime::from_secs(10));
        assert!(t.shortage_open(pool()));
        // Double-start is idempotent.
        t.shortage_started(pool(), SimTime::from_secs(20));
        t.shortage_ended(pool(), SimTime::from_secs(30));
        assert!(!t.shortage_open(pool()));
        // Double-end is idempotent.
        t.shortage_ended(pool(), SimTime::from_secs(40));
        assert_eq!(t.shortages().len(), 1);
        assert_eq!(t.shortages()[0].start, SimTime::from_secs(10));
        assert_eq!(t.shortages()[0].end, Some(SimTime::from_secs(30)));
    }
}
