//! The Chapter 5 analyses: every computation behind Figures 5.4–5.12,
//! as pure functions over a probe-store snapshot ([`StoreRead`]).
//!
//! The statistical definitions follow the paper:
//!
//! * trials are *probed* spikes, clustered so that only the first spike
//!   per market per window counts (Fig 5.4);
//! * "unavailable within a window" means a rejected probe for the same
//!   market inside `[spike, spike + window]`;
//! * related-market questions (Figs 5.7, 5.8, 5.12) look for rejections
//!   of markets in the same family/region (or the same type across
//!   zones) within the window of a detection.

use crate::probe::{ProbeKind, ProbeOutcome};
use crate::stats::{BucketedRate, Ecdf};
use crate::store::StoreRead;
use cloud_sim::ids::{Family, MarketId, Region};
use cloud_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// The paper's spike-size thresholds: ≥0×, ≥1×, …, ≥10× on-demand.
pub fn spike_thresholds() -> Vec<f64> {
    let mut v = vec![0.0];
    v.extend((1..=10).map(|k| k as f64));
    v
}

/// The paper's spot-price buckets for Figures 5.10/5.11, as lower edges
/// of the spot/od ratio: `[0, 1/10, 1/9, …, 1/2, 1]`.
pub fn spot_ratio_buckets() -> Vec<f64> {
    let mut v = vec![0.0];
    v.extend((2..=10).rev().map(|k| 1.0 / k as f64));
    v.push(1.0);
    v
}

/// One point of a probability-vs-spike-size curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The spike threshold (≥ this multiple of on-demand).
    pub threshold: f64,
    /// Estimated probability, `None` with zero trials.
    pub probability: Option<f64>,
    /// Trials at or above the threshold.
    pub trials: u64,
}

/// A per-market view of rejected on-demand probe times, served from the
/// store's time-sorted rejection index (no probe-log scan).
fn od_rejections<'a>(store: &'a StoreRead<'a>) -> HashMap<MarketId, &'a [SimTime]> {
    store
        .rejection_entries()
        .filter(|&((_, kind), _)| kind == ProbeKind::OnDemand)
        .map(|((market, _), times)| (market, times))
        .collect()
}

/// A per-(region, family) time-sorted index of *detections* (the opening
/// of measured unavailability intervals). Using detections rather than
/// every rejected recovery probe keeps long outages from being counted
/// once per re-probe.
fn detections_by_group(
    store: &StoreRead<'_>,
    kind: ProbeKind,
) -> HashMap<(Region, Family), Vec<(SimTime, MarketId)>> {
    let mut idx: HashMap<(Region, Family), Vec<(SimTime, MarketId)>> = HashMap::new();
    for i in store.intervals() {
        if i.kind == kind {
            idx.entry((i.market.region(), i.market.instance_type.family()))
                .or_default()
                .push((i.start, i.market));
        }
    }
    for v in idx.values_mut() {
        v.sort_by_key(|&(t, _)| t);
    }
    idx
}

fn any_in_window(sorted: &[SimTime], from: SimTime, to: SimTime) -> bool {
    let i = sorted.partition_point(|&t| t < from);
    sorted.get(i).is_some_and(|&t| t <= to)
}

/// Figure 5.4 / 5.6: P(on-demand unavailable within `window` of a spike)
/// as a function of spike size; `region` restricts to one region.
pub fn spike_unavailability(
    store: &StoreRead<'_>,
    window: SimDuration,
    region: Option<Region>,
) -> Vec<CurvePoint> {
    let rejections = od_rejections(store);
    let mut rate = BucketedRate::new(&spike_thresholds());

    // Cluster probed spikes per market: first spike per window opens a
    // cluster; later spikes within the window join it.
    let mut by_market: HashMap<MarketId, Vec<(SimTime, f64)>> = HashMap::new();
    for s in store.spikes() {
        if !s.probed {
            continue;
        }
        if region.is_some_and(|r| s.market.region() != r) {
            continue;
        }
        by_market.entry(s.market).or_default().push((s.at, s.ratio));
    }
    for (market, mut spikes) in by_market {
        spikes.sort_by_key(|&(t, _)| t);
        let rej: &[SimTime] = rejections.get(&market).copied().unwrap_or(&[]);
        let mut cluster_start: Option<SimTime> = None;
        let mut cluster_max = 0.0_f64;
        let flush = |start: SimTime, max_ratio: f64, rate: &mut BucketedRate| {
            let hit = any_in_window(rej, start, start + window);
            rate.observe(max_ratio, hit);
        };
        for (t, ratio) in spikes {
            match cluster_start {
                None => {
                    cluster_start = Some(t);
                    cluster_max = ratio;
                }
                Some(start) if t.saturating_since(start) <= window => {
                    cluster_max = cluster_max.max(ratio);
                }
                Some(start) => {
                    flush(start, cluster_max, &mut rate);
                    cluster_start = Some(t);
                    cluster_max = ratio;
                }
            }
        }
        if let Some(start) = cluster_start {
            flush(start, cluster_max, &mut rate);
        }
    }

    (0..rate.edges().len())
        .map(|b| CurvePoint {
            threshold: rate.edges()[b],
            probability: rate.cumulative_rate(b),
            trials: rate.cumulative_trials(b),
        })
        .collect()
}

/// Figure 5.5: the share of rejected on-demand probes landing in each
/// region, per spike-size bucket. Returns `(edges, region → share per
/// bucket)`; shares within one bucket sum to 1 (when it has any
/// rejections).
pub fn regional_rejection_share(store: &StoreRead<'_>) -> (Vec<f64>, HashMap<Region, Vec<f64>>) {
    let edges = spike_thresholds();
    let probe_bucket = BucketedRate::new(&edges);
    let mut counts: HashMap<Region, Vec<u64>> = HashMap::new();
    let mut totals = vec![0u64; edges.len()];
    for p in store.probes() {
        if p.kind != ProbeKind::OnDemand || p.outcome != ProbeOutcome::InsufficientCapacity {
            continue;
        }
        let Some(ratio) = p.trigger.spike_ratio() else {
            continue;
        };
        let Some(b) = probe_bucket.bucket_of(ratio) else {
            continue;
        };
        counts
            .entry(p.market.region())
            .or_insert_with(|| vec![0; edges.len()])[b] += 1;
        totals[b] += 1;
    }
    let shares = counts
        .into_iter()
        .map(|(r, c)| {
            (
                r,
                c.iter()
                    .zip(&totals)
                    .map(|(&n, &t)| if t > 0 { n as f64 / t as f64 } else { 0.0 })
                    .collect(),
            )
        })
        .collect();
    (edges, shares)
}

/// Figure 5.7: of all rejected on-demand probes, the share found via the
/// triggering price spike versus via related-market fan-out, per spike
/// bucket. Returns `(edges, by_spike_share, by_related_share)`.
pub fn rejection_attribution(store: &StoreRead<'_>) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let edges = spike_thresholds();
    let bucketer = BucketedRate::new(&edges);
    let mut spike = vec![0u64; edges.len()];
    let mut related = vec![0u64; edges.len()];
    for p in store.probes() {
        if p.kind != ProbeKind::OnDemand || p.outcome != ProbeOutcome::InsufficientCapacity {
            continue;
        }
        let Some(ratio) = p.trigger.spike_ratio() else {
            continue;
        };
        let Some(b) = bucketer.bucket_of(ratio) else {
            continue;
        };
        if p.trigger.is_related() {
            related[b] += 1;
        } else {
            spike[b] += 1;
        }
    }
    let mut spike_share = Vec::with_capacity(edges.len());
    let mut related_share = Vec::with_capacity(edges.len());
    for b in 0..edges.len() {
        let total = spike[b] + related[b];
        if total == 0 {
            spike_share.push(0.0);
            related_share.push(0.0);
        } else {
            spike_share.push(spike[b] as f64 / total as f64);
            related_share.push(related[b] as f64 / total as f64);
        }
    }
    (edges, spike_share, related_share)
}

/// Figure 5.8: after an initial on-demand detection, the probability
/// that at least one *same-type* market in another zone is also detected
/// unavailable within `window`, as a function of the detection's spike
/// size.
pub fn cross_az_unavailability(store: &StoreRead<'_>, window: SimDuration) -> Vec<CurvePoint> {
    let rejections = od_rejections(store);
    let mut rate = BucketedRate::new(&spike_thresholds());

    for interval in store.intervals() {
        if interval.kind != ProbeKind::OnDemand || interval.detected_via_related {
            continue;
        }
        let m = interval.market;
        let t = interval.start;
        let mut hit = false;
        for (&other, &times) in &rejections {
            if other == m
                || other.instance_type != m.instance_type
                || other.platform != m.platform
                || other.region() != m.region()
            {
                continue;
            }
            if any_in_window(times, t, t + window) {
                hit = true;
                break;
            }
        }
        rate.observe(interval.detect_ratio, hit);
    }

    (0..rate.edges().len())
        .map(|b| CurvePoint {
            threshold: rate.edges()[b],
            probability: rate.cumulative_rate(b),
            trials: rate.cumulative_trials(b),
        })
        .collect()
}

/// Figure 5.9: the CDF of measured on-demand unavailability durations,
/// in hours.
pub fn duration_cdf(store: &StoreRead<'_>) -> Ecdf {
    Ecdf::from_samples(
        store
            .intervals()
            .filter(|i| i.kind == ProbeKind::OnDemand)
            .filter_map(|i| i.duration().map(|d| d.as_hours_f64()))
            .collect(),
    )
}

/// Figure 5.10: P(capacity-not-available) for spot probes as a function
/// of the spot/od price ratio; `region` restricts to one region.
///
/// Only the periodic `CheckCapacity` stream (§3.3) counts:
/// cross-verification probes and recovery re-probes fired during
/// on-demand squeezes would otherwise bias the high-price buckets.
pub fn spot_cna_curve(store: &StoreRead<'_>, region: Option<Region>) -> Vec<CurvePoint> {
    use crate::probe::ProbeTrigger;
    let mut rate = BucketedRate::new(&spot_ratio_buckets());
    for p in store.probes() {
        if p.kind != ProbeKind::Spot || !matches!(p.trigger, ProbeTrigger::Periodic) {
            continue;
        }
        if region.is_some_and(|r| p.market.region() != r) {
            continue;
        }
        // Only capacity-informative outcomes count as trials: a
        // fulfilled probe or a capacity rejection.
        let cna = match p.outcome {
            ProbeOutcome::CapacityNotAvailable => true,
            ProbeOutcome::Fulfilled => false,
            _ => continue,
        };
        rate.observe(p.spot_ratio, cna);
    }
    (0..rate.edges().len())
        .map(|b| CurvePoint {
            threshold: rate.edges()[b],
            probability: rate.rate(b),
            trials: rate.trials(b),
        })
        .collect()
}

/// Figure 5.11: where spot capacity-not-available events land, as a
/// share per region per price bucket. Returns `(edges, region →
/// share-of-all-CNA per bucket)`.
pub fn spot_cna_distribution(store: &StoreRead<'_>) -> (Vec<f64>, HashMap<Region, Vec<f64>>) {
    let edges = spot_ratio_buckets();
    let bucketer = BucketedRate::new(&edges);
    let mut counts: HashMap<Region, Vec<u64>> = HashMap::new();
    let mut total = 0u64;
    for p in store.probes() {
        use crate::probe::ProbeTrigger;
        if p.kind == ProbeKind::Spot
            && p.outcome == ProbeOutcome::CapacityNotAvailable
            && matches!(p.trigger, ProbeTrigger::Periodic)
        {
            if let Some(b) = bucketer.bucket_of(p.spot_ratio) {
                counts
                    .entry(p.market.region())
                    .or_insert_with(|| vec![0; edges.len()])[b] += 1;
                total += 1;
            }
        }
    }
    let shares = counts
        .into_iter()
        .map(|(r, c)| {
            (
                r,
                c.iter()
                    .map(|&n| {
                        if total > 0 {
                            n as f64 / total as f64
                        } else {
                            0.0
                        }
                    })
                    .collect(),
            )
        })
        .collect();
    (edges, shares)
}

/// The four relations of Figure 5.12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossRelation {
    /// On-demand detection → related on-demand unavailability.
    OdOd,
    /// Spot detection → related spot unavailability.
    SpotSpot,
    /// On-demand detection → related spot unavailability.
    OdSpot,
    /// Spot detection → related on-demand unavailability.
    SpotOd,
}

impl CrossRelation {
    /// All four relations in figure order.
    pub const ALL: [CrossRelation; 4] = [
        CrossRelation::OdOd,
        CrossRelation::SpotSpot,
        CrossRelation::OdSpot,
        CrossRelation::SpotOd,
    ];

    /// The figure's label for the relation.
    pub fn label(self) -> &'static str {
        match self {
            CrossRelation::OdOd => "od-od",
            CrossRelation::SpotSpot => "spot-spot",
            CrossRelation::OdSpot => "od-spot",
            CrossRelation::SpotOd => "spot-od",
        }
    }
}

/// Figure 5.12: after a detection of one kind, the probability that a
/// *related* market (same family, same region, a different zone) is
/// detected unavailable in the other (or same) kind within each window.
pub fn cross_market_unavailability(
    store: &StoreRead<'_>,
    windows: &[SimDuration],
) -> HashMap<CrossRelation, Vec<f64>> {
    let od_idx = detections_by_group(store, ProbeKind::OnDemand);
    let spot_idx = detections_by_group(store, ProbeKind::Spot);
    let mut out: HashMap<CrossRelation, Vec<f64>> = HashMap::new();

    for relation in CrossRelation::ALL {
        let (from_kind, to_idx) = match relation {
            CrossRelation::OdOd => (ProbeKind::OnDemand, &od_idx),
            CrossRelation::SpotSpot => (ProbeKind::Spot, &spot_idx),
            CrossRelation::OdSpot => (ProbeKind::OnDemand, &spot_idx),
            CrossRelation::SpotOd => (ProbeKind::Spot, &od_idx),
        };
        // One pass over the interval log per relation: each trial
        // binary-searches the detection index once and then walks
        // forward, accumulating hits for every window at once.
        let mut trials = 0u64;
        let mut hits = vec![0u64; windows.len()];
        for interval in store.intervals() {
            if interval.kind != from_kind {
                continue;
            }
            let m = interval.market;
            let group = (m.region(), m.instance_type.family());
            trials += 1;
            let Some(entries) = to_idx.get(&group) else {
                continue;
            };
            let from = interval.start;
            let i = entries.partition_point(|&(t, _)| t < from);
            for (wi, &w) in windows.iter().enumerate() {
                let to = from + w;
                if entries[i..]
                    .iter()
                    .take_while(|&&(t, _)| t <= to)
                    .any(|&(_, other)| other.az != m.az)
                {
                    hits[wi] += 1;
                }
            }
        }
        let probs = hits
            .into_iter()
            .map(|h| {
                if trials > 0 {
                    h as f64 / trials as f64
                } else {
                    0.0
                }
            })
            .collect();
        out.insert(relation, probs);
    }
    out
}

/// Figure 5.3: the least bid needed to hold an instance for each horizon,
/// computed as the forward rolling maximum of a price trace. Input
/// points are `(seconds, dollars)`.
pub fn holding_price_series(
    trace: &[(u64, f64)],
    horizons: &[SimDuration],
) -> Vec<(SimDuration, Vec<(u64, f64)>)> {
    horizons
        .iter()
        .map(|&h| (h, crate::stats::rolling_forward_max(trace, h.as_secs())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeRecord, ProbeTrigger};
    use crate::store::DataStore;
    use crate::store::SpikeEvent;
    use cloud_sim::ids::{Az, Platform};
    use cloud_sim::price::Price;

    fn market(region: Region, az: u8, ty: &str) -> MarketId {
        MarketId {
            az: Az::new(region, az),
            instance_type: ty.parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(
        at: u64,
        m: MarketId,
        kind: ProbeKind,
        trigger: ProbeTrigger,
        outcome: ProbeOutcome,
        ratio: f64,
    ) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind,
            trigger,
            outcome,
            spot_ratio: ratio,
            bid: None,
            cost: Price::ZERO,
        }
    }

    fn spike(at: u64, m: MarketId, ratio: f64) -> SpikeEvent {
        SpikeEvent {
            market: m,
            at: SimTime::from_secs(at),
            ratio,
            probed: true,
        }
    }

    #[test]
    fn spike_curve_counts_hits_within_window() {
        let s = DataStore::new();
        let m = market(Region::UsEast1, 0, "c3.large");
        // Spike at t=0 (ratio 2), rejection at t=100 → hit for 900 s
        // window. Spike at t=5000 (ratio 5), no rejection → miss.
        s.record_spike(spike(0, m, 2.0));
        s.record_probe(probe(
            100,
            m,
            ProbeKind::OnDemand,
            ProbeTrigger::PriceSpike { ratio: 2.0 },
            ProbeOutcome::InsufficientCapacity,
            2.0,
        ));
        s.record_spike(spike(5000, m, 5.0));
        let curve = spike_unavailability(&s.read(), SimDuration::from_secs(900), None);
        // Threshold >=0: 2 trials, 1 hit.
        assert_eq!(curve[0].trials, 2);
        assert_eq!(curve[0].probability, Some(0.5));
        // Threshold >=5: 1 trial (the big spike), 0 hits.
        let p5 = curve.iter().find(|c| c.threshold == 5.0).unwrap();
        assert_eq!(p5.trials, 1);
        assert_eq!(p5.probability, Some(0.0));
    }

    #[test]
    fn spike_clustering_merges_within_window() {
        let s = DataStore::new();
        let m = market(Region::UsEast1, 0, "c3.large");
        // Three spikes inside one 900 s window = one trial.
        s.record_spike(spike(0, m, 1.0));
        s.record_spike(spike(300, m, 3.0));
        s.record_spike(spike(600, m, 2.0));
        let curve = spike_unavailability(&s.read(), SimDuration::from_secs(900), None);
        assert_eq!(curve[0].trials, 1);
        // The cluster carries its max ratio (3.0).
        let p3 = curve.iter().find(|c| c.threshold == 3.0).unwrap();
        assert_eq!(p3.trials, 1);
    }

    #[test]
    fn attribution_splits_by_trigger() {
        let s = DataStore::new();
        let m = market(Region::UsEast1, 0, "c3.large");
        let sib = market(Region::UsEast1, 0, "c3.xlarge");
        s.record_probe(probe(
            0,
            m,
            ProbeKind::OnDemand,
            ProbeTrigger::PriceSpike { ratio: 2.0 },
            ProbeOutcome::InsufficientCapacity,
            2.0,
        ));
        for t in [10, 20] {
            s.record_probe(probe(
                t,
                sib,
                ProbeKind::OnDemand,
                ProbeTrigger::FamilyFanout {
                    origin: m,
                    origin_ratio: 2.0,
                },
                ProbeOutcome::InsufficientCapacity,
                0.2,
            ));
        }
        let (edges, by_spike, by_related) = rejection_attribution(&s.read());
        let b = edges.iter().position(|&e| e == 2.0).unwrap();
        assert!((by_spike[b] - 1.0 / 3.0).abs() < 1e-9);
        assert!((by_related[b] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cross_az_looks_at_same_type_other_zones() {
        let s = DataStore::new();
        let m = market(Region::UsEast1, 0, "c3.large");
        let other_az = market(Region::UsEast1, 1, "c3.large");
        let other_type = market(Region::UsEast1, 1, "c3.xlarge");
        // Detection in zone a.
        s.record_probe(probe(
            0,
            m,
            ProbeKind::OnDemand,
            ProbeTrigger::PriceSpike { ratio: 2.0 },
            ProbeOutcome::InsufficientCapacity,
            2.0,
        ));
        // Same type rejected in zone b within the window → hit.
        s.record_probe(probe(
            100,
            other_az,
            ProbeKind::OnDemand,
            ProbeTrigger::CrossAzFanout {
                origin: m,
                origin_ratio: 2.0,
            },
            ProbeOutcome::InsufficientCapacity,
            0.3,
        ));
        // A different type in zone b should NOT count for Fig 5.8.
        s.record_probe(probe(
            110,
            other_type,
            ProbeKind::OnDemand,
            ProbeTrigger::FamilyFanout {
                origin: m,
                origin_ratio: 2.0,
            },
            ProbeOutcome::InsufficientCapacity,
            0.3,
        ));
        let curve = cross_az_unavailability(&s.read(), SimDuration::from_secs(900));
        // Three intervals opened, but only the zone-a one is an initial
        // (non-related) detection... the cross-az one was opened via a
        // related trigger, so trials == 1.
        assert_eq!(curve[0].trials, 1);
        assert_eq!(curve[0].probability, Some(1.0));
    }

    #[test]
    fn duration_cdf_uses_closed_od_intervals() {
        let s = DataStore::new();
        let m = market(Region::UsEast1, 0, "c3.large");
        s.record_probe(probe(
            0,
            m,
            ProbeKind::OnDemand,
            ProbeTrigger::PriceSpike { ratio: 2.0 },
            ProbeOutcome::InsufficientCapacity,
            2.0,
        ));
        s.record_probe(probe(
            7200,
            m,
            ProbeKind::OnDemand,
            ProbeTrigger::Recovery,
            ProbeOutcome::Fulfilled,
            0.2,
        ));
        let cdf = duration_cdf(&s.read());
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf.quantile(1.0), Some(2.0), "two hours");
    }

    #[test]
    fn spot_cna_curve_buckets_by_ratio() {
        let s = DataStore::new();
        let m = market(Region::UsEast1, 0, "c3.large");
        // Low ratio: 1 CNA + 1 fulfilled → 50%.
        for (t, outcome) in [
            (0, ProbeOutcome::CapacityNotAvailable),
            (1000, ProbeOutcome::Fulfilled),
        ] {
            s.record_probe(probe(
                t,
                m,
                ProbeKind::Spot,
                ProbeTrigger::Periodic,
                outcome,
                0.05,
            ));
        }
        // High ratio: fulfilled only.
        s.record_probe(probe(
            2000,
            m,
            ProbeKind::Spot,
            ProbeTrigger::Periodic,
            ProbeOutcome::Fulfilled,
            0.9,
        ));
        // Held outcomes are not capacity trials.
        s.record_probe(probe(
            3000,
            m,
            ProbeKind::Spot,
            ProbeTrigger::Periodic,
            ProbeOutcome::PriceTooLow,
            0.05,
        ));
        let curve = spot_cna_curve(&s.read(), None);
        assert_eq!(curve[0].trials, 2);
        assert_eq!(curve[0].probability, Some(0.5));
        let hi = curve.iter().find(|c| c.threshold == 0.5).unwrap();
        assert_eq!(hi.trials, 1);
        assert_eq!(hi.probability, Some(0.0));
    }

    #[test]
    fn cross_market_relations() {
        let s = DataStore::new();
        let m = market(Region::UsEast1, 0, "c3.large");
        let related = market(Region::UsEast1, 1, "c3.xlarge");
        // od detection at t=0; related spot CNA at t=600.
        s.record_probe(probe(
            0,
            m,
            ProbeKind::OnDemand,
            ProbeTrigger::PriceSpike { ratio: 2.0 },
            ProbeOutcome::InsufficientCapacity,
            2.0,
        ));
        s.record_probe(probe(
            600,
            related,
            ProbeKind::Spot,
            ProbeTrigger::Periodic,
            ProbeOutcome::CapacityNotAvailable,
            0.1,
        ));
        let windows = [SimDuration::from_secs(300), SimDuration::from_secs(900)];
        let out = cross_market_unavailability(&s.read(), &windows);
        let od_spot = &out[&CrossRelation::OdSpot];
        assert_eq!(od_spot[0], 0.0, "600 s arrival misses the 300 s window");
        assert_eq!(od_spot[1], 1.0, "within the 900 s window");
        // spot-od: the spot detection at 600 looks forward; the od
        // rejection happened before it, so no hit.
        assert_eq!(out[&CrossRelation::SpotOd], vec![0.0, 0.0]);
    }

    #[test]
    fn holding_price_is_monotone_in_horizon() {
        let trace: Vec<(u64, f64)> = (0..100)
            .map(|i| (i * 600, 0.1 + 0.05 * ((i * 37) % 11) as f64))
            .collect();
        let series = holding_price_series(&trace, &[SimDuration::hours(1), SimDuration::hours(6)]);
        let one = &series[0].1;
        let six = &series[1].1;
        for (a, b) in one.iter().zip(six) {
            assert!(b.1 >= a.1, "longer horizons need bids at least as high");
            assert!(a.1 >= trace[0].1.min(0.1));
        }
    }
}
