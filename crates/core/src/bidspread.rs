//! The `BidSpread` probing function: find the *intrinsic* bid price —
//! the lowest bid that actually obtains a spot instance right now.
//!
//! Published spot prices lag the true market by tens of seconds
//! (§5.1.2), so during volatility a bid at the published price loses.
//! The search first finds an upper bound by doubling the bid
//! (exponential phase), then bisects between the highest losing and the
//! lowest winning bid. The paper reports convergence in 2–3 requests on
//! average and at most 6.

use cloud_sim::api::ApiError;
use cloud_sim::cloud::Cloud;
use cloud_sim::ids::MarketId;
use cloud_sim::lifecycle::SpotRequestState;
use cloud_sim::price::Price;

/// Result of one intrinsic-bid search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidSearch {
    /// The published price the search started from.
    pub published: Price,
    /// The lowest bid that obtained an instance, when one was found.
    pub intrinsic: Option<Price>,
    /// Spot requests issued.
    pub attempts: u32,
    /// Total probe cost (each winning attempt pays an hour).
    pub cost: Price,
}

/// Convergence tolerance: stop when the bracket shrinks below 2% of the
/// published price (or one tenth of a cent).
fn tolerance(published: Price) -> Price {
    published.scale(0.02).max(Price::from_micros(1_000))
}

/// Runs the `BidSpread` search on `market` with at most `max_attempts`
/// spot requests (the paper used 6).
///
/// Returns `None` if the market's capacity is unavailable (there is no
/// price at which an instance can be had) or the API throttled the
/// search before any useful observation.
pub fn find_intrinsic_bid(
    cloud: &mut Cloud,
    market: MarketId,
    max_attempts: u32,
) -> Option<BidSearch> {
    let published = cloud.oracle_published_price(market)?;
    let cap = cloud.catalog().bid_cap(market);
    let mut attempts = 0u32;
    let mut cost = Price::ZERO;
    let mut lowest_win: Option<Price> = None;
    let mut highest_loss: Option<Price> = None;
    let mut bid = published.min(cap);

    while attempts < max_attempts {
        attempts += 1;
        let submission = match cloud.request_spot_instance(market, bid) {
            Ok(s) => s,
            Err(ApiError::RequestLimitExceeded { .. }) => break,
            Err(_) => break,
        };
        match submission.status {
            SpotRequestState::Fulfilled => {
                if let Ok(charge) = cloud.terminate_spot_instance(submission.id) {
                    cost += charge;
                }
                lowest_win = Some(lowest_win.map_or(bid, |w| w.min(bid)));
                // Winning at the published price means the published
                // price *is* intrinsic; no bracket to refine.
                let floor = highest_loss.unwrap_or(published);
                if bid <= published || bid.saturating_sub(floor) <= tolerance(published) {
                    break;
                }
                bid = floor.midpoint(bid);
            }
            SpotRequestState::PriceTooLow | SpotRequestState::CapacityOversubscribed => {
                let _ = cloud.cancel_spot_request(submission.id);
                highest_loss = Some(highest_loss.map_or(bid, |l| l.max(bid)));
                match lowest_win {
                    // Exponential phase: double toward the cap.
                    None => {
                        if bid >= cap {
                            break;
                        }
                        bid = bid.scale(2.0).min(cap);
                    }
                    // Bisection phase.
                    Some(win) => {
                        if win.saturating_sub(bid) <= tolerance(published) {
                            break;
                        }
                        bid = bid.midpoint(win);
                    }
                }
            }
            SpotRequestState::CapacityNotAvailable => {
                let _ = cloud.cancel_spot_request(submission.id);
                // No price obtains an instance right now.
                return Some(BidSearch {
                    published,
                    intrinsic: None,
                    attempts,
                    cost,
                });
            }
            _ => {
                let _ = cloud.cancel_spot_request(submission.id);
                break;
            }
        }
    }

    Some(BidSearch {
        published,
        intrinsic: lowest_win,
        attempts,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::catalog::Catalog;
    use cloud_sim::config::{DemandProfile, SimConfig};

    fn quiet_cloud(seed: u64) -> Cloud {
        let mut config = SimConfig::paper(seed);
        config.demand = DemandProfile::quiet();
        let mut c = Cloud::new(Catalog::testbed(), config);
        c.warmup(10);
        c
    }

    #[test]
    fn stable_market_intrinsic_equals_published() {
        let mut cloud = quiet_cloud(1);
        let market = cloud.catalog().markets()[0];
        let result = find_intrinsic_bid(&mut cloud, market, 6).unwrap();
        assert_eq!(result.intrinsic, Some(result.published));
        assert_eq!(result.attempts, 1, "stable market: one request suffices");
        assert!(!result.cost.is_zero(), "the winning request pays an hour");
    }

    #[test]
    fn attempts_bounded() {
        let mut config = SimConfig::paper(2);
        config.demand = DemandProfile::paper_calibration();
        let mut cloud = Cloud::new(Catalog::testbed(), config);
        cloud.warmup(50);
        let markets: Vec<_> = cloud.catalog().markets().to_vec();
        for market in markets {
            if let Some(result) = find_intrinsic_bid(&mut cloud, market, 6) {
                assert!(result.attempts <= 6, "paper: at most 6 requests");
                if let Some(intrinsic) = result.intrinsic {
                    assert!(
                        intrinsic >= result.published
                            || intrinsic >= cloud.catalog().od_price(market).scale(0.05),
                        "intrinsic bid below any plausible floor"
                    );
                }
            }
        }
    }

    #[test]
    fn intrinsic_exceeds_published_during_price_rise() {
        // Force a publication lag: tick once after a surge so the true
        // price moved but the published price has not caught up. We
        // construct the situation by probing right at a tick boundary on
        // a volatile cloud and checking the invariant rather than one
        // specific market.
        let mut config = SimConfig::paper(7);
        config.demand = DemandProfile::paper_calibration();
        let mut cloud = Cloud::new(Catalog::testbed(), config);
        cloud.warmup(30);
        let mut saw_gap = false;
        for _ in 0..400 {
            cloud.tick();
            for &market in &[cloud.catalog().markets()[0], cloud.catalog().markets()[3]] {
                let published = cloud.oracle_published_price(market).unwrap();
                let truth = cloud.oracle_true_price(market).unwrap();
                if truth > published {
                    let result = find_intrinsic_bid(&mut cloud, market, 6).unwrap();
                    if let Some(intrinsic) = result.intrinsic {
                        assert!(
                            intrinsic > result.published,
                            "during a rise the intrinsic bid must exceed published"
                        );
                        saw_gap = true;
                    }
                }
            }
            if saw_gap {
                break;
            }
        }
        assert!(
            saw_gap,
            "expected at least one publication lag in 400 ticks"
        );
    }
}
