//! Probing-cost control (§3.4): windowed budgets and threshold
//! calibration.
//!
//! Every fulfilled probe pays at least one hour of server time, so
//! SpotLight budgets its spending per time window and simply stops
//! probing until the next window when the budget is consumed. Given
//! historical spike counts, [`calibrate_threshold`] picks the lowest
//! trigger threshold `T` (and a sampling probability `p`) whose expected
//! cost fits a budget.

use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};

/// Budget configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetConfig {
    /// Window length over which the budget applies.
    pub window: SimDuration,
    /// Spend limit per window; `None` means unlimited (the paper's
    /// deployment maximized data collection: `T = od price`, `p = 1`).
    pub limit: Option<Price>,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            window: SimDuration::days(1),
            limit: None,
        }
    }
}

/// Windowed budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetManager {
    config: BudgetConfig,
    window_start: SimTime,
    spent_in_window: Price,
    spent_total: Price,
    windows_exhausted: u64,
}

impl BudgetManager {
    /// Creates a manager starting its first window at `start`.
    pub fn new(config: BudgetConfig, start: SimTime) -> Self {
        BudgetManager {
            config,
            window_start: start,
            spent_in_window: Price::ZERO,
            spent_total: Price::ZERO,
            windows_exhausted: 0,
        }
    }

    fn roll(&mut self, now: SimTime) {
        while now.saturating_since(self.window_start) >= self.config.window {
            if self.exhausted() {
                self.windows_exhausted += 1;
            }
            self.window_start += self.config.window;
            self.spent_in_window = Price::ZERO;
        }
    }

    /// Whether the current window still has room for `estimated_cost`.
    pub fn allows(&mut self, now: SimTime, estimated_cost: Price) -> bool {
        self.roll(now);
        match self.config.limit {
            None => true,
            Some(limit) => self.spent_in_window + estimated_cost <= limit,
        }
    }

    /// Charges an actual probe cost.
    pub fn charge(&mut self, now: SimTime, cost: Price) {
        self.roll(now);
        self.spent_in_window += cost;
        self.spent_total += cost;
    }

    /// Whether the current window's budget is used up.
    pub fn exhausted(&self) -> bool {
        match self.config.limit {
            None => false,
            Some(limit) => self.spent_in_window >= limit,
        }
    }

    /// Spend in the current window.
    pub fn spent_in_window(&self) -> Price {
        self.spent_in_window
    }

    /// Total spend across all windows.
    pub fn spent_total(&self) -> Price {
        self.spent_total
    }

    /// Windows that ran out of budget before ending.
    pub fn windows_exhausted(&self) -> u64 {
        self.windows_exhausted
    }
}

/// Historical spike statistics for one candidate threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeRate {
    /// The candidate threshold (spot/od multiple).
    pub threshold: f64,
    /// Observed spikes at or above the threshold per window.
    pub spikes_per_window: f64,
}

/// A calibrated probing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The chosen trigger threshold `T`.
    pub threshold: f64,
    /// The chosen sampling probability `p`.
    pub sampling: f64,
    /// Expected probes per window under the calibration.
    pub expected_probes_per_window: f64,
}

/// Picks the lowest threshold `T` whose expected probing cost fits
/// `budget_per_window`, given historical spike rates (descending
/// thresholds are fine; the function sorts internally). If even the
/// highest threshold is too expensive, it keeps that threshold and
/// lowers the sampling probability `p` instead (§3.4: "By lowering p, we
/// can also lower T and sample some fraction of less-volatile events").
///
/// `cost_per_probe` should include the expected related-market fan-out
/// overhead (the paper treats fan-out as overhead deducted from the
/// triggering market's budget).
///
/// Returns `None` when `rates` is empty or the budget is zero.
pub fn calibrate_threshold(
    rates: &[SpikeRate],
    cost_per_probe: Price,
    budget_per_window: Price,
) -> Option<Calibration> {
    if rates.is_empty() || cost_per_probe.is_zero() || budget_per_window.is_zero() {
        return None;
    }
    let affordable = budget_per_window.as_dollars() / cost_per_probe.as_dollars();
    let mut sorted: Vec<SpikeRate> = rates.to_vec();
    sorted.sort_by(|a, b| a.threshold.partial_cmp(&b.threshold).expect("no NaN"));

    // Lowest threshold whose full sampling fits.
    for r in &sorted {
        if r.spikes_per_window <= affordable {
            return Some(Calibration {
                threshold: r.threshold,
                sampling: 1.0,
                expected_probes_per_window: r.spikes_per_window,
            });
        }
    }
    // Nothing fits: keep the highest threshold, sample a fraction.
    let last = sorted.last().expect("non-empty");
    let sampling = (affordable / last.spikes_per_window).clamp(0.0, 1.0);
    Some(Calibration {
        threshold: last.threshold,
        sampling,
        expected_probes_per_window: last.spikes_per_window * sampling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(limit_dollars: f64) -> BudgetConfig {
        BudgetConfig {
            window: SimDuration::hours(1),
            limit: Some(Price::from_dollars(limit_dollars)),
        }
    }

    #[test]
    fn unlimited_budget_always_allows() {
        let mut b = BudgetManager::new(BudgetConfig::default(), SimTime::ZERO);
        assert!(b.allows(SimTime::ZERO, Price::from_dollars(1e6)));
        b.charge(SimTime::ZERO, Price::from_dollars(1e6));
        assert!(!b.exhausted());
    }

    #[test]
    fn budget_blocks_and_resets_per_window() {
        let mut b = BudgetManager::new(cfg(1.0), SimTime::ZERO);
        assert!(b.allows(SimTime::from_secs(10), Price::from_dollars(0.6)));
        b.charge(SimTime::from_secs(10), Price::from_dollars(0.6));
        assert!(!b.allows(SimTime::from_secs(20), Price::from_dollars(0.6)));
        assert!(b.allows(SimTime::from_secs(20), Price::from_dollars(0.4)));
        b.charge(SimTime::from_secs(20), Price::from_dollars(0.4));
        assert!(b.exhausted());
        // Next window: fresh budget.
        assert!(b.allows(SimTime::from_secs(3700), Price::from_dollars(0.6)));
        assert_eq!(b.windows_exhausted(), 1);
        assert_eq!(b.spent_total(), Price::from_dollars(1.0));
    }

    #[test]
    fn roll_skips_multiple_windows() {
        let mut b = BudgetManager::new(cfg(1.0), SimTime::ZERO);
        b.charge(SimTime::from_secs(10), Price::from_dollars(1.0));
        assert!(b.allows(SimTime::from_secs(10 * 3600), Price::from_dollars(1.0)));
        assert_eq!(b.spent_in_window(), Price::ZERO);
    }

    #[test]
    fn calibration_picks_lowest_affordable_threshold() {
        let rates = [
            SpikeRate {
                threshold: 1.0,
                spikes_per_window: 100.0,
            },
            SpikeRate {
                threshold: 2.0,
                spikes_per_window: 20.0,
            },
            SpikeRate {
                threshold: 5.0,
                spikes_per_window: 2.0,
            },
        ];
        let c = calibrate_threshold(&rates, Price::from_dollars(0.5), Price::from_dollars(15.0))
            .unwrap();
        // Afford 30 probes: threshold 2.0 (20 spikes) fits, 1.0 doesn't.
        assert_eq!(c.threshold, 2.0);
        assert_eq!(c.sampling, 1.0);
    }

    #[test]
    fn calibration_falls_back_to_sampling() {
        let rates = [SpikeRate {
            threshold: 7.0,
            spikes_per_window: 100.0,
        }];
        let c = calibrate_threshold(&rates, Price::from_dollars(1.0), Price::from_dollars(10.0))
            .unwrap();
        assert_eq!(c.threshold, 7.0);
        assert!((c.sampling - 0.1).abs() < 1e-9);
        assert!((c.expected_probes_per_window - 10.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_degenerate_inputs() {
        assert!(
            calibrate_threshold(&[], Price::from_dollars(1.0), Price::from_dollars(1.0)).is_none()
        );
        let rates = [SpikeRate {
            threshold: 1.0,
            spikes_per_window: 1.0,
        }];
        assert!(calibrate_threshold(&rates, Price::ZERO, Price::from_dollars(1.0)).is_none());
        assert!(calibrate_threshold(&rates, Price::from_dollars(1.0), Price::ZERO).is_none());
    }
}
