//! Durable mode: the store-specific operation log, checkpoints, and
//! crash recovery layered on `spotlight-persist`.
//!
//! # The operation log
//!
//! A durable [`DataStore`] owns a [`spotlight_persist::WalHandle`] with
//! one log *stream per stripe* plus a meta stream (stream index =
//! stripe count) for store-wide events. Every `record_*` call encodes a
//! [`StoreOp`] and appends it **while holding the lock it mutated
//! under** (the market's stripe lock; the region-health lock for
//! breaker events), so each stream's frames are in exactly the order
//! the in-memory state observed them. Suppressed-probe counts are the
//! one lock-free path: their op carries the post-increment running
//! total and replays via `fetch_max`, which is idempotent and
//! order-insensitive, so no lock is needed.
//!
//! # Checkpoints and the sequence protocol
//!
//! Appends carry a global monotone sequence number assigned under the
//! mutated lock. [`DataStore::checkpoint`] briefly acquires *every*
//! stripe lock plus the region-health lock, captures the next unissued
//! sequence number and the full store state, releases, rotates the WAL
//! to a fresh generation, writes the checkpoint atomically
//! (temp + fsync + rename + dir fsync), and only then deletes
//! generations older than the one current during capture. Any op
//! sequenced at or after the captured number post-dates the snapshot —
//! wherever its frame landed — and is replayed; anything earlier is
//! already inside it and is skipped. A crash at any point in that
//! protocol leaves either the old checkpoint plus a full log, or the
//! new checkpoint plus a log tail; both recover exactly.
//!
//! # Recovery
//!
//! [`DataStore::recover`] rebuilds the store: decode the last
//! checkpoint (if any), then replay every surviving WAL generation in
//! `(generation, stream)` order through the normal in-memory ingest
//! paths, filtering each stream by a monotone per-stream sequence
//! floor — which uniformly drops both checkpoint-covered frames and
//! the duplicated-tail frames a retried append can leave behind. Frame
//! scanning stops at the first torn, truncated, or corrupt frame, so a
//! crash mid-write costs at most the unsynced tail. Recovery never
//! appends to scanned files: it reopens the log at a fresh generation.

use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger, UnavailabilityInterval};
use crate::store::{
    DataStore, EpochCell, EpochSeries, IntrinsicBidRecord, KeyState, ProbeStats, RegionHealth,
    RevocationRecord, SpikeEvent, Stripe,
};
use cloud_sim::ids::Region;
use cloud_sim::time::{SimDuration, SimTime};
use spotlight_persist::log::LogDir;
use spotlight_persist::wal::{WalConfig, WalHandle};
use spotlight_persist::{Decode, DecodeError, Encode, Reader};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

pub use spotlight_persist::FsyncPolicy;

/// Tuning knobs for a durable store's writer.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// When the log writer fsyncs (default: once per drained batch).
    pub fsync: FsyncPolicy,
    /// Bounded depth of the append queue; ingest blocks (backpressure)
    /// when the disk falls this far behind.
    pub queue_capacity: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Batch,
            queue_capacity: 4096,
        }
    }
}

/// Counters describing a durable store's log activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Operations appended to the log.
    pub appended_ops: u64,
    /// Framed bytes appended to the log.
    pub appended_bytes: u64,
    /// Fsyncs issued by the writer.
    pub fsyncs: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Raw records sealed into spill segments by compaction.
    pub spilled_records: u64,
    /// IO errors absorbed by the fire-and-forget append path.
    pub io_errors: u64,
    /// Description of the most recent IO error, if any.
    pub last_error: Option<String>,
}

/// The durable half of a [`DataStore`]: directory, WAL, and counters.
#[derive(Debug)]
pub(crate) struct DurableSink {
    pub(crate) dir: LogDir,
    pub(crate) wal: WalHandle,
    checkpoints: AtomicU64,
    spilled_records: AtomicU64,
    /// Generation the writer is currently appending to.
    current_gen: AtomicU64,
    /// Serializes checkpoints (capture + rotate + write must not
    /// interleave between two callers).
    ckpt_lock: crate::sync::Mutex<()>,
    /// Serializes durable compaction passes: spill-then-drop releases
    /// the stripe lock between snapshot and drop, so two concurrent
    /// `compact` calls could otherwise seal the same records twice and
    /// race each other's prefix drop.
    pub(crate) compact_lock: crate::sync::Mutex<()>,
    /// Errors from durable paths outside the WAL writer (spills).
    io_errors: AtomicU64,
    last_error: crate::sync::Mutex<Option<String>>,
}

impl DurableSink {
    fn new(dir: LogDir, wal: WalHandle, current_gen: u64) -> DurableSink {
        DurableSink {
            dir,
            wal,
            checkpoints: AtomicU64::new(0),
            spilled_records: AtomicU64::new(0),
            current_gen: AtomicU64::new(current_gen),
            ckpt_lock: crate::sync::Mutex::new(()),
            compact_lock: crate::sync::Mutex::new(()),
            io_errors: AtomicU64::new(0),
            last_error: crate::sync::Mutex::new(None),
        }
    }

    /// Appends one op to `stream`. Called with the mutated lock held so
    /// the stream's frame order matches state order. Encodes into a
    /// thread-local scratch buffer: this is the per-record hot path and
    /// must not allocate.
    pub(crate) fn append(&self, stream: u32, op: &StoreOp) {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            op.encode(&mut buf);
            self.wal.append(stream, &buf);
        });
    }

    fn note_error(&self, what: &str, err: &io::Error) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock() = Some(format!("{what}: {err}"));
    }
}

/// One logged store mutation. The match in `encode` is exhaustive over
/// the record types, so a new persisted record type cannot compile
/// without a wire representation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum StoreOp {
    /// A probe observation (`record_probe`).
    Probe(ProbeRecord),
    /// A spike observation (`record_spike`).
    Spike(SpikeEvent),
    /// A revocation-watch observation (`record_revocation`).
    Revocation(RevocationRecord),
    /// An intrinsic-bid measurement (`record_intrinsic_bid`).
    IntrinsicBid(IntrinsicBidRecord),
    /// The suppressed-probe running total after an increment.
    Suppressed {
        /// Post-increment value of the suppressed counter.
        total: u64,
    },
    /// A circuit breaker tripped for `region` at `at`.
    RegionDegraded {
        /// The degraded region.
        region: Region,
        /// When the episode began.
        at: SimTime,
    },
    /// A circuit breaker closed for `region` at `at`.
    RegionRecovered {
        /// The recovered region.
        region: Region,
        /// When the episode ended.
        at: SimTime,
    },
}

impl Encode for StoreOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StoreOp::Probe(p) => {
                out.push(0);
                p.encode(out);
            }
            StoreOp::Spike(s) => {
                out.push(1);
                s.encode(out);
            }
            StoreOp::Revocation(r) => {
                out.push(2);
                r.encode(out);
            }
            StoreOp::IntrinsicBid(b) => {
                out.push(3);
                b.encode(out);
            }
            StoreOp::Suppressed { total } => {
                out.push(4);
                total.encode(out);
            }
            StoreOp::RegionDegraded { region, at } => {
                out.push(5);
                region.encode(out);
                at.encode(out);
            }
            StoreOp::RegionRecovered { region, at } => {
                out.push(6);
                region.encode(out);
                at.encode(out);
            }
        }
    }
}

impl Decode for StoreOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => StoreOp::Probe(ProbeRecord::decode(r)?),
            1 => StoreOp::Spike(SpikeEvent::decode(r)?),
            2 => StoreOp::Revocation(RevocationRecord::decode(r)?),
            3 => StoreOp::IntrinsicBid(IntrinsicBidRecord::decode(r)?),
            4 => StoreOp::Suppressed {
                total: u64::decode(r)?,
            },
            5 => StoreOp::RegionDegraded {
                region: Region::decode(r)?,
                at: SimTime::decode(r)?,
            },
            6 => StoreOp::RegionRecovered {
                region: Region::decode(r)?,
                at: SimTime::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid("store op tag")),
        })
    }
}

impl Encode for ProbeKind {
    fn encode(&self, out: &mut Vec<u8>) {
        // Exhaustive: a new kind cannot silently skip persistence.
        out.push(match self {
            ProbeKind::OnDemand => 0,
            ProbeKind::Spot => 1,
            ProbeKind::InterruptionNotice => 2,
        });
    }
}

impl Decode for ProbeKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ProbeKind::OnDemand,
            1 => ProbeKind::Spot,
            2 => ProbeKind::InterruptionNotice,
            _ => return Err(DecodeError::Invalid("probe kind tag")),
        })
    }
}

impl Encode for ProbeOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ProbeOutcome::Fulfilled => 0,
            ProbeOutcome::InsufficientCapacity => 1,
            ProbeOutcome::CapacityNotAvailable => 2,
            ProbeOutcome::PriceTooLow => 3,
            ProbeOutcome::CapacityOversubscribed => 4,
            ProbeOutcome::ApiLimited => 5,
        });
    }
}

impl Decode for ProbeOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ProbeOutcome::Fulfilled,
            1 => ProbeOutcome::InsufficientCapacity,
            2 => ProbeOutcome::CapacityNotAvailable,
            3 => ProbeOutcome::PriceTooLow,
            4 => ProbeOutcome::CapacityOversubscribed,
            5 => ProbeOutcome::ApiLimited,
            _ => return Err(DecodeError::Invalid("probe outcome tag")),
        })
    }
}

impl Encode for ProbeTrigger {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProbeTrigger::PriceSpike { ratio } => {
                out.push(0);
                ratio.encode(out);
            }
            ProbeTrigger::FamilyFanout {
                origin,
                origin_ratio,
            } => {
                out.push(1);
                origin.encode(out);
                origin_ratio.encode(out);
            }
            ProbeTrigger::CrossAzFanout {
                origin,
                origin_ratio,
            } => {
                out.push(2);
                origin.encode(out);
                origin_ratio.encode(out);
            }
            ProbeTrigger::Recovery => out.push(3),
            ProbeTrigger::Periodic => out.push(4),
            ProbeTrigger::CrossVerify { origin } => {
                out.push(5);
                origin.encode(out);
            }
            ProbeTrigger::BidSearch => out.push(6),
            ProbeTrigger::RevocationWatch => out.push(7),
            ProbeTrigger::EvictionNotice { evict_at } => {
                out.push(8);
                evict_at.encode(out);
            }
        }
    }
}

impl Decode for ProbeTrigger {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ProbeTrigger::PriceSpike {
                ratio: f64::decode(r)?,
            },
            1 => ProbeTrigger::FamilyFanout {
                origin: Decode::decode(r)?,
                origin_ratio: f64::decode(r)?,
            },
            2 => ProbeTrigger::CrossAzFanout {
                origin: Decode::decode(r)?,
                origin_ratio: f64::decode(r)?,
            },
            3 => ProbeTrigger::Recovery,
            4 => ProbeTrigger::Periodic,
            5 => ProbeTrigger::CrossVerify {
                origin: Decode::decode(r)?,
            },
            6 => ProbeTrigger::BidSearch,
            7 => ProbeTrigger::RevocationWatch,
            8 => ProbeTrigger::EvictionNotice {
                evict_at: SimTime::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid("probe trigger tag")),
        })
    }
}

impl Encode for ProbeRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.market.encode(out);
        self.kind.encode(out);
        self.trigger.encode(out);
        self.outcome.encode(out);
        self.spot_ratio.encode(out);
        self.bid.encode(out);
        self.cost.encode(out);
    }
}

impl Decode for ProbeRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProbeRecord {
            at: Decode::decode(r)?,
            market: Decode::decode(r)?,
            kind: Decode::decode(r)?,
            trigger: Decode::decode(r)?,
            outcome: Decode::decode(r)?,
            spot_ratio: Decode::decode(r)?,
            bid: Decode::decode(r)?,
            cost: Decode::decode(r)?,
        })
    }
}

impl Encode for SpikeEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.at.encode(out);
        self.ratio.encode(out);
        self.probed.encode(out);
    }
}

impl Decode for SpikeEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SpikeEvent {
            market: Decode::decode(r)?,
            at: Decode::decode(r)?,
            ratio: Decode::decode(r)?,
            probed: Decode::decode(r)?,
        })
    }
}

impl Encode for RevocationRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.acquired_at.encode(out);
        self.bid.encode(out);
        self.revoked_at.encode(out);
        self.released_at.encode(out);
    }
}

impl Decode for RevocationRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RevocationRecord {
            market: Decode::decode(r)?,
            acquired_at: Decode::decode(r)?,
            bid: Decode::decode(r)?,
            revoked_at: Decode::decode(r)?,
            released_at: Decode::decode(r)?,
        })
    }
}

impl Encode for IntrinsicBidRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.at.encode(out);
        self.published.encode(out);
        self.intrinsic.encode(out);
        self.attempts.encode(out);
    }
}

impl Decode for IntrinsicBidRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(IntrinsicBidRecord {
            market: Decode::decode(r)?,
            at: Decode::decode(r)?,
            published: Decode::decode(r)?,
            intrinsic: Decode::decode(r)?,
            attempts: Decode::decode(r)?,
        })
    }
}

impl Encode for UnavailabilityInterval {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.kind.encode(out);
        self.start.encode(out);
        self.end.encode(out);
        self.detect_ratio.encode(out);
        self.detected_via_related.encode(out);
    }
}

impl Decode for UnavailabilityInterval {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(UnavailabilityInterval {
            market: Decode::decode(r)?,
            kind: Decode::decode(r)?,
            start: Decode::decode(r)?,
            end: Decode::decode(r)?,
            detect_ratio: Decode::decode(r)?,
            detected_via_related: Decode::decode(r)?,
        })
    }
}

impl Encode for RegionHealth {
    fn encode(&self, out: &mut Vec<u8>) {
        self.degraded.encode(out);
        self.since.encode(out);
        self.degraded_secs.encode(out);
        self.trips.encode(out);
    }
}

impl Decode for RegionHealth {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RegionHealth {
            degraded: Decode::decode(r)?,
            since: Decode::decode(r)?,
            degraded_secs: Decode::decode(r)?,
            trips: Decode::decode(r)?,
        })
    }
}

impl Encode for ProbeStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.informative.encode(out);
        self.rejections.encode(out);
    }
}

impl Decode for ProbeStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProbeStats {
            informative: Decode::decode(r)?,
            rejections: Decode::decode(r)?,
        })
    }
}

impl Encode for EpochCell {
    fn encode(&self, out: &mut Vec<u8>) {
        self.informative.encode(out);
        self.rejections.encode(out);
        self.unavail_secs.encode(out);
    }
}

impl Decode for EpochCell {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EpochCell {
            informative: Decode::decode(r)?,
            rejections: Decode::decode(r)?,
            unavail_secs: Decode::decode(r)?,
        })
    }
}

impl Encode for EpochSeries {
    fn encode(&self, out: &mut Vec<u8>) {
        self.first.encode(out);
        self.cells.encode(out);
    }
}

impl Decode for EpochSeries {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EpochSeries {
            first: Decode::decode(r)?,
            cells: Decode::decode(r)?,
        })
    }
}

impl Encode for KeyState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.stats.encode(out);
        self.intervals.encode(out);
        self.open.encode(out);
        self.closed_intervals.encode(out);
        self.rejection_times.encode(out);
        self.last_informative.encode(out);
        self.epochs.encode(out);
        self.disordered.encode(out);
    }
}

impl Decode for KeyState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(KeyState {
            stats: Decode::decode(r)?,
            intervals: Decode::decode(r)?,
            open: Decode::decode(r)?,
            closed_intervals: Decode::decode(r)?,
            rejection_times: Decode::decode(r)?,
            last_informative: Decode::decode(r)?,
            epochs: Decode::decode(r)?,
            disordered: Decode::decode(r)?,
        })
    }
}

fn encode_map<K: Encode, V: Encode, S: BuildHasher>(map: &HashMap<K, V, S>, out: &mut Vec<u8>) {
    map.len().encode(out);
    for (k, v) in map {
        k.encode(out);
        v.encode(out);
    }
}

fn decode_map<K, V, S>(r: &mut Reader<'_>) -> Result<HashMap<K, V, S>, DecodeError>
where
    K: Decode + Eq + Hash,
    V: Decode,
    S: BuildHasher + Default,
{
    let len = usize::decode(r)?;
    if len > r.remaining() {
        return Err(DecodeError::Invalid("map length"));
    }
    let mut map = HashMap::with_capacity_and_hasher(len, S::default());
    for _ in 0..len {
        let k = K::decode(r)?;
        let v = V::decode(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

impl Encode for Stripe {
    fn encode(&self, out: &mut Vec<u8>) {
        self.probes.encode(out);
        encode_map(&self.probes_by_market, out);
        self.spikes.encode(out);
        encode_map(&self.spike_ratios_by_epoch, out);
        self.intervals.encode(out);
        encode_map(&self.keys, out);
        encode_map(&self.od_rejections_by_region, out);
        self.revocations.encode(out);
        encode_map(&self.revocations_by_market, out);
        self.intrinsic_bids.encode(out);
    }
}

impl Decode for Stripe {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Stripe {
            probes: Decode::decode(r)?,
            probes_by_market: decode_map(r)?,
            spikes: Decode::decode(r)?,
            spike_ratios_by_epoch: decode_map(r)?,
            intervals: Decode::decode(r)?,
            keys: decode_map(r)?,
            od_rejections_by_region: decode_map(r)?,
            revocations: Decode::decode(r)?,
            revocations_by_market: decode_map(r)?,
            intrinsic_bids: Decode::decode(r)?,
        })
    }
}

fn bad_data(err: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

fn corrupt(what: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

/// Encodes every raw record of `stripe` older than `before` for
/// spilling. Memory-only, so it is cheap enough to run under the
/// stripe lock; the slow segment write is [`write_spill`].
pub(crate) fn encode_spill(stripe: &Stripe, before: SimTime) -> Vec<Vec<u8>> {
    let mut records: Vec<Vec<u8>> = Vec::new();
    for p in &stripe.probes {
        if p.at < before {
            records.push(StoreOp::Probe(*p).to_bytes());
        }
    }
    for s in &stripe.spikes {
        if s.at < before {
            records.push(StoreOp::Spike(*s).to_bytes());
        }
    }
    records
}

/// Seals pre-encoded `records` into a spill segment for stripe `idx`.
/// Synchronous disk IO — callers must **not** hold the stripe lock, so
/// ingest and reads proceed while the segment lands. Returns `false` —
/// telling the caller to *keep* the raw slabs — if the segment could
/// not be written; spill-then-drop is the no-data-loss invariant of
/// durable compaction.
pub(crate) fn write_spill(sink: &DurableSink, idx: usize, records: &[Vec<u8>]) -> bool {
    if records.is_empty() {
        return true;
    }
    match sink.dir.write_spill(idx as u32, records) {
        Ok(_) => {
            sink.spilled_records
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            true
        }
        Err(err) => {
            sink.note_error("spill", &err);
            false
        }
    }
}

impl DataStore {
    /// Stream index carrying store-wide (non-stripe) ops.
    pub(crate) fn meta_stream(&self) -> u32 {
        self.stripes.len() as u32
    }

    /// Creates an empty **durable** store rooted at `dir`, with the
    /// default layout.
    ///
    /// # Errors
    ///
    /// Fails if `dir` cannot be initialized (or already holds a store).
    pub fn create_durable(dir: &Path, opts: DurableOptions) -> io::Result<DataStore> {
        DataStore::create_durable_with_layout(
            dir,
            opts,
            crate::store::DEFAULT_STRIPES,
            crate::store::DEFAULT_EPOCH,
        )
    }

    /// Creates an empty durable store with an explicit layout.
    ///
    /// # Errors
    ///
    /// Fails if `dir` cannot be initialized (or already holds a store).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero or `epoch` is zero-length, like
    /// [`DataStore::with_layout`].
    pub fn create_durable_with_layout(
        dir: &Path,
        opts: DurableOptions,
        stripes: usize,
        epoch: SimDuration,
    ) -> io::Result<DataStore> {
        let mut store = DataStore::with_layout(stripes, epoch);
        let mut app_meta = Vec::new();
        (stripes as u32).encode(&mut app_meta);
        epoch.as_secs().encode(&mut app_meta);
        let log = LogDir::create(dir, stripes as u32 + 1, &app_meta)?;
        let wal = WalHandle::open(
            &log,
            WalConfig {
                streams: stripes as u32 + 1,
                fsync: opts.fsync,
                queue_capacity: opts.queue_capacity,
            },
            0,
            0,
        )?;
        store.durable = Some(DurableSink::new(log, wal, 0));
        Ok(store)
    }

    /// Rebuilds a store from `dir`: last checkpoint plus the surviving
    /// log tail, with default writer options for the reopened log.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors, a damaged header/checkpoint, or an
    /// undecodable op (all meaning something other than a crash-torn
    /// tail happened to the directory).
    pub fn recover(dir: &Path) -> io::Result<DataStore> {
        DataStore::recover_with(dir, DurableOptions::default())
    }

    /// [`DataStore::recover`] with explicit writer options.
    ///
    /// # Errors
    ///
    /// See [`DataStore::recover`].
    pub fn recover_with(dir: &Path, opts: DurableOptions) -> io::Result<DataStore> {
        let (log, dir_meta) = LogDir::open(dir)?;
        let mut mr = Reader::new(&dir_meta.app_meta);
        let stripes = u32::decode(&mut mr).map_err(bad_data)? as usize;
        let epoch_secs = u64::decode(&mut mr).map_err(bad_data)?;
        mr.expect_empty().map_err(bad_data)?;
        if dir_meta.streams != stripes as u32 + 1 || stripes == 0 || epoch_secs == 0 {
            return Err(corrupt("header layout mismatch"));
        }
        let mut store = DataStore::with_layout(stripes, SimDuration::from_secs(epoch_secs));

        // 1. The checkpoint, if one was ever completed.
        let mut next_seq = 0u64;
        let mut min_gen = 0u64;
        if let Some(sections) = log.read_checkpoint()? {
            if sections.len() != stripes + 1 {
                return Err(corrupt("checkpoint section count mismatch"));
            }
            let mut r = Reader::new(&sections[0]);
            let recorded = u64::decode(&mut r).map_err(bad_data)?;
            let cost = u64::decode(&mut r).map_err(bad_data)?;
            let suppressed = u64::decode(&mut r).map_err(bad_data)?;
            next_seq = u64::decode(&mut r).map_err(bad_data)?;
            min_gen = u64::decode(&mut r).map_err(bad_data)?;
            let health: HashMap<Region, RegionHealth> = decode_map(&mut r).map_err(bad_data)?;
            r.expect_empty().map_err(bad_data)?;
            store.recorded_probes.store(recorded, Ordering::Relaxed);
            store.total_cost_micros.store(cost, Ordering::Relaxed);
            store.suppressed_probes.store(suppressed, Ordering::Relaxed);
            *store.region_health.write() = health;
            for (i, section) in sections[1..].iter().enumerate() {
                *store.stripes[i].write() = Stripe::from_bytes(section).map_err(bad_data)?;
            }
        }

        // 2. Replay the log tail. Per-stream monotone sequence floors
        // drop checkpoint-covered frames and retried-append duplicates
        // alike; the frame scanner already trimmed torn tails.
        let mut floor = vec![next_seq; stripes + 1];
        let mut max_gen = min_gen;
        let mut max_seq = next_seq;
        for (generation, stream) in log.list_wal()? {
            max_gen = max_gen.max(generation);
            if generation < min_gen || stream as usize > stripes {
                continue;
            }
            let scanned = log.read_wal(generation, stream)?;
            for frame in scanned.frames {
                max_seq = max_seq.max(frame.seq + 1);
                let op = StoreOp::from_bytes(&frame.body).map_err(bad_data)?;
                if let StoreOp::Suppressed { total } = op {
                    // Monotone and idempotent: applied regardless of the
                    // sequence floor, which makes the lock-free
                    // suppressed path correct under any interleaving
                    // with a concurrent checkpoint.
                    store.suppressed_probes.fetch_max(total, Ordering::Relaxed);
                    continue;
                }
                if frame.seq < floor[stream as usize] {
                    continue;
                }
                floor[stream as usize] = frame.seq + 1;
                store.apply(op);
            }
        }

        // 3. Never append after a possibly-torn tail: reopen the log at
        // a fresh generation.
        let new_gen = max_gen + 1;
        let wal = WalHandle::open(
            &log,
            WalConfig {
                streams: stripes as u32 + 1,
                fsync: opts.fsync,
                queue_capacity: opts.queue_capacity,
            },
            new_gen,
            max_seq,
        )?;
        store.durable = Some(DurableSink::new(log, wal, new_gen));
        Ok(store)
    }

    /// Applies a replayed op through the normal in-memory ingest paths
    /// (`durable` is still unset during replay, so nothing re-logs).
    fn apply(&self, op: StoreOp) {
        match op {
            StoreOp::Probe(p) => {
                self.record_probe(p);
            }
            StoreOp::Spike(s) => self.record_spike(s),
            StoreOp::Revocation(r) => self.record_revocation(r),
            StoreOp::IntrinsicBid(b) => self.record_intrinsic_bid(b),
            StoreOp::Suppressed { total } => {
                self.suppressed_probes.fetch_max(total, Ordering::Relaxed);
            }
            StoreOp::RegionDegraded { region, at } => self.mark_region_degraded(region, at),
            StoreOp::RegionRecovered { region, at } => self.mark_region_recovered(region, at),
        }
    }

    /// Whether this store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Forces everything appended so far onto disk. A no-op `Ok` for
    /// in-memory stores.
    ///
    /// # Errors
    ///
    /// Returns the first IO error the log writer hit since the last
    /// flush.
    pub fn flush(&self) -> io::Result<()> {
        match &self.durable {
            Some(d) => d.wal.flush(),
            None => Ok(()),
        }
    }

    /// Writes a full-state checkpoint and prunes the log behind it.
    /// Recovery cost is then one checkpoint load plus the tail since.
    ///
    /// Checkpointing briefly blocks all ingest (it takes every stripe
    /// lock to capture a consistent snapshot). It is caller-driven —
    /// there is no automatic trigger — so ingest paths can never
    /// self-deadlock against it.
    ///
    /// # Errors
    ///
    /// `Unsupported` for in-memory stores; otherwise filesystem errors.
    /// On error the previous checkpoint and the full log remain, so the
    /// store stays recoverable.
    pub fn checkpoint(&self) -> io::Result<()> {
        let Some(d) = &self.durable else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "checkpoint on an in-memory store",
            ));
        };
        let _ckpt = d.ckpt_lock.lock();
        let mut sections = Vec::with_capacity(self.stripes.len() + 1);
        let capture_gen;
        {
            // Capture under every lock: ops sequenced before `next_seq`
            // are inside this snapshot, everything at or after it is
            // replayed on recovery.
            let guards: Vec<_> = self.stripes.iter().map(|s| s.write()).collect();
            let health = self.region_health.write();
            let next_seq = d.wal.next_seq();
            capture_gen = d.current_gen.load(Ordering::Relaxed);
            let mut meta = Vec::new();
            self.recorded_probes
                .load(Ordering::Relaxed)
                .encode(&mut meta);
            self.total_cost_micros
                .load(Ordering::Relaxed)
                .encode(&mut meta);
            self.suppressed_probes
                .load(Ordering::Relaxed)
                .encode(&mut meta);
            next_seq.encode(&mut meta);
            capture_gen.encode(&mut meta);
            encode_map(&health, &mut meta);
            sections.push(meta);
            for guard in &guards {
                sections.push(guard.to_bytes());
            }
        }
        // Rotate first: generations before `capture_gen` then hold only
        // checkpoint-covered sequence numbers and can be deleted once
        // the checkpoint is durable.
        let new_gen = d.wal.rotate()?;
        d.current_gen.store(new_gen, Ordering::Relaxed);
        d.dir.write_checkpoint(&sections)?;
        d.dir.delete_wal_before(capture_gen)?;
        d.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Log/checkpoint/spill counters; `None` for in-memory stores.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        let d = self.durable.as_ref()?;
        let ws = d.wal.stats();
        let last_error = d
            .last_error
            .lock()
            .clone()
            .or_else(|| ws.last_error.lock().expect("stats lock").clone());
        Some(DurabilityStats {
            appended_ops: ws.appended_ops.load(Ordering::Relaxed),
            appended_bytes: ws.appended_bytes.load(Ordering::Relaxed),
            fsyncs: ws.fsyncs.load(Ordering::Relaxed),
            checkpoints: d.checkpoints.load(Ordering::Relaxed),
            spilled_records: d.spilled_records.load(Ordering::Relaxed),
            io_errors: ws.io_errors.load(Ordering::Relaxed) + d.io_errors.load(Ordering::Relaxed),
            last_error,
        })
    }

    /// Total on-disk bytes of the store directory (WAL + checkpoint +
    /// spill segments); `None` for in-memory stores or on a read error.
    pub fn disk_bytes(&self) -> Option<u64> {
        self.durable.as_ref().and_then(|d| d.dir.disk_bytes().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeOutcome;
    use cloud_sim::ids::{Az, MarketId, Platform};
    use cloud_sim::price::Price;
    use spotlight_persist::tempdir::TempDir;

    fn market(i: u8) -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, i % 3),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(at: u64, m: MarketId, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::PriceSpike { ratio: 2.0 },
            outcome,
            spot_ratio: 2.0,
            bid: None,
            cost: Price::from_dollars(0.1),
        }
    }

    fn op_round_trip(op: StoreOp) {
        let bytes = op.to_bytes();
        assert_eq!(StoreOp::from_bytes(&bytes).expect("decode"), op);
    }

    /// Satellite: every `ProbeKind` and `ProbeTrigger` variant
    /// round-trips, with the variant lists produced by compile-time
    /// exhaustive matches — adding a variant upstream breaks this
    /// build, not just coverage.
    #[test]
    fn probe_kind_and_trigger_every_variant_round_trips() {
        let all_kinds: Vec<ProbeKind> = match ProbeKind::OnDemand {
            ProbeKind::OnDemand | ProbeKind::Spot | ProbeKind::InterruptionNotice => vec![
                ProbeKind::OnDemand,
                ProbeKind::Spot,
                ProbeKind::InterruptionNotice,
            ],
        };
        assert_eq!(all_kinds.len(), 3);
        let all_triggers: Vec<ProbeTrigger> = match ProbeTrigger::Recovery {
            ProbeTrigger::PriceSpike { .. }
            | ProbeTrigger::FamilyFanout { .. }
            | ProbeTrigger::CrossAzFanout { .. }
            | ProbeTrigger::Recovery
            | ProbeTrigger::Periodic
            | ProbeTrigger::CrossVerify { .. }
            | ProbeTrigger::BidSearch
            | ProbeTrigger::RevocationWatch
            | ProbeTrigger::EvictionNotice { .. } => vec![
                ProbeTrigger::PriceSpike { ratio: 2.5 },
                ProbeTrigger::FamilyFanout {
                    origin: market(0),
                    origin_ratio: 3.0,
                },
                ProbeTrigger::CrossAzFanout {
                    origin: market(1),
                    origin_ratio: 1.5,
                },
                ProbeTrigger::Recovery,
                ProbeTrigger::Periodic,
                ProbeTrigger::CrossVerify { origin: market(2) },
                ProbeTrigger::BidSearch,
                ProbeTrigger::RevocationWatch,
                ProbeTrigger::EvictionNotice {
                    evict_at: SimTime::from_secs(7200),
                },
            ],
        };
        assert_eq!(all_triggers.len(), 9);
        let all_outcomes: Vec<ProbeOutcome> = match ProbeOutcome::Fulfilled {
            ProbeOutcome::Fulfilled
            | ProbeOutcome::InsufficientCapacity
            | ProbeOutcome::CapacityNotAvailable
            | ProbeOutcome::PriceTooLow
            | ProbeOutcome::CapacityOversubscribed
            | ProbeOutcome::ApiLimited => vec![
                ProbeOutcome::Fulfilled,
                ProbeOutcome::InsufficientCapacity,
                ProbeOutcome::CapacityNotAvailable,
                ProbeOutcome::PriceTooLow,
                ProbeOutcome::CapacityOversubscribed,
                ProbeOutcome::ApiLimited,
            ],
        };
        for kind in &all_kinds {
            for trigger in &all_triggers {
                for outcome in &all_outcomes {
                    let mut p = probe(1234, market(0), *outcome);
                    p.kind = *kind;
                    p.trigger = *trigger;
                    p.bid = Some(Price::from_dollars(0.07));
                    op_round_trip(StoreOp::Probe(p));
                }
            }
        }
    }

    #[test]
    fn store_op_non_probe_variants_round_trip() {
        op_round_trip(StoreOp::Spike(SpikeEvent {
            market: market(0),
            at: SimTime::from_secs(42),
            ratio: 3.25,
            probed: false,
        }));
        op_round_trip(StoreOp::Revocation(RevocationRecord {
            market: market(1),
            acquired_at: SimTime::from_secs(100),
            bid: Price::from_dollars(0.2),
            revoked_at: Some(SimTime::from_secs(900)),
            released_at: Some(SimTime::from_secs(900)),
        }));
        op_round_trip(StoreOp::IntrinsicBid(IntrinsicBidRecord {
            market: market(2),
            at: SimTime::from_secs(55),
            published: Price::from_dollars(0.1),
            intrinsic: Price::from_dollars(0.04),
            attempts: 3,
        }));
        op_round_trip(StoreOp::Suppressed { total: 17 });
        op_round_trip(StoreOp::RegionDegraded {
            region: Region::EuWest1,
            at: SimTime::from_secs(5),
        });
        op_round_trip(StoreOp::RegionRecovered {
            region: Region::EuWest1,
            at: SimTime::from_secs(65),
        });
    }

    #[test]
    fn durable_ingest_recovers_identically() {
        let tmp = TempDir::new("durable-roundtrip");
        let dir = tmp.path().join("store");
        {
            let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
            for t in 0..50u64 {
                let outcome = if t % 7 == 0 {
                    ProbeOutcome::InsufficientCapacity
                } else {
                    ProbeOutcome::Fulfilled
                };
                store.record_probe(probe(t * 60, market((t % 5) as u8), outcome));
            }
            store.record_spike(SpikeEvent {
                market: market(0),
                at: SimTime::from_secs(30),
                ratio: 4.0,
                probed: true,
            });
            store.record_suppressed();
            store.record_suppressed();
            store.mark_region_degraded(Region::EuWest1, SimTime::from_secs(10));
            store.mark_region_recovered(Region::EuWest1, SimTime::from_secs(400));
            store.record_revocation(RevocationRecord {
                market: market(1),
                acquired_at: SimTime::from_secs(5),
                bid: Price::from_dollars(0.3),
                revoked_at: None,
                released_at: Some(SimTime::from_secs(3600)),
            });
            store.record_intrinsic_bid(IntrinsicBidRecord {
                market: market(2),
                at: SimTime::from_secs(80),
                published: Price::from_dollars(0.09),
                intrinsic: Price::from_dollars(0.05),
                attempts: 2,
            });
            assert!(store.is_durable());
            let stats = store.durability_stats().expect("stats");
            assert_eq!(stats.appended_ops, 50 + 1 + 2 + 2 + 1 + 1);
            assert_eq!(stats.io_errors, 0);
        } // drop flushes and joins the writer

        let recovered = DataStore::recover(&dir).expect("recover");
        assert_eq!(recovered.len(), 50);
        assert_eq!(recovered.total_cost(), Price::from_dollars(5.0));
        assert_eq!(recovered.suppressed_probes(), 2);
        let health = recovered.region_health(Region::EuWest1).expect("health");
        assert_eq!(health.degraded_secs, 390);
        let r = recovered.read();
        assert_eq!(r.probes().count(), 50);
        assert_eq!(r.spikes_at_or_above(3.0), 1);
        assert_eq!(r.revocations().count(), 1);
        assert_eq!(r.intrinsic_bids().count(), 1);
        for i in 0..5u8 {
            assert!(r.probe_stats(market(i), ProbeKind::OnDemand).informative > 0);
        }
    }

    #[test]
    fn checkpoint_prunes_log_and_recovery_replays_tail() {
        let tmp = TempDir::new("durable-ckpt");
        let dir = tmp.path().join("store");
        {
            let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
            for t in 0..30u64 {
                store.record_probe(probe(t * 60, market(0), ProbeOutcome::Fulfilled));
            }
            store.checkpoint().expect("checkpoint");
            for t in 30..40u64 {
                store.record_probe(probe(t * 60, market(1), ProbeOutcome::InsufficientCapacity));
            }
            assert_eq!(store.durability_stats().expect("stats").checkpoints, 1);
        }
        let recovered = DataStore::recover(&dir).expect("recover");
        assert_eq!(recovered.len(), 40);
        let r = recovered.read();
        assert_eq!(r.probes_of(market(0)).count(), 30);
        assert_eq!(r.probes_of(market(1)).count(), 10);
        assert!(r.is_unavailable(market(1), ProbeKind::OnDemand));
        // A second recovery of the recovered directory still agrees.
        drop(r);
        drop(recovered);
        let again = DataStore::recover(&dir).expect("recover again");
        assert_eq!(again.len(), 40);
    }

    #[test]
    fn checkpoint_racing_ingest_never_double_counts() {
        // Regression: the probe counters used to bump before the stripe
        // lock was taken, so a checkpoint could capture an in-flight
        // probe's counter increment while its WAL frame got a sequence
        // number at or past the captured floor — counted in the
        // snapshot *and* replayed on recovery.
        let tmp = TempDir::new("durable-ckpt-race");
        let dir = tmp.path().join("store");
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 300;
        {
            let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
            std::thread::scope(|scope| {
                for w in 0..WRITERS {
                    let store = &store;
                    scope.spawn(move || {
                        for t in 0..PER_WRITER {
                            store.record_probe(probe(
                                t * 60,
                                market(w as u8),
                                ProbeOutcome::Fulfilled,
                            ));
                        }
                    });
                }
                scope.spawn(|| {
                    for _ in 0..5 {
                        store.checkpoint().expect("checkpoint");
                    }
                });
            });
        }
        let recovered = DataStore::recover(&dir).expect("recover");
        let total = (WRITERS * PER_WRITER) as usize;
        assert_eq!(recovered.len(), total);
        assert_eq!(recovered.read().probes().count(), total);
        assert_eq!(
            recovered.total_cost(),
            Price::from_micros(Price::from_dollars(0.1).as_micros() * total as u64)
        );
    }

    #[test]
    fn durable_compaction_spills_before_dropping() {
        let tmp = TempDir::new("durable-spill");
        let dir = tmp.path().join("store");
        let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
        for t in 0..100u64 {
            store.record_probe(probe(
                t * 100,
                market((t % 4) as u8),
                ProbeOutcome::Fulfilled,
            ));
        }
        let stats = store.compact(SimTime::from_secs(5000));
        assert!(stats.dropped_probes > 0);
        let dstats = store.durability_stats().expect("stats");
        assert_eq!(dstats.spilled_records, stats.dropped_probes);
        assert_eq!(dstats.io_errors, 0);
        assert!(store.disk_bytes().expect("disk bytes") > 0);
    }

    #[test]
    fn checkpoint_on_in_memory_store_is_unsupported() {
        let store = DataStore::new();
        assert!(!store.is_durable());
        assert!(store.flush().is_ok());
        assert_eq!(store.durability_stats(), None);
        assert_eq!(store.disk_bytes(), None);
        assert_eq!(
            store.checkpoint().expect_err("must fail").kind(),
            io::ErrorKind::Unsupported
        );
    }
}
