//! Durable mode: the store-specific operation log, checkpoints, and
//! crash recovery layered on `spotlight-persist`.
//!
//! # The operation log
//!
//! A durable [`DataStore`] owns a [`spotlight_persist::WalHandle`] with
//! one log *stream per stripe* plus a meta stream (stream index =
//! stripe count) for store-wide events. Every `record_*` call encodes a
//! [`StoreOp`] and appends it **while holding the lock it mutated
//! under** (the market's stripe lock; the region-health lock for
//! breaker events), so each stream's frames are in exactly the order
//! the in-memory state observed them. Suppressed-probe counts are the
//! one lock-free path: their op carries the post-increment running
//! total and replays via `fetch_max`, which is idempotent and
//! order-insensitive, so no lock is needed.
//!
//! # Checkpoints and the sequence protocol
//!
//! Appends carry a global monotone sequence number assigned under the
//! mutated lock. [`DataStore::checkpoint`] briefly acquires *every*
//! stripe lock plus the region-health lock, captures the next unissued
//! sequence number and the full store state, releases, rotates the WAL
//! to a fresh generation, writes the checkpoint atomically
//! (temp + fsync + rename + dir fsync), and only then deletes
//! generations older than the one current during capture. Any op
//! sequenced at or after the captured number post-dates the snapshot —
//! wherever its frame landed — and is replayed; anything earlier is
//! already inside it and is skipped. A crash at any point in that
//! protocol leaves either the old checkpoint plus a full log, or the
//! new checkpoint plus a log tail; both recover exactly.
//!
//! # Recovery
//!
//! [`DataStore::recover`] rebuilds the store: decode the last
//! checkpoint (if any), then replay every surviving WAL generation in
//! `(generation, stream)` order through the normal in-memory ingest
//! paths, filtering each stream by a monotone per-stream sequence
//! floor — which uniformly drops both checkpoint-covered frames and
//! the duplicated-tail frames a retried append can leave behind. Frame
//! scanning stops at the first torn, truncated, or corrupt frame, so a
//! crash mid-write costs at most the unsynced tail. Recovery never
//! appends to scanned files: it reopens the log at a fresh generation.
//!
//! # Degraded durability and healing
//!
//! A long-running collector must survive the disk itself misbehaving,
//! not just process death. When the WAL writer's bounded in-thread
//! retries cannot get a batch onto disk (persistent `ENOSPC`/`EIO`, or
//! repeated fsync failure), the sink transitions to
//! [`DurabilityMode::Degraded`]:
//!
//! * Ingest keeps working **in memory** — `record_*` calls skip the
//!   encode+append entirely (counted in
//!   [`DurabilityStats::ops_dropped`]) instead of wedging on a dead
//!   disk.
//! * The transition publishes a `durability_lost` watermark: the max op
//!   time that was provably written *and fsynced* before the failure.
//!   Ops at or before the watermark survive a crash; ops after it exist
//!   only in memory until the store heals. (The watermark is a valid
//!   frontier because record order carries non-decreasing op times —
//!   live ticks advance monotonically.)
//! * [`DataStore::tend_durability`] — called by the live driver every
//!   tick, or by any caller on its own schedule — retries a *heal*
//!   with exponential backoff: revive the WAL at a fresh generation,
//!   then take a full checkpoint. The checkpoint captures every op the
//!   degraded window dropped (they are still in memory), so a
//!   successful heal loses nothing that was recorded: the store
//!   returns to [`DurabilityMode::Durable`] and the watermark clears.
//!   A still-broken disk fails the checkpoint and the sink returns to
//!   degraded, backing off further.
//!
//! # Graceful shutdown
//!
//! [`DataStore::close`] drains the write-behind queue, takes a final
//! checkpoint, and writes an atomic clean-shutdown marker recording
//! the log position. [`DataStore::recover`] consumes the marker (it is
//! removed before the store reopens, so it can never be trusted twice)
//! and, when it matches the checkpoint, skips the WAL tail scan
//! entirely — [`RecoveryInfo::replayed_ops`] is 0 and
//! [`RecoveryInfo::from_clean_shutdown`] is true. An unclean death
//! leaves no marker and recovery replays the tail as usual.

use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger, UnavailabilityInterval};
use crate::store::{
    DataStore, EpochCell, EpochSeries, IntrinsicBidRecord, KeyState, ProbeStats, RegionHealth,
    RevocationRecord, SpikeEvent, Stripe,
};
use cloud_sim::ids::Region;
use cloud_sim::time::{SimDuration, SimTime};
use spotlight_persist::log::{CleanMarker, LogDir};
use spotlight_persist::wal::{WalConfig, WalHandle};
use spotlight_persist::{Decode, DecodeError, DiskIo, Encode, Reader};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use spotlight_persist::FsyncPolicy;

/// Tuning knobs for a durable store's writer.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// When the log writer fsyncs (default: once per drained batch).
    pub fsync: FsyncPolicy,
    /// Bounded depth of the append queue; ingest blocks (backpressure)
    /// when the disk falls this far behind.
    pub queue_capacity: usize,
    /// Disk-I/O layer under every write and fsync; `None` means the
    /// real filesystem. Tests inject a
    /// [`spotlight_persist::FaultyDisk`] here.
    pub io: Option<Arc<dyn DiskIo>>,
    /// Backoff before the first heal attempt after a degraded
    /// transition; doubles per failed attempt.
    pub heal_retry_base: Duration,
    /// Ceiling on the heal backoff.
    pub heal_retry_cap: Duration,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Batch,
            queue_capacity: 4096,
            io: None,
            heal_retry_base: Duration::from_millis(100),
            heal_retry_cap: Duration::from_secs(10),
        }
    }
}

/// Whether a durable store is actually putting ops on disk right now.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Appends flow to the WAL normally.
    #[default]
    Durable,
    /// The disk defeated bounded retry: ops are in-memory only until a
    /// heal succeeds (see the module docs).
    Degraded,
}

const MODE_DURABLE: u8 = 0;
const MODE_DEGRADED: u8 = 1;
/// Sentinel for "no durability loss": the watermark atomic holds this
/// when the store has never degraded (or has fully healed).
const NO_LOSS: u64 = u64::MAX;

/// Counters describing a durable store's log activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Operations appended to the log.
    pub appended_ops: u64,
    /// Framed bytes appended to the log.
    pub appended_bytes: u64,
    /// Fsyncs issued by the writer.
    pub fsyncs: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Raw records sealed into spill segments by compaction.
    pub spilled_records: u64,
    /// Write/fsync errors the durable paths have hit.
    pub io_errors: u64,
    /// Description of the most recent IO error, if any.
    pub last_error: Option<String>,
    /// Whether appends are currently reaching disk.
    pub mode: DurabilityMode,
    /// While degraded (or until a heal completes): ops at or before
    /// this time are provably on disk; later ones may be memory-only.
    /// `None` when fully durable.
    pub durability_lost: Option<SimTime>,
    /// Ops skipped at the sink while degraded (in memory only until
    /// the healing checkpoint captures them).
    pub ops_dropped: u64,
    /// Frames the WAL writer dropped after exhausting its retries.
    pub dropped_frames: u64,
    /// Durable → degraded transitions.
    pub degraded_transitions: u64,
    /// Successful heals (WAL re-established plus a full checkpoint).
    pub heals: u64,
}

/// What [`DataStore::recover_with_report`] actually did — the
/// crash-torture harness asserts on this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Ops applied from the WAL tail past the checkpoint floor
    /// (including suppressed-counter applications). Zero after a clean
    /// shutdown.
    pub replayed_ops: u64,
    /// Whether a valid clean-shutdown marker let recovery skip the tail
    /// scan entirely.
    pub from_clean_shutdown: bool,
    /// Whether a checkpoint existed and was loaded.
    pub checkpoint_loaded: bool,
}

/// The durable half of a [`DataStore`]: directory, WAL, and counters.
#[derive(Debug)]
pub(crate) struct DurableSink {
    pub(crate) dir: LogDir,
    pub(crate) wal: WalHandle,
    checkpoints: AtomicU64,
    spilled_records: AtomicU64,
    /// Generation the writer is currently appending to.
    current_gen: AtomicU64,
    /// Serializes checkpoints (capture + rotate + write must not
    /// interleave between two callers).
    ckpt_lock: crate::sync::Mutex<()>,
    /// Serializes durable compaction passes: spill-then-drop releases
    /// the stripe lock between snapshot and drop, so two concurrent
    /// `compact` calls could otherwise seal the same records twice and
    /// race each other's prefix drop.
    pub(crate) compact_lock: crate::sync::Mutex<()>,
    /// Errors from durable paths outside the WAL writer (spills).
    io_errors: AtomicU64,
    last_error: crate::sync::Mutex<Option<String>>,
    /// [`MODE_DURABLE`] or [`MODE_DEGRADED`].
    mode: AtomicU8,
    /// Op-time watermark published at the degraded transition
    /// ([`NO_LOSS`] when fully durable).
    durability_lost: AtomicU64,
    /// Ops skipped at the sink while degraded.
    ops_dropped: AtomicU64,
    degraded_transitions: AtomicU64,
    heals: AtomicU64,
    /// Heal backoff bookkeeping.
    heal: crate::sync::Mutex<HealState>,
    heal_retry_base: Duration,
    heal_retry_cap: Duration,
}

#[derive(Debug, Default)]
struct HealState {
    /// Failed heal attempts since the degraded transition.
    attempts: u32,
    /// Earliest instant the next heal may run; `None` when not
    /// degraded.
    next_retry: Option<Instant>,
}

impl DurableSink {
    fn new(dir: LogDir, wal: WalHandle, current_gen: u64, opts: &DurableOptions) -> DurableSink {
        DurableSink {
            dir,
            wal,
            checkpoints: AtomicU64::new(0),
            spilled_records: AtomicU64::new(0),
            current_gen: AtomicU64::new(current_gen),
            ckpt_lock: crate::sync::Mutex::new(()),
            compact_lock: crate::sync::Mutex::new(()),
            io_errors: AtomicU64::new(0),
            last_error: crate::sync::Mutex::new(None),
            mode: AtomicU8::new(MODE_DURABLE),
            durability_lost: AtomicU64::new(NO_LOSS),
            ops_dropped: AtomicU64::new(0),
            degraded_transitions: AtomicU64::new(0),
            heals: AtomicU64::new(0),
            heal: crate::sync::Mutex::new(HealState::default()),
            heal_retry_base: opts.heal_retry_base,
            heal_retry_cap: opts.heal_retry_cap,
        }
    }

    /// Appends one op to `stream`. Called with the mutated lock held so
    /// the stream's frame order matches state order. Encodes into a
    /// thread-local scratch buffer: this is the per-record hot path and
    /// must not allocate.
    ///
    /// While degraded this is two atomic loads and an increment — the
    /// op stays in memory only, counted, until a heal's checkpoint
    /// captures it.
    pub(crate) fn append(&self, stream: u32, op: &StoreOp) {
        if self.mode.load(Ordering::Acquire) == MODE_DEGRADED {
            self.ops_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.wal.is_degraded() {
            // First observer of the writer giving up publishes the
            // transition and its watermark.
            self.enter_degraded();
            self.ops_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            op.encode(&mut buf);
            if self.wal.append(stream, &buf, op.at_secs()).is_err() {
                // The writer thread is gone (shutdown race): stop
                // pretending appends persist.
                self.enter_degraded();
                self.ops_dropped.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// Publishes the durable → degraded transition exactly once per
    /// episode: the watermark is the writer's durability frontier at
    /// the moment of failure, and the first heal attempt is scheduled.
    fn enter_degraded(&self) {
        if self
            .mode
            .compare_exchange(
                MODE_DURABLE,
                MODE_DEGRADED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.durability_lost
                .store(self.wal.durable_at(), Ordering::Release);
            self.degraded_transitions.fetch_add(1, Ordering::Relaxed);
            let mut heal = self.heal.lock();
            heal.attempts = 0;
            heal.next_retry = Some(Instant::now() + self.heal_retry_base);
        }
    }

    /// The published durability-loss watermark, if any.
    fn lost_watermark(&self) -> Option<SimTime> {
        match self.durability_lost.load(Ordering::Acquire) {
            NO_LOSS => None,
            secs => Some(SimTime::from_secs(secs)),
        }
    }

    fn note_error(&self, what: &str, err: &io::Error) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock() = Some(format!("{what}: {err}"));
    }
}

/// One logged store mutation. The match in `encode` is exhaustive over
/// the record types, so a new persisted record type cannot compile
/// without a wire representation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum StoreOp {
    /// A probe observation (`record_probe`).
    Probe(ProbeRecord),
    /// A spike observation (`record_spike`).
    Spike(SpikeEvent),
    /// A revocation-watch observation (`record_revocation`).
    Revocation(RevocationRecord),
    /// An intrinsic-bid measurement (`record_intrinsic_bid`).
    IntrinsicBid(IntrinsicBidRecord),
    /// The suppressed-probe running total after an increment.
    Suppressed {
        /// Post-increment value of the suppressed counter.
        total: u64,
    },
    /// A circuit breaker tripped for `region` at `at`.
    RegionDegraded {
        /// The degraded region.
        region: Region,
        /// When the episode began.
        at: SimTime,
    },
    /// A circuit breaker closed for `region` at `at`.
    RegionRecovered {
        /// The recovered region.
        region: Region,
        /// When the episode ended.
        at: SimTime,
    },
}

impl Encode for StoreOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StoreOp::Probe(p) => {
                out.push(0);
                p.encode(out);
            }
            StoreOp::Spike(s) => {
                out.push(1);
                s.encode(out);
            }
            StoreOp::Revocation(r) => {
                out.push(2);
                r.encode(out);
            }
            StoreOp::IntrinsicBid(b) => {
                out.push(3);
                b.encode(out);
            }
            StoreOp::Suppressed { total } => {
                out.push(4);
                total.encode(out);
            }
            StoreOp::RegionDegraded { region, at } => {
                out.push(5);
                region.encode(out);
                at.encode(out);
            }
            StoreOp::RegionRecovered { region, at } => {
                out.push(6);
                region.encode(out);
                at.encode(out);
            }
        }
    }
}

impl Decode for StoreOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => StoreOp::Probe(ProbeRecord::decode(r)?),
            1 => StoreOp::Spike(SpikeEvent::decode(r)?),
            2 => StoreOp::Revocation(RevocationRecord::decode(r)?),
            3 => StoreOp::IntrinsicBid(IntrinsicBidRecord::decode(r)?),
            4 => StoreOp::Suppressed {
                total: u64::decode(r)?,
            },
            5 => StoreOp::RegionDegraded {
                region: Region::decode(r)?,
                at: SimTime::decode(r)?,
            },
            6 => StoreOp::RegionRecovered {
                region: Region::decode(r)?,
                at: SimTime::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid("store op tag")),
        })
    }
}

impl StoreOp {
    /// The op's time in seconds, fed to the WAL's durability watermark.
    /// 0 (never advancing the watermark) for untimed ops.
    fn at_secs(&self) -> u64 {
        match self {
            StoreOp::Probe(p) => p.at.as_secs(),
            StoreOp::Spike(s) => s.at.as_secs(),
            StoreOp::Revocation(r) => r
                .released_at
                .or(r.revoked_at)
                .unwrap_or(r.acquired_at)
                .as_secs(),
            StoreOp::IntrinsicBid(b) => b.at.as_secs(),
            StoreOp::Suppressed { .. } => 0,
            StoreOp::RegionDegraded { at, .. } | StoreOp::RegionRecovered { at, .. } => {
                at.as_secs()
            }
        }
    }
}

impl Encode for ProbeKind {
    fn encode(&self, out: &mut Vec<u8>) {
        // Exhaustive: a new kind cannot silently skip persistence.
        out.push(match self {
            ProbeKind::OnDemand => 0,
            ProbeKind::Spot => 1,
            ProbeKind::InterruptionNotice => 2,
        });
    }
}

impl Decode for ProbeKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ProbeKind::OnDemand,
            1 => ProbeKind::Spot,
            2 => ProbeKind::InterruptionNotice,
            _ => return Err(DecodeError::Invalid("probe kind tag")),
        })
    }
}

impl Encode for ProbeOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ProbeOutcome::Fulfilled => 0,
            ProbeOutcome::InsufficientCapacity => 1,
            ProbeOutcome::CapacityNotAvailable => 2,
            ProbeOutcome::PriceTooLow => 3,
            ProbeOutcome::CapacityOversubscribed => 4,
            ProbeOutcome::ApiLimited => 5,
        });
    }
}

impl Decode for ProbeOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ProbeOutcome::Fulfilled,
            1 => ProbeOutcome::InsufficientCapacity,
            2 => ProbeOutcome::CapacityNotAvailable,
            3 => ProbeOutcome::PriceTooLow,
            4 => ProbeOutcome::CapacityOversubscribed,
            5 => ProbeOutcome::ApiLimited,
            _ => return Err(DecodeError::Invalid("probe outcome tag")),
        })
    }
}

impl Encode for ProbeTrigger {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ProbeTrigger::PriceSpike { ratio } => {
                out.push(0);
                ratio.encode(out);
            }
            ProbeTrigger::FamilyFanout {
                origin,
                origin_ratio,
            } => {
                out.push(1);
                origin.encode(out);
                origin_ratio.encode(out);
            }
            ProbeTrigger::CrossAzFanout {
                origin,
                origin_ratio,
            } => {
                out.push(2);
                origin.encode(out);
                origin_ratio.encode(out);
            }
            ProbeTrigger::Recovery => out.push(3),
            ProbeTrigger::Periodic => out.push(4),
            ProbeTrigger::CrossVerify { origin } => {
                out.push(5);
                origin.encode(out);
            }
            ProbeTrigger::BidSearch => out.push(6),
            ProbeTrigger::RevocationWatch => out.push(7),
            ProbeTrigger::EvictionNotice { evict_at } => {
                out.push(8);
                evict_at.encode(out);
            }
        }
    }
}

impl Decode for ProbeTrigger {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ProbeTrigger::PriceSpike {
                ratio: f64::decode(r)?,
            },
            1 => ProbeTrigger::FamilyFanout {
                origin: Decode::decode(r)?,
                origin_ratio: f64::decode(r)?,
            },
            2 => ProbeTrigger::CrossAzFanout {
                origin: Decode::decode(r)?,
                origin_ratio: f64::decode(r)?,
            },
            3 => ProbeTrigger::Recovery,
            4 => ProbeTrigger::Periodic,
            5 => ProbeTrigger::CrossVerify {
                origin: Decode::decode(r)?,
            },
            6 => ProbeTrigger::BidSearch,
            7 => ProbeTrigger::RevocationWatch,
            8 => ProbeTrigger::EvictionNotice {
                evict_at: SimTime::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid("probe trigger tag")),
        })
    }
}

impl Encode for ProbeRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.market.encode(out);
        self.kind.encode(out);
        self.trigger.encode(out);
        self.outcome.encode(out);
        self.spot_ratio.encode(out);
        self.bid.encode(out);
        self.cost.encode(out);
    }
}

impl Decode for ProbeRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProbeRecord {
            at: Decode::decode(r)?,
            market: Decode::decode(r)?,
            kind: Decode::decode(r)?,
            trigger: Decode::decode(r)?,
            outcome: Decode::decode(r)?,
            spot_ratio: Decode::decode(r)?,
            bid: Decode::decode(r)?,
            cost: Decode::decode(r)?,
        })
    }
}

impl Encode for SpikeEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.at.encode(out);
        self.ratio.encode(out);
        self.probed.encode(out);
    }
}

impl Decode for SpikeEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SpikeEvent {
            market: Decode::decode(r)?,
            at: Decode::decode(r)?,
            ratio: Decode::decode(r)?,
            probed: Decode::decode(r)?,
        })
    }
}

impl Encode for RevocationRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.acquired_at.encode(out);
        self.bid.encode(out);
        self.revoked_at.encode(out);
        self.released_at.encode(out);
    }
}

impl Decode for RevocationRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RevocationRecord {
            market: Decode::decode(r)?,
            acquired_at: Decode::decode(r)?,
            bid: Decode::decode(r)?,
            revoked_at: Decode::decode(r)?,
            released_at: Decode::decode(r)?,
        })
    }
}

impl Encode for IntrinsicBidRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.at.encode(out);
        self.published.encode(out);
        self.intrinsic.encode(out);
        self.attempts.encode(out);
    }
}

impl Decode for IntrinsicBidRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(IntrinsicBidRecord {
            market: Decode::decode(r)?,
            at: Decode::decode(r)?,
            published: Decode::decode(r)?,
            intrinsic: Decode::decode(r)?,
            attempts: Decode::decode(r)?,
        })
    }
}

impl Encode for UnavailabilityInterval {
    fn encode(&self, out: &mut Vec<u8>) {
        self.market.encode(out);
        self.kind.encode(out);
        self.start.encode(out);
        self.end.encode(out);
        self.detect_ratio.encode(out);
        self.detected_via_related.encode(out);
    }
}

impl Decode for UnavailabilityInterval {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(UnavailabilityInterval {
            market: Decode::decode(r)?,
            kind: Decode::decode(r)?,
            start: Decode::decode(r)?,
            end: Decode::decode(r)?,
            detect_ratio: Decode::decode(r)?,
            detected_via_related: Decode::decode(r)?,
        })
    }
}

impl Encode for RegionHealth {
    fn encode(&self, out: &mut Vec<u8>) {
        self.degraded.encode(out);
        self.since.encode(out);
        self.degraded_secs.encode(out);
        self.trips.encode(out);
    }
}

impl Decode for RegionHealth {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RegionHealth {
            degraded: Decode::decode(r)?,
            since: Decode::decode(r)?,
            degraded_secs: Decode::decode(r)?,
            trips: Decode::decode(r)?,
        })
    }
}

impl Encode for ProbeStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.informative.encode(out);
        self.rejections.encode(out);
    }
}

impl Decode for ProbeStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProbeStats {
            informative: Decode::decode(r)?,
            rejections: Decode::decode(r)?,
        })
    }
}

impl Encode for EpochCell {
    fn encode(&self, out: &mut Vec<u8>) {
        self.informative.encode(out);
        self.rejections.encode(out);
        self.unavail_secs.encode(out);
    }
}

impl Decode for EpochCell {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EpochCell {
            informative: Decode::decode(r)?,
            rejections: Decode::decode(r)?,
            unavail_secs: Decode::decode(r)?,
        })
    }
}

impl Encode for EpochSeries {
    fn encode(&self, out: &mut Vec<u8>) {
        self.first.encode(out);
        self.cells.encode(out);
    }
}

impl Decode for EpochSeries {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EpochSeries {
            first: Decode::decode(r)?,
            cells: Decode::decode(r)?,
        })
    }
}

impl Encode for KeyState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.stats.encode(out);
        self.intervals.encode(out);
        self.open.encode(out);
        self.closed_intervals.encode(out);
        self.rejection_times.encode(out);
        self.last_informative.encode(out);
        self.epochs.encode(out);
        self.disordered.encode(out);
    }
}

impl Decode for KeyState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(KeyState {
            stats: Decode::decode(r)?,
            intervals: Decode::decode(r)?,
            open: Decode::decode(r)?,
            closed_intervals: Decode::decode(r)?,
            rejection_times: Decode::decode(r)?,
            last_informative: Decode::decode(r)?,
            epochs: Decode::decode(r)?,
            disordered: Decode::decode(r)?,
        })
    }
}

fn encode_map<K: Encode, V: Encode, S: BuildHasher>(map: &HashMap<K, V, S>, out: &mut Vec<u8>) {
    map.len().encode(out);
    for (k, v) in map {
        k.encode(out);
        v.encode(out);
    }
}

fn decode_map<K, V, S>(r: &mut Reader<'_>) -> Result<HashMap<K, V, S>, DecodeError>
where
    K: Decode + Eq + Hash,
    V: Decode,
    S: BuildHasher + Default,
{
    let len = usize::decode(r)?;
    if len > r.remaining() {
        return Err(DecodeError::Invalid("map length"));
    }
    let mut map = HashMap::with_capacity_and_hasher(len, S::default());
    for _ in 0..len {
        let k = K::decode(r)?;
        let v = V::decode(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

impl Encode for Stripe {
    fn encode(&self, out: &mut Vec<u8>) {
        self.probes.encode(out);
        encode_map(&self.probes_by_market, out);
        self.spikes.encode(out);
        encode_map(&self.spike_ratios_by_epoch, out);
        self.intervals.encode(out);
        encode_map(&self.keys, out);
        encode_map(&self.od_rejections_by_region, out);
        self.revocations.encode(out);
        encode_map(&self.revocations_by_market, out);
        self.intrinsic_bids.encode(out);
    }
}

impl Decode for Stripe {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Stripe {
            probes: Decode::decode(r)?,
            probes_by_market: decode_map(r)?,
            spikes: Decode::decode(r)?,
            spike_ratios_by_epoch: decode_map(r)?,
            intervals: Decode::decode(r)?,
            keys: decode_map(r)?,
            od_rejections_by_region: decode_map(r)?,
            revocations: Decode::decode(r)?,
            revocations_by_market: decode_map(r)?,
            intrinsic_bids: Decode::decode(r)?,
        })
    }
}

fn bad_data(err: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

fn corrupt(what: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

/// Encodes every raw record of `stripe` older than `before` for
/// spilling. Memory-only, so it is cheap enough to run under the
/// stripe lock; the slow segment write is [`write_spill`].
pub(crate) fn encode_spill(stripe: &Stripe, before: SimTime) -> Vec<Vec<u8>> {
    let mut records: Vec<Vec<u8>> = Vec::new();
    for p in &stripe.probes {
        if p.at < before {
            records.push(StoreOp::Probe(*p).to_bytes());
        }
    }
    for s in &stripe.spikes {
        if s.at < before {
            records.push(StoreOp::Spike(*s).to_bytes());
        }
    }
    records
}

/// Seals pre-encoded `records` into a spill segment for stripe `idx`.
/// Synchronous disk IO — callers must **not** hold the stripe lock, so
/// ingest and reads proceed while the segment lands. Returns `false` —
/// telling the caller to *keep* the raw slabs — if the segment could
/// not be written; spill-then-drop is the no-data-loss invariant of
/// durable compaction.
pub(crate) fn write_spill(sink: &DurableSink, idx: usize, records: &[Vec<u8>]) -> bool {
    if records.is_empty() {
        return true;
    }
    match sink.dir.write_spill(idx as u32, records) {
        Ok(_) => {
            sink.spilled_records
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            true
        }
        Err(err) => {
            sink.note_error("spill", &err);
            false
        }
    }
}

impl DataStore {
    /// Stream index carrying store-wide (non-stripe) ops.
    pub(crate) fn meta_stream(&self) -> u32 {
        self.stripes.len() as u32
    }

    /// Creates an empty **durable** store rooted at `dir`, with the
    /// default layout.
    ///
    /// # Errors
    ///
    /// Fails if `dir` cannot be initialized (or already holds a store).
    pub fn create_durable(dir: &Path, opts: DurableOptions) -> io::Result<DataStore> {
        DataStore::create_durable_with_layout(
            dir,
            opts,
            crate::store::DEFAULT_STRIPES,
            crate::store::DEFAULT_EPOCH,
        )
    }

    /// Creates an empty durable store with an explicit layout.
    ///
    /// # Errors
    ///
    /// Fails if `dir` cannot be initialized (or already holds a store).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero or `epoch` is zero-length, like
    /// [`DataStore::with_layout`].
    pub fn create_durable_with_layout(
        dir: &Path,
        opts: DurableOptions,
        stripes: usize,
        epoch: SimDuration,
    ) -> io::Result<DataStore> {
        let mut store = DataStore::with_layout(stripes, epoch);
        let mut app_meta = Vec::new();
        (stripes as u32).encode(&mut app_meta);
        epoch.as_secs().encode(&mut app_meta);
        let mut log = LogDir::create(dir, stripes as u32 + 1, &app_meta)?;
        if let Some(io) = &opts.io {
            log = log.with_io(Arc::clone(io));
        }
        let wal = WalHandle::open(
            &log,
            WalConfig {
                streams: stripes as u32 + 1,
                fsync: opts.fsync,
                queue_capacity: opts.queue_capacity,
            },
            0,
            0,
        )?;
        store.durable = Some(DurableSink::new(log, wal, 0, &opts));
        Ok(store)
    }

    /// Rebuilds a store from `dir`: last checkpoint plus the surviving
    /// log tail, with default writer options for the reopened log.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors, a damaged header/checkpoint, or an
    /// undecodable op (all meaning something other than a crash-torn
    /// tail happened to the directory).
    pub fn recover(dir: &Path) -> io::Result<DataStore> {
        DataStore::recover_with(dir, DurableOptions::default())
    }

    /// [`DataStore::recover`] with explicit writer options.
    ///
    /// # Errors
    ///
    /// See [`DataStore::recover`].
    pub fn recover_with(dir: &Path, opts: DurableOptions) -> io::Result<DataStore> {
        DataStore::recover_with_report(dir, opts).map(|(store, _)| store)
    }

    /// [`DataStore::recover_with`], also reporting what recovery did —
    /// the crash-torture harness asserts on this.
    ///
    /// # Errors
    ///
    /// See [`DataStore::recover`].
    pub fn recover_with_report(
        dir: &Path,
        opts: DurableOptions,
    ) -> io::Result<(DataStore, RecoveryInfo)> {
        let (mut log, dir_meta) = LogDir::open(dir)?;
        if let Some(io) = &opts.io {
            log = log.with_io(Arc::clone(io));
        }
        // Consume the clean-shutdown marker up front: whatever happens
        // from here on (including a crash mid-recovery), a stale marker
        // can never talk a *later* recovery out of a replay it needs.
        let marker = log.read_clean_marker()?;
        log.remove_clean_marker()?;
        let mut mr = Reader::new(&dir_meta.app_meta);
        let stripes = u32::decode(&mut mr).map_err(bad_data)? as usize;
        let epoch_secs = u64::decode(&mut mr).map_err(bad_data)?;
        mr.expect_empty().map_err(bad_data)?;
        if dir_meta.streams != stripes as u32 + 1 || stripes == 0 || epoch_secs == 0 {
            return Err(corrupt("header layout mismatch"));
        }
        let mut store = DataStore::with_layout(stripes, SimDuration::from_secs(epoch_secs));

        // 1. The checkpoint, if one was ever completed.
        let mut next_seq = 0u64;
        let mut min_gen = 0u64;
        let mut checkpoint_loaded = false;
        if let Some(sections) = log.read_checkpoint()? {
            checkpoint_loaded = true;
            if sections.len() != stripes + 1 {
                return Err(corrupt("checkpoint section count mismatch"));
            }
            let mut r = Reader::new(&sections[0]);
            let recorded = u64::decode(&mut r).map_err(bad_data)?;
            let cost = u64::decode(&mut r).map_err(bad_data)?;
            let suppressed = u64::decode(&mut r).map_err(bad_data)?;
            next_seq = u64::decode(&mut r).map_err(bad_data)?;
            min_gen = u64::decode(&mut r).map_err(bad_data)?;
            let health: HashMap<Region, RegionHealth> = decode_map(&mut r).map_err(bad_data)?;
            r.expect_empty().map_err(bad_data)?;
            store.recorded_probes.store(recorded, Ordering::Relaxed);
            store.total_cost_micros.store(cost, Ordering::Relaxed);
            store.suppressed_probes.store(suppressed, Ordering::Relaxed);
            *store.region_health.write() = health;
            for (i, section) in sections[1..].iter().enumerate() {
                *store.stripes[i].write() = Stripe::from_bytes(section).map_err(bad_data)?;
            }
        }

        // 2. Replay the log tail — unless a clean-shutdown marker
        // proves the tail holds nothing past the checkpoint. The marker
        // must agree with the checkpoint it was written after
        // (`close()` writes the marker with no appends in between, at
        // the generation the closing checkpoint rotated to); any
        // mismatch means it is stale debris and the full scan runs.
        let from_clean_shutdown = checkpoint_loaded
            && marker.is_some_and(|m| m.next_seq == next_seq && m.generation == min_gen + 1);
        let mut replayed_ops = 0u64;
        let mut max_gen = min_gen;
        let mut max_seq = next_seq;
        if from_clean_shutdown {
            max_gen = min_gen + 1;
        } else {
            // Per-stream monotone sequence floors drop
            // checkpoint-covered frames and retried-append duplicates
            // alike; the frame scanner already trimmed torn tails.
            let mut floor = vec![next_seq; stripes + 1];
            for (generation, stream) in log.list_wal()? {
                max_gen = max_gen.max(generation);
                if generation < min_gen || stream as usize > stripes {
                    continue;
                }
                let scanned = log.read_wal(generation, stream)?;
                for frame in scanned.frames {
                    max_seq = max_seq.max(frame.seq + 1);
                    let op = StoreOp::from_bytes(&frame.body).map_err(bad_data)?;
                    if let StoreOp::Suppressed { total } = op {
                        // Monotone and idempotent: applied regardless of
                        // the sequence floor, which makes the lock-free
                        // suppressed path correct under any interleaving
                        // with a concurrent checkpoint.
                        store.suppressed_probes.fetch_max(total, Ordering::Relaxed);
                        replayed_ops += 1;
                        continue;
                    }
                    if frame.seq < floor[stream as usize] {
                        continue;
                    }
                    floor[stream as usize] = frame.seq + 1;
                    store.apply(op);
                    replayed_ops += 1;
                }
            }
        }

        // 3. Never append after a possibly-torn tail: reopen the log at
        // a fresh generation.
        let new_gen = max_gen + 1;
        let wal = WalHandle::open(
            &log,
            WalConfig {
                streams: stripes as u32 + 1,
                fsync: opts.fsync,
                queue_capacity: opts.queue_capacity,
            },
            new_gen,
            max_seq,
        )?;
        store.durable = Some(DurableSink::new(log, wal, new_gen, &opts));
        Ok((
            store,
            RecoveryInfo {
                replayed_ops,
                from_clean_shutdown,
                checkpoint_loaded,
            },
        ))
    }

    /// Applies a replayed op through the normal in-memory ingest paths
    /// (`durable` is still unset during replay, so nothing re-logs).
    fn apply(&self, op: StoreOp) {
        match op {
            StoreOp::Probe(p) => {
                self.record_probe(p);
            }
            StoreOp::Spike(s) => self.record_spike(s),
            StoreOp::Revocation(r) => self.record_revocation(r),
            StoreOp::IntrinsicBid(b) => self.record_intrinsic_bid(b),
            StoreOp::Suppressed { total } => {
                self.suppressed_probes.fetch_max(total, Ordering::Relaxed);
            }
            StoreOp::RegionDegraded { region, at } => self.mark_region_degraded(region, at),
            StoreOp::RegionRecovered { region, at } => self.mark_region_recovered(region, at),
        }
    }

    /// Whether this store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Forces everything appended so far onto disk. A no-op `Ok` for
    /// in-memory stores.
    ///
    /// # Errors
    ///
    /// Returns the first IO error the log writer hit since the last
    /// flush.
    pub fn flush(&self) -> io::Result<()> {
        match &self.durable {
            Some(d) => d.wal.flush(),
            None => Ok(()),
        }
    }

    /// Writes a full-state checkpoint and prunes the log behind it.
    /// Recovery cost is then one checkpoint load plus the tail since.
    ///
    /// Checkpointing briefly blocks all ingest (it takes every stripe
    /// lock to capture a consistent snapshot). It is caller-driven —
    /// there is no automatic trigger — so ingest paths can never
    /// self-deadlock against it.
    ///
    /// # Errors
    ///
    /// `Unsupported` for in-memory stores; otherwise filesystem errors.
    /// On error the previous checkpoint and the full log remain, so the
    /// store stays recoverable.
    pub fn checkpoint(&self) -> io::Result<()> {
        let Some(d) = &self.durable else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "checkpoint on an in-memory store",
            ));
        };
        let _ckpt = d.ckpt_lock.lock();
        let mut sections = Vec::with_capacity(self.stripes.len() + 1);
        let capture_gen;
        {
            // Capture under every lock: ops sequenced before `next_seq`
            // are inside this snapshot, everything at or after it is
            // replayed on recovery.
            let guards: Vec<_> = self.stripes.iter().map(|s| s.write()).collect();
            let health = self.region_health.write();
            let next_seq = d.wal.next_seq();
            capture_gen = d.current_gen.load(Ordering::Relaxed);
            let mut meta = Vec::new();
            self.recorded_probes
                .load(Ordering::Relaxed)
                .encode(&mut meta);
            self.total_cost_micros
                .load(Ordering::Relaxed)
                .encode(&mut meta);
            self.suppressed_probes
                .load(Ordering::Relaxed)
                .encode(&mut meta);
            next_seq.encode(&mut meta);
            capture_gen.encode(&mut meta);
            encode_map(&health, &mut meta);
            sections.push(meta);
            for guard in &guards {
                sections.push(guard.to_bytes());
            }
        }
        // Rotate first: generations before `capture_gen` then hold only
        // checkpoint-covered sequence numbers and can be deleted once
        // the checkpoint is durable.
        let new_gen = d.wal.rotate()?;
        d.current_gen.store(new_gen, Ordering::Relaxed);
        d.dir.write_checkpoint(&sections)?;
        d.dir.delete_wal_before(capture_gen)?;
        d.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Log/checkpoint/spill counters; `None` for in-memory stores.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        let d = self.durable.as_ref()?;
        let ws = d.wal.stats();
        let last_error = d.last_error.lock().clone().or_else(|| ws.last_error_text());
        Some(DurabilityStats {
            appended_ops: ws.appended_ops.load(Ordering::Relaxed),
            appended_bytes: ws.appended_bytes.load(Ordering::Relaxed),
            fsyncs: ws.fsyncs.load(Ordering::Relaxed),
            checkpoints: d.checkpoints.load(Ordering::Relaxed),
            spilled_records: d.spilled_records.load(Ordering::Relaxed),
            io_errors: ws.io_errors.load(Ordering::Relaxed) + d.io_errors.load(Ordering::Relaxed),
            last_error,
            mode: match d.mode.load(Ordering::Acquire) {
                MODE_DEGRADED => DurabilityMode::Degraded,
                _ => DurabilityMode::Durable,
            },
            durability_lost: d.lost_watermark(),
            ops_dropped: d.ops_dropped.load(Ordering::Relaxed),
            dropped_frames: ws.dropped_frames.load(Ordering::Relaxed),
            degraded_transitions: d.degraded_transitions.load(Ordering::Relaxed),
            heals: d.heals.load(Ordering::Relaxed),
        })
    }

    /// Whether appends are currently reaching disk; `None` for
    /// in-memory stores.
    pub fn durability_mode(&self) -> Option<DurabilityMode> {
        let d = self.durable.as_ref()?;
        Some(match d.mode.load(Ordering::Acquire) {
            MODE_DEGRADED => DurabilityMode::Degraded,
            _ => DurabilityMode::Durable,
        })
    }

    /// The durability-loss watermark: ops at or before this time are
    /// provably on disk, later ones may be memory-only. `None` when
    /// fully durable (or in-memory).
    pub fn durability_lost(&self) -> Option<SimTime> {
        self.durable.as_ref()?.lost_watermark()
    }

    /// Drives the degraded → durable heal loop. Call this periodically
    /// from a maintenance point (the live driver does so once per
    /// tick), never from an ingest path — a successful heal runs a full
    /// checkpoint, which takes every stripe lock.
    ///
    /// Returns `Ok(true)` when a heal completed this call, `Ok(false)`
    /// when there was nothing to do (healthy, in-memory, or backoff not
    /// yet elapsed).
    ///
    /// # Errors
    ///
    /// A failed heal attempt returns its IO error after re-entering
    /// degraded mode and doubling the retry backoff; the store remains
    /// usable either way.
    pub fn tend_durability(&self) -> io::Result<bool> {
        let Some(d) = &self.durable else {
            return Ok(false);
        };
        if d.mode.load(Ordering::Acquire) == MODE_DURABLE {
            if d.wal.is_degraded() {
                // The writer died quietly (e.g. fsync failures with no
                // intervening append): publish the transition here so
                // an idle store still heals.
                d.enter_degraded();
            } else {
                return Ok(false);
            }
        }
        {
            let heal = d.heal.lock();
            match heal.next_retry {
                Some(due) if Instant::now() >= due => {}
                _ => return Ok(false),
            }
        }
        self.heal_now()
    }

    /// One heal attempt, ignoring backoff: revive the WAL at a fresh
    /// generation, re-enable appends, then checkpoint so every op that
    /// was memory-only while degraded becomes durable.
    fn heal_now(&self) -> io::Result<bool> {
        let d = self.durable.as_ref().expect("heal on a durable store");
        let new_gen = match d.wal.revive() {
            Ok(gen) => gen,
            Err(err) => return Err(self.heal_failed(err)),
        };
        d.current_gen.store(new_gen, Ordering::Relaxed);
        // Re-enable appends *before* the checkpoint: an op recorded
        // from here on lands either in the fresh WAL generation or
        // inside the checkpoint snapshot — both recoverable. The
        // reverse order would silently lose ops recorded between the
        // capture and the flip.
        d.mode.store(MODE_DURABLE, Ordering::Release);
        if let Err(err) = self.checkpoint() {
            // The disk is still bad: back off and go around again.
            d.mode.store(MODE_DEGRADED, Ordering::Release);
            return Err(self.heal_failed(err));
        }
        d.durability_lost.store(NO_LOSS, Ordering::Release);
        d.heals.fetch_add(1, Ordering::Relaxed);
        let mut heal = d.heal.lock();
        heal.attempts = 0;
        heal.next_retry = None;
        Ok(true)
    }

    /// Records a failed heal attempt: note the error and double the
    /// backoff (capped).
    fn heal_failed(&self, err: io::Error) -> io::Error {
        let d = self.durable.as_ref().expect("heal on a durable store");
        d.note_error("heal", &err);
        let mut heal = d.heal.lock();
        heal.attempts = heal.attempts.saturating_add(1);
        let backoff = d
            .heal_retry_base
            .saturating_mul(1u32 << heal.attempts.min(16))
            .min(d.heal_retry_cap);
        heal.next_retry = Some(Instant::now() + backoff);
        err
    }

    /// Gracefully shuts the store down: final checkpoint (healing
    /// first if degraded, so memory-only ops reach disk), then a
    /// clean-shutdown marker that lets the next [`DataStore::recover`]
    /// skip the WAL tail scan entirely. Consumes the store — taking it
    /// by value is what guarantees no append races the marker.
    ///
    /// A no-op `Ok` for in-memory stores.
    ///
    /// # Errors
    ///
    /// Filesystem errors from the final checkpoint or the marker write.
    /// On error the store is dropped *without* a marker, which is
    /// always safe: the next recovery simply replays the tail.
    pub fn close(self) -> io::Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        if d.mode.load(Ordering::Acquire) == MODE_DEGRADED || d.wal.is_degraded() {
            d.enter_degraded();
            self.heal_now()?;
        } else {
            self.checkpoint()?;
        }
        let d = self.durable.as_ref().expect("durable checked above");
        d.dir.write_clean_marker(CleanMarker {
            next_seq: d.wal.next_seq(),
            generation: d.current_gen.load(Ordering::Relaxed),
        })
    }

    /// Total on-disk bytes of the store directory (WAL + checkpoint +
    /// spill segments); `None` for in-memory stores or on a read error.
    pub fn disk_bytes(&self) -> Option<u64> {
        self.durable.as_ref().and_then(|d| d.dir.disk_bytes().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeOutcome;
    use cloud_sim::ids::{Az, MarketId, Platform};
    use cloud_sim::price::Price;
    use spotlight_persist::tempdir::TempDir;
    use spotlight_persist::{FaultKind, FaultWindow, FaultyDisk};

    fn market(i: u8) -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, i % 3),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(at: u64, m: MarketId, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::PriceSpike { ratio: 2.0 },
            outcome,
            spot_ratio: 2.0,
            bid: None,
            cost: Price::from_dollars(0.1),
        }
    }

    fn op_round_trip(op: StoreOp) {
        let bytes = op.to_bytes();
        assert_eq!(StoreOp::from_bytes(&bytes).expect("decode"), op);
    }

    /// Satellite: every `ProbeKind` and `ProbeTrigger` variant
    /// round-trips, with the variant lists produced by compile-time
    /// exhaustive matches — adding a variant upstream breaks this
    /// build, not just coverage.
    #[test]
    fn probe_kind_and_trigger_every_variant_round_trips() {
        let all_kinds: Vec<ProbeKind> = match ProbeKind::OnDemand {
            ProbeKind::OnDemand | ProbeKind::Spot | ProbeKind::InterruptionNotice => vec![
                ProbeKind::OnDemand,
                ProbeKind::Spot,
                ProbeKind::InterruptionNotice,
            ],
        };
        assert_eq!(all_kinds.len(), 3);
        let all_triggers: Vec<ProbeTrigger> = match ProbeTrigger::Recovery {
            ProbeTrigger::PriceSpike { .. }
            | ProbeTrigger::FamilyFanout { .. }
            | ProbeTrigger::CrossAzFanout { .. }
            | ProbeTrigger::Recovery
            | ProbeTrigger::Periodic
            | ProbeTrigger::CrossVerify { .. }
            | ProbeTrigger::BidSearch
            | ProbeTrigger::RevocationWatch
            | ProbeTrigger::EvictionNotice { .. } => vec![
                ProbeTrigger::PriceSpike { ratio: 2.5 },
                ProbeTrigger::FamilyFanout {
                    origin: market(0),
                    origin_ratio: 3.0,
                },
                ProbeTrigger::CrossAzFanout {
                    origin: market(1),
                    origin_ratio: 1.5,
                },
                ProbeTrigger::Recovery,
                ProbeTrigger::Periodic,
                ProbeTrigger::CrossVerify { origin: market(2) },
                ProbeTrigger::BidSearch,
                ProbeTrigger::RevocationWatch,
                ProbeTrigger::EvictionNotice {
                    evict_at: SimTime::from_secs(7200),
                },
            ],
        };
        assert_eq!(all_triggers.len(), 9);
        let all_outcomes: Vec<ProbeOutcome> = match ProbeOutcome::Fulfilled {
            ProbeOutcome::Fulfilled
            | ProbeOutcome::InsufficientCapacity
            | ProbeOutcome::CapacityNotAvailable
            | ProbeOutcome::PriceTooLow
            | ProbeOutcome::CapacityOversubscribed
            | ProbeOutcome::ApiLimited => vec![
                ProbeOutcome::Fulfilled,
                ProbeOutcome::InsufficientCapacity,
                ProbeOutcome::CapacityNotAvailable,
                ProbeOutcome::PriceTooLow,
                ProbeOutcome::CapacityOversubscribed,
                ProbeOutcome::ApiLimited,
            ],
        };
        for kind in &all_kinds {
            for trigger in &all_triggers {
                for outcome in &all_outcomes {
                    let mut p = probe(1234, market(0), *outcome);
                    p.kind = *kind;
                    p.trigger = *trigger;
                    p.bid = Some(Price::from_dollars(0.07));
                    op_round_trip(StoreOp::Probe(p));
                }
            }
        }
    }

    #[test]
    fn store_op_non_probe_variants_round_trip() {
        op_round_trip(StoreOp::Spike(SpikeEvent {
            market: market(0),
            at: SimTime::from_secs(42),
            ratio: 3.25,
            probed: false,
        }));
        op_round_trip(StoreOp::Revocation(RevocationRecord {
            market: market(1),
            acquired_at: SimTime::from_secs(100),
            bid: Price::from_dollars(0.2),
            revoked_at: Some(SimTime::from_secs(900)),
            released_at: Some(SimTime::from_secs(900)),
        }));
        op_round_trip(StoreOp::IntrinsicBid(IntrinsicBidRecord {
            market: market(2),
            at: SimTime::from_secs(55),
            published: Price::from_dollars(0.1),
            intrinsic: Price::from_dollars(0.04),
            attempts: 3,
        }));
        op_round_trip(StoreOp::Suppressed { total: 17 });
        op_round_trip(StoreOp::RegionDegraded {
            region: Region::EuWest1,
            at: SimTime::from_secs(5),
        });
        op_round_trip(StoreOp::RegionRecovered {
            region: Region::EuWest1,
            at: SimTime::from_secs(65),
        });
    }

    #[test]
    fn durable_ingest_recovers_identically() {
        let tmp = TempDir::new("durable-roundtrip");
        let dir = tmp.path().join("store");
        {
            let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
            for t in 0..50u64 {
                let outcome = if t % 7 == 0 {
                    ProbeOutcome::InsufficientCapacity
                } else {
                    ProbeOutcome::Fulfilled
                };
                store.record_probe(probe(t * 60, market((t % 5) as u8), outcome));
            }
            store.record_spike(SpikeEvent {
                market: market(0),
                at: SimTime::from_secs(30),
                ratio: 4.0,
                probed: true,
            });
            store.record_suppressed();
            store.record_suppressed();
            store.mark_region_degraded(Region::EuWest1, SimTime::from_secs(10));
            store.mark_region_recovered(Region::EuWest1, SimTime::from_secs(400));
            store.record_revocation(RevocationRecord {
                market: market(1),
                acquired_at: SimTime::from_secs(5),
                bid: Price::from_dollars(0.3),
                revoked_at: None,
                released_at: Some(SimTime::from_secs(3600)),
            });
            store.record_intrinsic_bid(IntrinsicBidRecord {
                market: market(2),
                at: SimTime::from_secs(80),
                published: Price::from_dollars(0.09),
                intrinsic: Price::from_dollars(0.05),
                attempts: 2,
            });
            assert!(store.is_durable());
            let stats = store.durability_stats().expect("stats");
            assert_eq!(stats.appended_ops, 50 + 1 + 2 + 2 + 1 + 1);
            assert_eq!(stats.io_errors, 0);
        } // drop flushes and joins the writer

        let recovered = DataStore::recover(&dir).expect("recover");
        assert_eq!(recovered.len(), 50);
        assert_eq!(recovered.total_cost(), Price::from_dollars(5.0));
        assert_eq!(recovered.suppressed_probes(), 2);
        let health = recovered.region_health(Region::EuWest1).expect("health");
        assert_eq!(health.degraded_secs, 390);
        let r = recovered.read();
        assert_eq!(r.probes().count(), 50);
        assert_eq!(r.spikes_at_or_above(3.0), 1);
        assert_eq!(r.revocations().count(), 1);
        assert_eq!(r.intrinsic_bids().count(), 1);
        for i in 0..5u8 {
            assert!(r.probe_stats(market(i), ProbeKind::OnDemand).informative > 0);
        }
    }

    #[test]
    fn checkpoint_prunes_log_and_recovery_replays_tail() {
        let tmp = TempDir::new("durable-ckpt");
        let dir = tmp.path().join("store");
        {
            let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
            for t in 0..30u64 {
                store.record_probe(probe(t * 60, market(0), ProbeOutcome::Fulfilled));
            }
            store.checkpoint().expect("checkpoint");
            for t in 30..40u64 {
                store.record_probe(probe(t * 60, market(1), ProbeOutcome::InsufficientCapacity));
            }
            assert_eq!(store.durability_stats().expect("stats").checkpoints, 1);
        }
        let recovered = DataStore::recover(&dir).expect("recover");
        assert_eq!(recovered.len(), 40);
        let r = recovered.read();
        assert_eq!(r.probes_of(market(0)).count(), 30);
        assert_eq!(r.probes_of(market(1)).count(), 10);
        assert!(r.is_unavailable(market(1), ProbeKind::OnDemand));
        // A second recovery of the recovered directory still agrees.
        drop(r);
        drop(recovered);
        let again = DataStore::recover(&dir).expect("recover again");
        assert_eq!(again.len(), 40);
    }

    #[test]
    fn checkpoint_racing_ingest_never_double_counts() {
        // Regression: the probe counters used to bump before the stripe
        // lock was taken, so a checkpoint could capture an in-flight
        // probe's counter increment while its WAL frame got a sequence
        // number at or past the captured floor — counted in the
        // snapshot *and* replayed on recovery.
        let tmp = TempDir::new("durable-ckpt-race");
        let dir = tmp.path().join("store");
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 300;
        {
            let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
            std::thread::scope(|scope| {
                for w in 0..WRITERS {
                    let store = &store;
                    scope.spawn(move || {
                        for t in 0..PER_WRITER {
                            store.record_probe(probe(
                                t * 60,
                                market(w as u8),
                                ProbeOutcome::Fulfilled,
                            ));
                        }
                    });
                }
                scope.spawn(|| {
                    for _ in 0..5 {
                        store.checkpoint().expect("checkpoint");
                    }
                });
            });
        }
        let recovered = DataStore::recover(&dir).expect("recover");
        let total = (WRITERS * PER_WRITER) as usize;
        assert_eq!(recovered.len(), total);
        assert_eq!(recovered.read().probes().count(), total);
        assert_eq!(
            recovered.total_cost(),
            Price::from_micros(Price::from_dollars(0.1).as_micros() * total as u64)
        );
    }

    #[test]
    fn durable_compaction_spills_before_dropping() {
        let tmp = TempDir::new("durable-spill");
        let dir = tmp.path().join("store");
        let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
        for t in 0..100u64 {
            store.record_probe(probe(
                t * 100,
                market((t % 4) as u8),
                ProbeOutcome::Fulfilled,
            ));
        }
        let stats = store.compact(SimTime::from_secs(5000));
        assert!(stats.dropped_probes > 0);
        let dstats = store.durability_stats().expect("stats");
        assert_eq!(dstats.spilled_records, stats.dropped_probes);
        assert_eq!(dstats.io_errors, 0);
        assert!(store.disk_bytes().expect("disk bytes") > 0);
    }

    #[test]
    fn close_writes_marker_and_recovery_skips_replay() {
        let tmp = TempDir::new("durable-clean-close");
        let dir = tmp.path().join("store");
        {
            let store = DataStore::create_durable(&dir, DurableOptions::default()).expect("create");
            for t in 0..25u64 {
                store.record_probe(probe(
                    t * 60,
                    market((t % 3) as u8),
                    ProbeOutcome::Fulfilled,
                ));
            }
            store.close().expect("close");
        }
        let (recovered, info) =
            DataStore::recover_with_report(&dir, DurableOptions::default()).expect("recover");
        assert!(info.from_clean_shutdown, "marker must be honored");
        assert!(info.checkpoint_loaded);
        assert_eq!(info.replayed_ops, 0, "clean restart does no tail replay");
        assert_eq!(recovered.len(), 25);

        // The marker is single-use: an unclean drop now must replay.
        recovered.record_probe(probe(9000, market(0), ProbeOutcome::Fulfilled));
        drop(recovered);
        let (again, info) =
            DataStore::recover_with_report(&dir, DurableOptions::default()).expect("recover again");
        assert!(!info.from_clean_shutdown);
        assert_eq!(info.replayed_ops, 1);
        assert_eq!(again.len(), 26);
    }

    #[test]
    fn close_on_empty_store_is_clean() {
        let tmp = TempDir::new("durable-close-empty");
        let dir = tmp.path().join("store");
        DataStore::create_durable(&dir, DurableOptions::default())
            .expect("create")
            .close()
            .expect("close");
        let (recovered, info) =
            DataStore::recover_with_report(&dir, DurableOptions::default()).expect("recover");
        assert!(info.from_clean_shutdown);
        assert_eq!(info.replayed_ops, 0);
        assert_eq!(recovered.len(), 0);
    }

    /// Measures the byte length of the single coalesced WAL write that
    /// flushing `count` identical probes produces, so fault windows can
    /// target exact write attempts (the encoding is deterministic).
    fn measured_flush_len(count: u64) -> u64 {
        let io = Arc::new(FaultyDisk::scripted(Vec::new()));
        let tmp = TempDir::new("durable-measure");
        let store = DataStore::create_durable(
            &tmp.path().join("store"),
            DurableOptions {
                fsync: FsyncPolicy::Never,
                io: Some(io.clone() as Arc<dyn DiskIo>),
                ..DurableOptions::default()
            },
        )
        .expect("create");
        for t in 0..count {
            store.record_probe(probe(t * 60, market(0), ProbeOutcome::Fulfilled));
        }
        store.flush().expect("flush");
        io.written() - 8 // minus the stream file header
    }

    /// A scripted ENOSPC window defeats the writer's bounded retry,
    /// the sink degrades (publishing the loss watermark), and once the
    /// window is behind us `tend_durability` heals: fresh generation,
    /// full checkpoint, and nothing recorded in memory is lost.
    #[test]
    fn faulty_disk_degrades_store_then_tend_heals() {
        const PROBES: u64 = 20;
        let flush_len = measured_flush_len(PROBES);
        // Cover the first write attempt and the start of the third:
        // all three retries fail (each attempt advances the cumulative
        // position by `flush_len`), and every later write clears it.
        let io = Arc::new(FaultyDisk::scripted(vec![FaultWindow {
            kind: FaultKind::WriteEnospc,
            from: 8,
            to: 8 + 2 * flush_len + 1,
        }]));
        let tmp = TempDir::new("durable-degrade-heal");
        let dir = tmp.path().join("store");
        let store = DataStore::create_durable(
            &dir,
            DurableOptions {
                fsync: FsyncPolicy::Never,
                io: Some(io.clone() as Arc<dyn DiskIo>),
                heal_retry_base: Duration::ZERO,
                ..DurableOptions::default()
            },
        )
        .expect("create");
        for t in 0..PROBES {
            store.record_probe(probe(t * 60, market(0), ProbeOutcome::Fulfilled));
        }
        let err = store.flush().expect_err("the scripted window must fire");
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC surfaces: {err}");
        assert!(io.injected() >= 3, "every retry consumed a fault");

        // The sink observes the writer's surrender at the next append.
        store.record_probe(probe(PROBES * 60, market(0), ProbeOutcome::Fulfilled));
        assert_eq!(store.durability_mode(), Some(DurabilityMode::Degraded));
        assert!(store.durability_lost().is_some(), "watermark published");
        let stats = store.durability_stats().expect("stats");
        assert_eq!(stats.degraded_transitions, 1);
        assert_eq!(stats.ops_dropped, 1);
        assert!(stats.dropped_frames >= 1);
        assert!(stats.io_errors >= 3);

        // Degraded ingest still lands in memory.
        assert_eq!(store.len(), PROBES as usize + 1);

        // The window is exhausted, so the heal goes through.
        assert!(io.exhausted());
        assert!(store.tend_durability().expect("heal"), "heal ran");
        assert_eq!(store.durability_mode(), Some(DurabilityMode::Durable));
        assert_eq!(store.durability_lost(), None);
        let stats = store.durability_stats().expect("stats");
        assert_eq!(stats.heals, 1);
        assert_eq!(stats.checkpoints, 1);
        // Nothing to do when healthy.
        assert!(!store.tend_durability().expect("idle tend"));

        // Post-heal appends persist, and recovery sees every op that
        // was ever applied in memory — including the dropped one the
        // healing checkpoint captured.
        store.record_probe(probe((PROBES + 1) * 60, market(1), ProbeOutcome::Fulfilled));
        store.close().expect("close");
        let recovered = DataStore::recover(&dir).expect("recover");
        assert_eq!(recovered.len(), PROBES as usize + 2);
    }

    /// `close()` on a degraded store heals first (ignoring backoff), so
    /// the final checkpoint and marker cover the memory-only ops.
    #[test]
    fn close_while_degraded_heals_first() {
        const PROBES: u64 = 20;
        let flush_len = measured_flush_len(PROBES);
        let io = Arc::new(FaultyDisk::scripted(vec![FaultWindow {
            kind: FaultKind::WriteEnospc,
            from: 8,
            to: 8 + 2 * flush_len + 1,
        }]));
        let tmp = TempDir::new("durable-degraded-close");
        let dir = tmp.path().join("store");
        let store = DataStore::create_durable(
            &dir,
            DurableOptions {
                fsync: FsyncPolicy::Never,
                io: Some(io.clone() as Arc<dyn DiskIo>),
                // A heal via tend would have to wait out this backoff;
                // close ignores it.
                heal_retry_base: Duration::from_secs(3600),
                ..DurableOptions::default()
            },
        )
        .expect("create");
        for t in 0..PROBES {
            store.record_probe(probe(t * 60, market(0), ProbeOutcome::Fulfilled));
        }
        assert!(store.flush().is_err());
        store.record_probe(probe(PROBES * 60, market(2), ProbeOutcome::Fulfilled));
        assert_eq!(store.durability_mode(), Some(DurabilityMode::Degraded));
        assert!(!store.tend_durability().expect("backoff holds"));
        store.close().expect("close heals then marks");

        let (recovered, info) =
            DataStore::recover_with_report(&dir, DurableOptions::default()).expect("recover");
        assert!(info.from_clean_shutdown);
        assert_eq!(info.replayed_ops, 0);
        assert_eq!(recovered.len(), PROBES as usize + 1);
    }

    #[test]
    fn checkpoint_on_in_memory_store_is_unsupported() {
        let store = DataStore::new();
        assert!(!store.is_durable());
        assert!(store.flush().is_ok());
        assert_eq!(store.durability_stats(), None);
        assert_eq!(store.disk_bytes(), None);
        assert_eq!(
            store.checkpoint().expect_err("must fail").kind(),
            io::ErrorKind::Unsupported
        );
    }
}
