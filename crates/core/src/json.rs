//! A minimal in-tree JSON writer — the serialization the HTTP service
//! and report surfaces actually need, instead of the serde
//! derive-marker shim (`crates/shims/serde`) the offline container
//! forced on the report/config types.
//!
//! The writer is string-building only (no reader): escaped keys and
//! strings, `u64`/`i64`/`f64`/bool/null scalars (non-finite floats
//! serialize as `null` — JSON has no `NaN`), and closure-scoped nested
//! objects and arrays. [`ToJson`] is implemented here for the
//! report types responses are built from ([`AvailabilityStats`],
//! [`Freshness`], [`DurabilityStats`], [`RecoveryInfo`],
//! [`RegionHealth`], [`LiveReport`]); `crates/serve` composes them
//! into response bodies with the same builders.

use crate::durable::{DurabilityMode, DurabilityStats, RecoveryInfo};
use crate::manager::LiveReport;
use crate::query::{AvailabilityStats, Freshness};
use crate::store::RegionHealth;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).expect("hex digit"));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `Display` for finite floats is shortest round-trip and always
        // a valid JSON number (no exponent-less `inf`/`NaN` forms).
        let start = out.len();
        out.push_str(&format!("{v}"));
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Writes one JSON object into `out` via the closure.
pub fn object(out: &mut String, f: impl FnOnce(&mut Object<'_>)) {
    out.push('{');
    let mut obj = Object { out, first: true };
    f(&mut obj);
    out.push('}');
}

/// Writes one JSON array into `out` via the closure.
pub fn array(out: &mut String, f: impl FnOnce(&mut Array<'_>)) {
    out.push('[');
    let mut arr = Array { out, first: true };
    f(&mut arr);
    out.push(']');
}

/// An in-progress JSON object; each method appends one key/value pair.
#[derive(Debug)]
pub struct Object<'a> {
    out: &'a mut String,
    first: bool,
}

impl Object<'_> {
    fn key(&mut self, key: &str) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_str(self.out, key);
        self.out.push(':');
        self.out
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, v: u64) {
        let out = self.key(key);
        out.push_str(&v.to_string());
    }

    /// Appends a signed integer field.
    pub fn i64(&mut self, key: &str, v: i64) {
        let out = self.key(key);
        out.push_str(&v.to_string());
    }

    /// Appends a float field (`null` when non-finite).
    pub fn f64(&mut self, key: &str, v: f64) {
        let out = self.key(key);
        write_f64(out, v);
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) {
        let out = self.key(key);
        out.push_str(if v { "true" } else { "false" });
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, v: &str) {
        let out = self.key(key);
        write_str(out, v);
    }

    /// Appends an explicit `null` field.
    pub fn null(&mut self, key: &str) {
        let out = self.key(key);
        out.push_str("null");
    }

    /// Appends an integer-or-`null` field.
    pub fn opt_u64(&mut self, key: &str, v: Option<u64>) {
        match v {
            Some(v) => self.u64(key, v),
            None => self.null(key),
        }
    }

    /// Appends a string-or-`null` field.
    pub fn opt_str(&mut self, key: &str, v: Option<&str>) {
        match v {
            Some(v) => self.str(key, v),
            None => self.null(key),
        }
    }

    /// Appends a nested object field.
    pub fn object(&mut self, key: &str, f: impl FnOnce(&mut Object<'_>)) {
        let out = self.key(key);
        object(out, f);
    }

    /// Appends a nested array field.
    pub fn array(&mut self, key: &str, f: impl FnOnce(&mut Array<'_>)) {
        let out = self.key(key);
        array(out, f);
    }

    /// Appends a field whose value is `v`'s [`ToJson`] serialization.
    pub fn value(&mut self, key: &str, v: &impl ToJson) {
        let out = self.key(key);
        v.write_json(out);
    }
}

/// An in-progress JSON array; each method appends one element.
#[derive(Debug)]
pub struct Array<'a> {
    out: &'a mut String,
    first: bool,
}

impl Array<'_> {
    fn elem(&mut self) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out
    }

    /// Appends an unsigned integer element.
    pub fn u64(&mut self, v: u64) {
        let out = self.elem();
        out.push_str(&v.to_string());
    }

    /// Appends a float element (`null` when non-finite).
    pub fn f64(&mut self, v: f64) {
        let out = self.elem();
        write_f64(out, v);
    }

    /// Appends a string element.
    pub fn str(&mut self, v: &str) {
        let out = self.elem();
        write_str(out, v);
    }

    /// Appends an object element.
    pub fn object(&mut self, f: impl FnOnce(&mut Object<'_>)) {
        let out = self.elem();
        object(out, f);
    }

    /// Appends an element from `v`'s [`ToJson`] serialization.
    pub fn value(&mut self, v: &impl ToJson) {
        let out = self.elem();
        v.write_json(out);
    }
}

/// Types that know their own JSON form.
pub trait ToJson {
    /// Appends the value's JSON form to `out`.
    fn write_json(&self, out: &mut String);

    /// The value's JSON form as a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

impl ToJson for AvailabilityStats {
    fn write_json(&self, out: &mut String) {
        object(out, |o| {
            o.u64("probes", self.probes);
            o.u64("rejections", self.rejections);
            o.f64("unavailable_fraction", self.unavailable_fraction);
            o.f64("availability", self.availability());
            o.u64("intervals", self.intervals);
        });
    }
}

impl ToJson for Freshness {
    fn write_json(&self, out: &mut String) {
        object(out, |o| {
            o.opt_u64(
                "last_informative_secs",
                self.last_informative.map(|t| t.as_secs()),
            );
            o.opt_u64("age_secs", self.age.map(|a| a.as_secs()));
            o.bool("region_degraded", self.region_degraded);
            o.opt_u64(
                "durability_lost_secs",
                self.durability_lost.map(|t| t.as_secs()),
            );
        });
    }
}

impl ToJson for DurabilityMode {
    fn write_json(&self, out: &mut String) {
        write_str(
            out,
            match self {
                DurabilityMode::Durable => "durable",
                DurabilityMode::Degraded => "degraded",
            },
        );
    }
}

impl ToJson for DurabilityStats {
    fn write_json(&self, out: &mut String) {
        object(out, |o| {
            o.u64("appended_ops", self.appended_ops);
            o.u64("appended_bytes", self.appended_bytes);
            o.u64("fsyncs", self.fsyncs);
            o.u64("checkpoints", self.checkpoints);
            o.u64("spilled_records", self.spilled_records);
            o.u64("io_errors", self.io_errors);
            o.opt_str("last_error", self.last_error.as_deref());
            o.value("mode", &self.mode);
            o.opt_u64(
                "durability_lost_secs",
                self.durability_lost.map(|t| t.as_secs()),
            );
            o.u64("ops_dropped", self.ops_dropped);
            o.u64("dropped_frames", self.dropped_frames);
            o.u64("degraded_transitions", self.degraded_transitions);
            o.u64("heals", self.heals);
        });
    }
}

impl ToJson for RecoveryInfo {
    fn write_json(&self, out: &mut String) {
        object(out, |o| {
            o.u64("replayed_ops", self.replayed_ops);
            o.bool("from_clean_shutdown", self.from_clean_shutdown);
            o.bool("checkpoint_loaded", self.checkpoint_loaded);
        });
    }
}

impl ToJson for RegionHealth {
    fn write_json(&self, out: &mut String) {
        object(out, |o| {
            o.bool("degraded", self.degraded);
            o.u64("since_secs", self.since.as_secs());
            o.u64("degraded_secs", self.degraded_secs);
            o.u64("trips", self.trips);
        });
    }
}

impl ToJson for LiveReport {
    fn write_json(&self, out: &mut String) {
        let mut regions: Vec<_> = self.per_region_probes.iter().collect();
        regions.sort_by_key(|(r, _)| **r);
        let mut degraded: Vec<_> = self.degraded_secs.iter().collect();
        degraded.sort_by_key(|(r, _)| **r);
        object(out, |o| {
            o.u64("probes", self.probes as u64);
            o.object("per_region_probes", |o| {
                for (region, n) in regions {
                    o.u64(region.name(), *n as u64);
                }
            });
            o.u64("ticks", self.ticks);
            o.u64("retries_issued", self.retries_issued);
            o.u64("probes_abandoned", self.probes_abandoned);
            o.u64("breaker_trips", self.breaker_trips);
            o.object("degraded_secs", |o| {
                for (region, secs) in degraded {
                    o.u64(region.name(), *secs);
                }
            });
            o.u64("durable_ops", self.durable_ops);
            o.u64("durable_bytes", self.durable_bytes);
            o.u64("durable_fsyncs", self.durable_fsyncs);
            o.u64("worker_panics", self.worker_panics);
            o.u64("durable_io_errors", self.durable_io_errors);
            o.u64("durable_ops_dropped", self.durable_ops_dropped);
            o.opt_u64(
                "durability_lost_secs",
                self.durability_lost.map(|t| t.as_secs()),
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::time::{SimDuration, SimTime};

    #[test]
    fn scalars_and_nesting_compose() {
        let mut out = String::new();
        object(&mut out, |o| {
            o.u64("n", 3);
            o.str("s", "a\"b\\c\nd\u{1}");
            o.f64("whole", 2.0);
            o.f64("frac", 0.25);
            o.f64("nan", f64::NAN);
            o.bool("ok", true);
            o.null("nothing");
            o.array("xs", |a| {
                a.u64(1);
                a.str("two");
                a.object(|o| o.bool("three", false));
            });
        });
        assert_eq!(
            out,
            "{\"n\":3,\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"whole\":2.0,\
             \"frac\":0.25,\"nan\":null,\"ok\":true,\"nothing\":null,\
             \"xs\":[1,\"two\",{\"three\":false}]}"
        );
    }

    #[test]
    fn report_types_serialize() {
        let stats = AvailabilityStats {
            probes: 10,
            rejections: 2,
            unavailable_fraction: 0.125,
            intervals: 1,
        };
        let json = stats.to_json();
        assert!(json.contains("\"availability\":0.875"));
        assert!(json.contains("\"probes\":10"));

        let fresh = Freshness {
            last_informative: Some(SimTime::from_secs(600)),
            age: Some(SimDuration::from_secs(30)),
            region_degraded: false,
            durability_lost: None,
        };
        assert_eq!(
            fresh.to_json(),
            "{\"last_informative_secs\":600,\"age_secs\":30,\
             \"region_degraded\":false,\"durability_lost_secs\":null}"
        );

        assert_eq!(DurabilityMode::Degraded.to_json(), "\"degraded\"");
        let recovery = RecoveryInfo {
            replayed_ops: 0,
            from_clean_shutdown: true,
            checkpoint_loaded: true,
        };
        assert!(recovery.to_json().contains("\"replayed_ops\":0"));
        assert!(DurabilityStats::default()
            .to_json()
            .contains("\"mode\":\"durable\""));
        assert!(LiveReport::default().to_json().contains("\"probes\":0"));
    }
}
