//! # spotlight-core
//!
//! SpotLight: an information service for the cloud — the reproduction of
//! Ouyang, *SpotLight: An Information Service for the Cloud* (UMass
//! Amherst, 2016 / ICDCS 2016), built on the [`cloud_sim`] substrate.
//!
//! Cloud platforms do not expose whether a server request will succeed.
//! SpotLight learns that by *actively probing*: each probe is a real
//! request for an on-demand or spot server, and the market-based policy
//! decides when and where to probe by watching spot prices — a spike
//! above the on-demand price loosely signals that the shared capacity
//! pool behind the market is squeezed (the paper's Figure 2.2 model).
//!
//! The crate provides:
//!
//! * [`spotlight::SpotLight`] — the probing service, runnable as a
//!   deterministic engine agent (and in a threaded live deployment via
//!   [`manager`]);
//! * [`policy`] / [`budget`] — the §3 probing policy and §3.4 cost
//!   control, including threshold calibration;
//! * [`bidspread`] — the intrinsic-bid search (§5.1.2);
//! * [`store`] — the probe database;
//! * [`query`] — the application-facing query interface (Chapter 3);
//! * [`analysis`] — the Chapter 5 analyses behind Figures 5.4–5.12.
//!
//! ## Quick start
//!
//! ```
//! use cloud_sim::{Catalog, Engine, SimConfig, SimDuration, SimTime};
//! use spotlight_core::policy::SpotLightConfig;
//! use spotlight_core::probe::ProbeKind;
//! use spotlight_core::query::SpotLightQuery;
//! use spotlight_core::spotlight::SpotLight;
//! use spotlight_core::store::shared_store;
//!
//! // A deterministic testbed cloud with SpotLight watching it.
//! let mut engine = Engine::new(Catalog::testbed(), SimConfig::paper(7));
//! let store = shared_store();
//! engine.add_agent(Box::new(SpotLight::new(
//!     SpotLightConfig::default(),
//!     store.clone(),
//! )));
//! let end = SimTime::ZERO + SimDuration::days(1);
//! engine.run_until(end);
//!
//! // Ask the information service what it learned (a read snapshot
//! // over the store's lock stripes).
//! let db = store.read();
//! let query = SpotLightQuery::new(&db, SimTime::ZERO, end);
//! for market in engine.cloud().catalog().markets() {
//!     let stats = query.availability(*market, ProbeKind::OnDemand);
//!     assert!(stats.availability() <= 1.0);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod bidspread;
pub mod budget;
pub mod durable;
pub mod json;
pub mod manager;
pub mod policy;
pub mod probe;
pub mod query;
pub mod snapshot;
pub mod spotlight;
pub mod stats;
pub mod store;
pub mod sync;

pub use durable::{DurabilityMode, DurabilityStats, DurableOptions, FsyncPolicy, RecoveryInfo};
pub use json::ToJson;
pub use manager::{LiveConfig, LiveReport, ResilienceConfig};
pub use policy::{PolicyConfig, SpotLightConfig};
pub use probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
pub use query::{Freshness, SpotLightQuery};
pub use snapshot::{SnapshotHub, SnapshotReader, StoreSnapshot};
pub use spotlight::SpotLight;
pub use store::{DataStore, RegionHealth, SharedStore, StoreRead};
