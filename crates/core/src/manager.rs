//! The live deployment: Chapter 4's hierarchical managers, as threads,
//! hardened against a misbehaving cloud.
//!
//! The paper's prototype ran region managers (one per region, batching
//! state polls and enforcing service limits), per-market probe managers,
//! and a database manager that serialized all writes. This module
//! reproduces that shape with real concurrency:
//!
//! * a **driver** advances the shared cloud tick by tick and fans each
//!   region's events out to its region manager over a channel;
//! * **region managers** (one thread per region) run the spike-triggered
//!   probing policy against the shared cloud, keeping their own
//!   re-probe (recovery) schedules.
//!
//! # The retry/breaker pipeline
//!
//! An always-on information service cannot assume a polite cloud (see
//! [`cloud_sim::chaos`] for the faults it must survive), so every probe
//! goes through a resilience pipeline:
//!
//! 1. **Error classification** — [`cloud_sim::api::ApiError::is_retryable`]
//!    splits failures into endpoint conditions (throttling, outages,
//!    transient server errors) and terminal answers. A retryable failure
//!    is a missing observation, not a negative one.
//! 2. **Backoff queue** — retryable failures re-enter a per-region
//!    pending queue with jittered exponential backoff and a per-probe
//!    attempt budget ([`ResilienceConfig::retry_budget`]); only when the
//!    budget is exhausted is the probe recorded as
//!    [`ProbeOutcome::ApiLimited`]. The queue is bounded
//!    ([`ResilienceConfig::max_pending`]); overflow abandons the oldest
//!    intent (counted, and recorded as suppressed).
//! 3. **Circuit breaker** — consecutive transport failures trip a
//!    per-region breaker: the worker stops hammering the dead endpoint,
//!    marks the region degraded in the store
//!    ([`crate::store::DataStore::mark_region_degraded`]), and half-opens
//!    on a schedule to send trial probes. The first success closes the
//!    breaker and marks the region recovered, so staleness-aware
//!    queries ([`crate::query::SpotLightQuery::freshness`]) can tell
//!    "available" from "we could not look".
//! 4. **Orphan reaping** — an on-demand probe whose launch succeeded but
//!    whose terminate failed would leak a service-limit slot forever;
//!    such instances enter a worker-local orphan list retried every
//!    batch.
//! 5. **Supervision** — each region manager catches panics at the batch
//!    boundary: a crash while handling one tick's events is counted
//!    ([`LiveReport::worker_panics`]), fed to the circuit breaker, and
//!    the worker carries on with its pending queue, recovery schedule,
//!    and orphan list intact. Should a thread die outright anyway, the
//!    driver strikes it from the ack rotation and the run degrades to
//!    the surviving regions instead of aborting.
//!
//! The driver also tends the store's durability each tick
//! ([`crate::store::DataStore::tend_durability`]): when disk faults
//! degrade the durable log, heals — WAL re-establishment plus a full
//! checkpoint — run on the driver's clock, never on an ingest path.
//!
//! Provider-pushed [`cloud_sim::cloud::CloudEvent::CapacityEvictionNotice`]
//! events are recorded as free [`ProbeKind::InterruptionNotice`] records,
//! so eviction signals sit in the store alongside probe-derived
//! observations.
//!
//! The paper's *database manager* — a thread serializing every write —
//! is subsumed by the lock-striped [`SharedStore`]: region managers
//! record probes and spikes directly, and only writers hitting the same
//! market-hash stripe contend. Each worker also keeps its own clone of
//! the immutable catalog, so price/sibling lookups never touch the
//! cloud lock; the cloud is locked only for the API calls that actually
//! mutate it.
//!
//! The engine-hosted [`crate::spotlight::SpotLight`] agent is the
//! deterministic twin of this deployment; the live mode exists to
//! demonstrate and test the concurrent architecture (mpsc channels,
//! [`crate::sync::Mutex`] for the cloud, the store's internal
//! [`crate::sync::RwLock`] stripes) at the cost of determinism across
//! thread interleavings. Within one region, probing is deterministic up
//! to the retry jitter.

use crate::policy::PolicyConfig;
use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
use crate::store::{SharedStore, SpikeEvent};
use crate::sync::Mutex;
use cloud_sim::api::ApiError;
use cloud_sim::catalog::Catalog;
use cloud_sim::cloud::{Cloud, CloudEvent};
use cloud_sim::ids::{InstanceId, MarketId, Region};
use cloud_sim::price::Price;
use cloud_sim::rng::SimRng;
use cloud_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

/// A cloud shared between the driver and the region managers.
pub type SharedCloud = Arc<Mutex<Cloud>>;

/// Knobs of the per-region retry/breaker pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Maximum transport attempts per probe (first try + retries).
    /// When exhausted the probe is recorded as
    /// [`ProbeOutcome::ApiLimited`].
    pub retry_budget: u32,
    /// Base backoff delay; attempt `n` waits `base × 2^n`, jittered
    /// ±50%, capped at [`ResilienceConfig::retry_cap`].
    pub retry_base: SimDuration,
    /// Upper bound on a single backoff delay.
    pub retry_cap: SimDuration,
    /// Bound on the per-region pending-retry queue; overflow abandons
    /// the probe intent (counted in [`LiveReport::probes_abandoned`]).
    pub max_pending: usize,
    /// Consecutive transport failures that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening to
    /// send a trial probe.
    pub breaker_cooldown: SimDuration,
    /// Test knob: make the worker panic on every Nth event batch, to
    /// exercise the supervision path. `None` (the default) never
    /// panics.
    #[doc(hidden)]
    pub chaos_panic_period: Option<u64>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry_budget: 4,
            retry_base: SimDuration::from_secs(300),
            retry_cap: SimDuration::from_secs(3600),
            max_pending: 256,
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::from_secs(1800),
            chaos_panic_period: None,
        }
    }
}

impl ResilienceConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.retry_budget == 0 {
            return Err("retry_budget must be at least 1".into());
        }
        if self.retry_base.is_zero() {
            return Err("retry_base must be positive".into());
        }
        if self.max_pending == 0 {
            return Err("max_pending must be at least 1".into());
        }
        if self.breaker_threshold == 0 {
            return Err("breaker_threshold must be at least 1".into());
        }
        Ok(())
    }
}

/// Configuration for a live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The probing policy all region managers apply.
    pub policy: PolicyConfig,
    /// How long (simulation time) to run.
    pub duration: SimDuration,
    /// The retry/breaker pipeline knobs.
    pub resilience: ResilienceConfig,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            policy: PolicyConfig::default(),
            duration: SimDuration::days(1),
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Summary of a live run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveReport {
    /// Probes recorded.
    pub probes: usize,
    /// Probes issued per region.
    pub per_region_probes: HashMap<Region, usize>,
    /// Ticks driven.
    pub ticks: u64,
    /// Retry attempts dispatched from the pending queues.
    pub retries_issued: u64,
    /// Probe intents dropped because a pending queue overflowed.
    pub probes_abandoned: u64,
    /// Circuit-breaker trips across all regions.
    pub breaker_trips: u64,
    /// Seconds each region spent with its breaker open or half-open
    /// (only regions that degraded at all appear).
    pub degraded_secs: HashMap<Region, u64>,
    /// Operations this run appended to the store's durable log (zero
    /// for an in-memory store).
    pub durable_ops: u64,
    /// Framed bytes this run appended to the durable log.
    pub durable_bytes: u64,
    /// Fsyncs the durable log's writer issued during this run,
    /// including the final end-of-run flush.
    pub durable_fsyncs: u64,
    /// Worker panics the supervisors caught (the worker kept running
    /// with its pending queue intact) plus region-manager threads that
    /// died outright and were struck from the rotation.
    pub worker_panics: u64,
    /// Write/fsync errors the durable paths hit during this run (zero
    /// for an in-memory store).
    pub durable_io_errors: u64,
    /// Ops the store skipped persisting while its durability was
    /// degraded during this run (they stayed in memory until a healing
    /// checkpoint).
    pub durable_ops_dropped: u64,
    /// If the store ended the run with durability still degraded: ops
    /// at or before this time are provably on disk, later ones may be
    /// memory-only. `None` when fully durable (or in-memory).
    pub durability_lost: Option<SimTime>,
}

enum RegionMsg {
    /// One tick's events for this region, with the tick's timestamp.
    /// The worker acks after handling so the driver can hold the clock:
    /// without that backpressure a starved worker's probes would land
    /// at whatever later cloud time the lock race gives them, sliding
    /// the probing (and any chaos fault windows) off schedule.
    Events(Vec<CloudEvent>, SimTime),
    Shutdown,
}

/// A probe intent waiting in the backoff queue.
#[derive(Debug, Clone, Copy)]
struct PendingProbe {
    market: MarketId,
    trigger: ProbeTrigger,
    due: SimTime,
    /// Transport attempts already spent on this intent.
    attempt: u32,
}

/// Circuit-breaker state of one region's transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Transport healthy; calls flow.
    Closed,
    /// Tripped: no calls until `until`.
    Open { until: SimTime },
    /// Cooldown elapsed: trial calls allowed; first success closes,
    /// first failure re-opens.
    HalfOpen,
}

/// The robustness counters one worker accumulates.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    probes_issued: usize,
    retries_issued: u64,
    probes_abandoned: u64,
    breaker_trips: u64,
    degraded_secs: u64,
    worker_panics: u64,
}

/// One region manager's probing state.
struct RegionWorker {
    region: Region,
    policy: PolicyConfig,
    resilience: ResilienceConfig,
    cloud: SharedCloud,
    /// The immutable market catalog, cloned once at spawn so lookups
    /// need no cloud lock.
    catalog: Catalog,
    store: SharedStore,
    cooldown_until: HashMap<MarketId, SimTime>,
    /// Markets awaiting recovery, with their next re-probe time.
    recovery_due: HashMap<MarketId, SimTime>,
    /// Probe intents waiting out a backoff or an open breaker.
    pending: Vec<PendingProbe>,
    /// Launched instances whose terminate call failed; retried every
    /// batch so they cannot leak service-limit slots.
    orphans: Vec<InstanceId>,
    breaker: Breaker,
    consecutive_failures: u32,
    /// Start of the current degraded episode, while one is open.
    degraded_since: Option<SimTime>,
    /// Backoff jitter source. Worker-local: live mode is already
    /// nondeterministic across thread interleavings.
    rng: SimRng,
    stats: WorkerStats,
    /// Event batches handled so far (drives the chaos panic knob).
    batches_handled: u64,
    /// Per-batch ack back to the driver (the lockstep backpressure).
    ack: Sender<()>,
}

/// What one transport attempt produced.
enum Attempt {
    /// The endpoint answered (any answer, including a capacity
    /// rejection or a terminal error): record this outcome.
    Answered(ProbeOutcome, Price),
    /// The endpoint itself failed (throttle/outage/transient): retry.
    Failed,
}

impl RegionWorker {
    fn probe_od(&mut self, market: MarketId, trigger: ProbeTrigger, now: SimTime) {
        self.probe_od_attempt(market, trigger, now, 0);
    }

    fn probe_od_attempt(
        &mut self,
        market: MarketId,
        trigger: ProbeTrigger,
        now: SimTime,
        attempt: u32,
    ) {
        if !self.breaker_allows(now) {
            // No attempt is spent while the breaker is open — the
            // intent waits for the half-open trial window.
            let due = match self.breaker {
                Breaker::Open { until } => until,
                _ => now + self.resilience.retry_base,
            };
            self.enqueue(PendingProbe {
                market,
                trigger,
                due,
                attempt,
            });
            return;
        }
        let od_price = self.catalog.od_price(market);
        // Cloud critical section: just the API call and the price read.
        let (attempt_result, spot_ratio) = {
            let mut cloud = self.cloud.lock();
            let result = match cloud.run_od_instance(market) {
                Ok(id) => match cloud.terminate_od_instance(id) {
                    Ok(cost) => Attempt::Answered(ProbeOutcome::Fulfilled, cost),
                    Err(e) => {
                        // The observation stands (the launch succeeded;
                        // the one-hour minimum is the best cost
                        // estimate), but the instance now occupies a
                        // service-limit slot until the reaper frees it.
                        if e.is_retryable() {
                            self.orphans.push(id);
                        }
                        Attempt::Answered(ProbeOutcome::Fulfilled, od_price)
                    }
                },
                Err(ApiError::InsufficientInstanceCapacity { .. }) => {
                    Attempt::Answered(ProbeOutcome::InsufficientCapacity, Price::ZERO)
                }
                Err(e) if e.is_retryable() => Attempt::Failed,
                Err(_) => Attempt::Answered(ProbeOutcome::ApiLimited, Price::ZERO),
            };
            let spot_ratio = cloud
                .oracle_published_price(market)
                .map_or(0.0, |p| p.ratio_to(od_price));
            (result, spot_ratio)
        };
        match attempt_result {
            Attempt::Answered(outcome, cost) => {
                self.on_transport_success(now);
                self.record(market, trigger, outcome, spot_ratio, cost, now);
            }
            Attempt::Failed => {
                self.on_transport_failure(now);
                if attempt + 1 < self.resilience.retry_budget {
                    let due = now + self.backoff(attempt);
                    self.enqueue(PendingProbe {
                        market,
                        trigger,
                        due,
                        attempt: attempt + 1,
                    });
                } else {
                    // Budget exhausted: the missing observation is
                    // recorded as the probe having been squeezed out.
                    self.record(
                        market,
                        trigger,
                        ProbeOutcome::ApiLimited,
                        spot_ratio,
                        Price::ZERO,
                        now,
                    );
                }
            }
        }
    }

    /// Records a probe outcome and maintains the recovery schedule.
    /// The single `record_probe` call site keeps `probes_issued` equal
    /// to the store's record count for this worker.
    fn record(
        &mut self,
        market: MarketId,
        trigger: ProbeTrigger,
        outcome: ProbeOutcome,
        spot_ratio: f64,
        cost: Price,
        now: SimTime,
    ) {
        self.stats.probes_issued += 1;
        // Direct striped write: locks only this market's stripe.
        self.store.record_probe(ProbeRecord {
            at: now,
            market,
            kind: ProbeKind::OnDemand,
            trigger,
            outcome,
            spot_ratio,
            bid: None,
            cost,
        });
        match outcome {
            ProbeOutcome::InsufficientCapacity => {
                self.recovery_due
                    .entry(market)
                    .or_insert(now + self.policy.reprobe_interval);
            }
            ProbeOutcome::Fulfilled => {
                self.recovery_due.remove(&market);
            }
            _ => {}
        }
    }

    /// The jittered exponential backoff delay of the given attempt.
    fn backoff(&mut self, attempt: u32) -> SimDuration {
        let base = self.resilience.retry_base.as_secs();
        let cap = self.resilience.retry_cap.as_secs().max(base);
        let raw = base.saturating_mul(1u64 << attempt.min(16)).min(cap);
        let jittered = (raw as f64 * self.rng.uniform_range(0.5, 1.5)).max(1.0);
        SimDuration::from_secs(jittered as u64)
    }

    fn enqueue(&mut self, p: PendingProbe) {
        if self.pending.len() >= self.resilience.max_pending {
            // Queue full: the intent is lost. Count it both locally and
            // as a suppressed probe so the loss shows in the store too.
            self.stats.probes_abandoned += 1;
            self.store.record_suppressed();
            return;
        }
        self.pending.push(p);
    }

    /// Whether the breaker lets a call through at `now`, transitioning
    /// open → half-open when the cooldown has elapsed.
    fn breaker_allows(&mut self, now: SimTime) -> bool {
        match self.breaker {
            Breaker::Closed | Breaker::HalfOpen => true,
            Breaker::Open { until } if now >= until => {
                self.breaker = Breaker::HalfOpen;
                true
            }
            Breaker::Open { .. } => false,
        }
    }

    fn on_transport_success(&mut self, now: SimTime) {
        self.consecutive_failures = 0;
        if self.breaker != Breaker::Closed {
            self.breaker = Breaker::Closed;
            self.store.mark_region_recovered(self.region, now);
            if let Some(since) = self.degraded_since.take() {
                self.stats.degraded_secs += now.saturating_since(since).as_secs();
            }
        }
    }

    fn on_transport_failure(&mut self, now: SimTime) {
        match self.breaker {
            Breaker::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.resilience.breaker_threshold {
                    self.breaker = Breaker::Open {
                        until: now + self.resilience.breaker_cooldown,
                    };
                    self.stats.breaker_trips += 1;
                    self.degraded_since = Some(now);
                    self.store.mark_region_degraded(self.region, now);
                }
            }
            // A failed half-open trial re-opens the breaker; the
            // degraded episode continues, no new trip.
            Breaker::HalfOpen => {
                self.breaker = Breaker::Open {
                    until: now + self.resilience.breaker_cooldown,
                };
            }
            Breaker::Open { .. } => {}
        }
    }

    /// Retries terminate calls for instances whose first terminate
    /// failed. Keeps only the ones that fail retryably again.
    fn reap_orphans(&mut self, now: SimTime) {
        if self.orphans.is_empty() || !self.breaker_allows(now) {
            return;
        }
        let orphans = std::mem::take(&mut self.orphans);
        let mut cloud = self.cloud.lock();
        for id in orphans {
            match cloud.terminate_od_instance(id) {
                Err(e) if e.is_retryable() => self.orphans.push(id),
                // Terminated (the duplicate charge supersedes the
                // estimate already recorded) or gone: either way the
                // slot is free.
                _ => {}
            }
        }
    }

    /// Dispatches pending probes that have come due. Dispatching can
    /// re-enqueue (breaker still open, next backoff step), so it runs
    /// over a drained snapshot.
    fn dispatch_due(&mut self, now: SimTime) {
        if self.pending.iter().all(|p| p.due > now) {
            return;
        }
        let mut queue = std::mem::take(&mut self.pending);
        let mut i = 0;
        while i < queue.len() {
            if queue[i].due <= now {
                let p = queue.swap_remove(i);
                if p.attempt > 0 {
                    self.stats.retries_issued += 1;
                }
                self.probe_od_attempt(p.market, p.trigger, now, p.attempt);
            } else {
                i += 1;
            }
        }
        // Anything probe_od_attempt re-enqueued joins the survivors.
        queue.append(&mut self.pending);
        self.pending = queue;
    }

    fn handle_events(&mut self, events: Vec<CloudEvent>, now: SimTime) {
        self.batches_handled += 1;
        if let Some(period) = self.resilience.chaos_panic_period {
            if self.batches_handled.is_multiple_of(period) {
                panic!("chaos: injected worker panic (region {:?})", self.region);
            }
        }
        self.reap_orphans(now);
        self.dispatch_due(now);

        // Due recovery probes (the batch cadence is the tick).
        let due: Vec<MarketId> = self
            .recovery_due
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&m, _)| m)
            .collect();
        for market in due {
            self.recovery_due
                .insert(market, now + self.policy.reprobe_interval);
            self.probe_od(market, ProbeTrigger::Recovery, now);
        }

        for event in events {
            let market = match event {
                CloudEvent::PriceChange { market, .. } => market,
                CloudEvent::CapacityEvictionNotice {
                    market, evict_at, ..
                } => {
                    // A provider-pushed interruption notice: a free
                    // observation, recorded without any API call.
                    self.stats.probes_issued += 1;
                    self.store.record_probe(ProbeRecord {
                        at: now,
                        market,
                        kind: ProbeKind::InterruptionNotice,
                        trigger: ProbeTrigger::EvictionNotice { evict_at },
                        outcome: ProbeOutcome::CapacityNotAvailable,
                        spot_ratio: 0.0,
                        bid: None,
                        cost: Price::ZERO,
                    });
                    continue;
                }
                _ => continue,
            };
            let CloudEvent::PriceChange { price, .. } = event else {
                unreachable!("only price changes fall through");
            };
            debug_assert_eq!(market.region(), self.region);
            let ratio = price.ratio_to(self.catalog.od_price(market));
            if ratio < self.policy.spike_threshold {
                continue;
            }
            if self
                .cooldown_until
                .get(&market)
                .is_some_and(|&until| now < until)
            {
                continue;
            }
            self.cooldown_until
                .insert(market, now + self.policy.market_cooldown);
            self.store.record_spike(SpikeEvent {
                market,
                at: now,
                ratio,
                probed: true,
            });
            self.probe_od(market, ProbeTrigger::PriceSpike { ratio }, now);

            // Fan out while we still believe the market is unavailable.
            if self.recovery_due.contains_key(&market) {
                if self.policy.family_fanout {
                    for sibling in self.catalog.family_siblings(market) {
                        self.probe_od(
                            sibling,
                            ProbeTrigger::FamilyFanout {
                                origin: market,
                                origin_ratio: ratio,
                            },
                            now,
                        );
                    }
                }
                if self.policy.cross_az_fanout {
                    for sibling in self.catalog.az_siblings(market) {
                        self.probe_od(
                            sibling,
                            ProbeTrigger::CrossAzFanout {
                                origin: market,
                                origin_ratio: ratio,
                            },
                            now,
                        );
                    }
                }
            }
        }
    }

    fn run(mut self, rx: Receiver<RegionMsg>) -> WorkerStats {
        let mut last_now = SimTime::ZERO;
        while let Ok(msg) = rx.recv() {
            match msg {
                RegionMsg::Events(events, now) => {
                    last_now = now;
                    // Supervision: a panic while handling one batch
                    // must not take the region manager down. The worker
                    // keeps its pending queue, recovery schedule, and
                    // orphan list; the panic is counted and fed to the
                    // circuit breaker like any other transport-layer
                    // failure, so a persistently-crashing region backs
                    // off instead of crash-looping at full speed.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.handle_events(events, now)
                    }));
                    if outcome.is_err() {
                        self.stats.worker_panics += 1;
                        self.on_transport_failure(now);
                    }
                    // Ack even a panicked batch: the driver's lockstep
                    // clock must never wait on a batch that will not
                    // complete.
                    let _ = self.ack.send(());
                }
                RegionMsg::Shutdown => break,
            }
        }
        // Fold a still-open degraded episode into the counters so the
        // report sees it even when the run ends mid-outage.
        if let Some(since) = self.degraded_since.take() {
            self.stats.degraded_secs += last_now.saturating_since(since).as_secs();
        }
        self.stats
    }
}

/// Runs the threaded deployment over `cloud` and records into `store`.
///
/// Returns the cloud (for post-run oracle inspection) and a run summary.
/// The store passed in receives every probe and spike, plus region
/// degradation markers from the workers' circuit breakers.
pub fn run_live(cloud: Cloud, store: SharedStore, config: LiveConfig) -> (Cloud, LiveReport) {
    config.policy.validate().expect("invalid policy");
    config.resilience.validate().expect("invalid resilience");
    let regions: Vec<Region> = cloud.catalog().regions();
    let catalog = cloud.catalog().clone();
    // The report counts THIS run's probes even on a pre-populated store.
    let probes_at_start = store.len();
    let durable_at_start = store.durability_stats();
    let shared: SharedCloud = Arc::new(Mutex::new(cloud));

    // Region managers, writing straight into the striped store. Each
    // worker acks on its own channel so the driver can tell *which*
    // manager went silent if one dies outright.
    let mut region_txs: HashMap<Region, Sender<RegionMsg>> = HashMap::new();
    let mut acks: HashMap<Region, Receiver<()>> = HashMap::new();
    let mut handles = Vec::new();
    for &region in &regions {
        let (tx, rx) = channel::<RegionMsg>();
        let (ack_tx, ack_rx) = channel::<()>();
        region_txs.insert(region, tx);
        acks.insert(region, ack_rx);
        let worker = RegionWorker {
            region,
            policy: config.policy.clone(),
            resilience: config.resilience.clone(),
            cloud: shared.clone(),
            catalog: catalog.clone(),
            store: store.clone(),
            cooldown_until: HashMap::new(),
            recovery_due: HashMap::new(),
            pending: Vec::new(),
            orphans: Vec::new(),
            breaker: Breaker::Closed,
            consecutive_failures: 0,
            degraded_since: None,
            rng: SimRng::seed_from(0x00C0_FFEE ^ region.index() as u64),
            stats: WorkerStats::default(),
            batches_handled: 0,
            ack: ack_tx,
        };
        handles.push((region, thread::spawn(move || worker.run(rx))));
    }

    // Driver: advance the cloud, fan events out per region. The drain
    // buffer and the per-region routing map are reused across ticks;
    // only the event batches themselves are allocated per tick, because
    // their ownership crosses the channel to the region managers.
    let tick = { shared.lock().config().tick };
    let ticks = config.duration.as_secs() / tick.as_secs().max(1);
    let mut events: Vec<CloudEvent> = Vec::new();
    let mut per_region: HashMap<Region, Vec<CloudEvent>> =
        region_txs.keys().map(|&r| (r, Vec::new())).collect();
    for _ in 0..ticks {
        let now = {
            let mut cloud = shared.lock();
            cloud.tick();
            cloud.drain_events_into(&mut events);
            cloud.now()
        };
        for event in events.drain(..) {
            let market = match event {
                CloudEvent::PriceChange { market, .. }
                | CloudEvent::CapacityEvictionNotice { market, .. } => market,
                _ => continue,
            };
            if let Some(batch) = per_region.get_mut(&market.region()) {
                batch.push(event);
            }
        }
        for (&region, tx) in &region_txs {
            let batch = std::mem::take(per_region.get_mut(&region).expect("prebuilt"));
            let _ = tx.send(RegionMsg::Events(batch, now));
        }
        // Lockstep: hold the clock until every live region manager
        // drained this tick's batch, so probes (and chaos faults)
        // happen at the simulated times they were scheduled for,
        // independent of how the OS schedules the worker threads. A
        // manager whose thread died outright (its ack channel hung up)
        // is struck from the rotation — the run degrades to the
        // surviving regions instead of wedging the clock.
        let mut dead: Vec<Region> = Vec::new();
        for &region in region_txs.keys() {
            if acks[&region].recv().is_err() {
                dead.push(region);
            }
        }
        for region in dead {
            region_txs.remove(&region);
        }
        // Durability maintenance rides the driver's clock: if the
        // store degraded (disk faults), this is where heals run.
        let _ = store.tend_durability();
    }
    for tx in region_txs.values() {
        let _ = tx.send(RegionMsg::Shutdown);
    }

    let mut per_region_probes = HashMap::new();
    let mut retries_issued = 0;
    let mut probes_abandoned = 0;
    let mut breaker_trips = 0;
    let mut degraded_secs = HashMap::new();
    let mut worker_panics = 0;
    for (region, handle) in handles {
        let stats = handle.join().unwrap_or_else(|_| {
            // The thread died outside the supervised batch loop: its
            // counters are lost, but the death itself is reported.
            WorkerStats {
                worker_panics: 1,
                ..WorkerStats::default()
            }
        });
        per_region_probes.insert(region, stats.probes_issued);
        retries_issued += stats.retries_issued;
        probes_abandoned += stats.probes_abandoned;
        breaker_trips += stats.breaker_trips;
        worker_panics += stats.worker_panics;
        if stats.degraded_secs > 0 {
            degraded_secs.insert(region, stats.degraded_secs);
        }
    }
    let probes = store.len() - probes_at_start;

    // Make the run durable before reporting: everything the workers
    // appended is on disk when this returns. An in-memory store's
    // flush is a no-op; a failing disk surfaces through
    // `durability_stats`, not a panic mid-report.
    let _ = store.flush();
    let (durable_ops, durable_bytes, durable_fsyncs, durable_io_errors, durable_ops_dropped) =
        match (durable_at_start, store.durability_stats()) {
            (Some(start), Some(end)) => (
                end.appended_ops - start.appended_ops,
                end.appended_bytes - start.appended_bytes,
                end.fsyncs - start.fsyncs,
                end.io_errors - start.io_errors,
                end.ops_dropped - start.ops_dropped,
            ),
            _ => (0, 0, 0, 0, 0),
        };
    let durability_lost = store.durability_lost();

    let cloud = Arc::into_inner(shared)
        .expect("all workers joined")
        .into_inner();
    (
        cloud,
        LiveReport {
            probes,
            per_region_probes,
            ticks,
            retries_issued,
            probes_abandoned,
            breaker_trips,
            degraded_secs,
            durable_ops,
            durable_bytes,
            durable_fsyncs,
            worker_panics,
            durable_io_errors,
            durable_ops_dropped,
            durability_lost,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::shared_store;
    use cloud_sim::config::SimConfig;

    #[test]
    fn live_run_collects_probes_concurrently() {
        let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(21));
        cloud.warmup(20);
        let store = shared_store();
        // Pre-populate one record: the report must count only this
        // run's probes, not the store's lifetime total.
        let seeded = crate::probe::ProbeRecord {
            at: cloud_sim::time::SimTime::ZERO,
            market: cloud.catalog().markets()[0],
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::Recovery,
            outcome: ProbeOutcome::Fulfilled,
            spot_ratio: 0.5,
            bid: None,
            cost: Price::ZERO,
        };
        store.record_probe(seeded);
        let config = LiveConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                ..PolicyConfig::default()
            },
            duration: SimDuration::days(2),
            ..LiveConfig::default()
        };
        let (cloud, report) = run_live(cloud, store.clone(), config);
        assert_eq!(report.ticks, 2 * 86_400 / 300);
        assert_eq!(report.probes, store.len() - 1);
        assert!(
            report.per_region_probes.len() >= 2,
            "both testbed regions should have managers"
        );
        // The cloud is returned intact and time advanced.
        assert_eq!(
            cloud.now().as_secs(),
            20 * 300 + 2 * 86_400 // warmup + live run
        );
        // Probe volume equals the per-region sums: nothing is lost
        // between the workers' direct stripe writes and the store.
        let sum: usize = report.per_region_probes.values().sum();
        assert_eq!(sum, report.probes);
        // No chaos here, but ordinary rate-limit throttling is a
        // transport failure too, so the breaker may legitimately trip.
        // What must hold: degraded time is only accounted against
        // regions whose breaker actually tripped.
        assert!(report.degraded_secs.is_empty() || report.breaker_trips > 0);
    }

    #[test]
    fn live_and_engine_modes_find_the_same_phenomena() {
        // Not bit-identical (thread interleavings differ) but both must
        // observe spikes on the same volatile testbed.
        let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(23));
        cloud.warmup(20);
        let store = shared_store();
        let (_, report) = run_live(
            cloud,
            store.clone(),
            LiveConfig {
                policy: PolicyConfig {
                    spike_threshold: 0.5,
                    ..PolicyConfig::default()
                },
                duration: SimDuration::days(3),
                ..LiveConfig::default()
            },
        );
        assert!(report.probes > 0, "expected probes in three days");
        assert!(store.read().spikes().next().is_some());
    }

    #[test]
    fn durable_live_run_recovers_identically() {
        use crate::durable::DurableOptions;
        use crate::store::DataStore;
        use spotlight_persist::tempdir::TempDir;

        let tmp = TempDir::new("live-durable");
        let dir = tmp.path().join("store");
        let store: SharedStore =
            Arc::new(DataStore::create_durable(&dir, DurableOptions::default()).expect("create"));
        let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(29));
        cloud.warmup(20);
        let (_, report) = run_live(
            cloud,
            store.clone(),
            LiveConfig {
                policy: PolicyConfig {
                    spike_threshold: 0.5,
                    ..PolicyConfig::default()
                },
                duration: SimDuration::days(1),
                ..LiveConfig::default()
            },
        );
        assert!(report.probes > 0);
        assert!(report.durable_ops >= report.probes as u64);
        assert!(report.durable_bytes > 0);
        assert!(report.durable_fsyncs > 0);

        // Fingerprint the live store, drop it (joining the log
        // writer), and demand the recovered store answer identically.
        let markets: Vec<_> = {
            let r = store.read();
            r.probes().map(|p| p.market).collect()
        };
        let live_len = store.len();
        let live_cost = store.total_cost();
        let live_suppressed = store.suppressed_probes();
        let live_stats: Vec<_> = markets
            .iter()
            .map(|&m| store.read().probe_stats(m, ProbeKind::OnDemand))
            .collect();
        drop(store);

        let recovered = DataStore::recover(&dir).expect("recover");
        assert_eq!(recovered.len(), live_len);
        assert_eq!(recovered.total_cost(), live_cost);
        assert_eq!(recovered.suppressed_probes(), live_suppressed);
        let r = recovered.read();
        assert_eq!(r.probes().count(), live_len);
        for (m, want) in markets.iter().zip(live_stats) {
            assert_eq!(r.probe_stats(*m, ProbeKind::OnDemand), want);
        }
    }

    /// Installs a panic hook that swallows the injected chaos panics
    /// (they are expected noise here) but forwards everything else.
    fn silence_chaos_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info.payload();
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if !msg.starts_with("chaos:") {
                    default_hook(info);
                }
            }));
        });
    }

    #[test]
    fn supervised_workers_survive_injected_panics() {
        silence_chaos_panics();
        let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(31));
        cloud.warmup(20);
        let store = shared_store();
        let config = LiveConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                ..PolicyConfig::default()
            },
            duration: SimDuration::days(2),
            resilience: ResilienceConfig {
                // Every 40th batch dies mid-flight, per region.
                chaos_panic_period: Some(40),
                ..ResilienceConfig::default()
            },
        };
        let (cloud, report) = run_live(cloud, store.clone(), config);
        let ticks = 2 * 86_400 / 300;
        assert_eq!(report.ticks, ticks, "the clock never wedges");
        let expected_panics: u64 = (ticks / 40) * report.per_region_probes.len() as u64;
        assert_eq!(
            report.worker_panics, expected_panics,
            "every injected panic is caught and counted"
        );
        assert!(report.probes > 0, "the workers kept probing after panics");
        assert_eq!(report.probes, store.len());
        // The cloud came back: every worker survived to be joined.
        assert_eq!(cloud.now().as_secs(), 20 * 300 + 2 * 86_400);
    }

    #[test]
    fn resilience_validation_catches_zeros() {
        let r = ResilienceConfig {
            retry_budget: 0,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
        let r = ResilienceConfig {
            breaker_threshold: 0,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
        let r = ResilienceConfig {
            max_pending: 0,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
        ResilienceConfig::default().validate().unwrap();
    }
}
