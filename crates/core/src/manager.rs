//! The live deployment: Chapter 4's hierarchical managers, as threads.
//!
//! The paper's prototype ran region managers (one per region, batching
//! state polls and enforcing service limits), per-market probe managers,
//! and a database manager that serialized all writes. This module
//! reproduces that shape with real concurrency:
//!
//! * a **driver** advances the shared cloud tick by tick and fans each
//!   region's events out to its region manager over a channel;
//! * **region managers** (one thread per region) run the spike-triggered
//!   probing policy against the shared cloud, keeping their own
//!   re-probe (recovery) schedules.
//!
//! The paper's *database manager* — a thread serializing every write —
//! is subsumed by the lock-striped [`SharedStore`]: region managers
//! record probes and spikes directly, and only writers hitting the same
//! market-hash stripe contend. Each worker also keeps its own clone of
//! the immutable catalog, so price/sibling lookups never touch the
//! cloud lock; the cloud is locked only for the API calls that actually
//! mutate it.
//!
//! The engine-hosted [`crate::spotlight::SpotLight`] agent is the
//! deterministic twin of this deployment; the live mode exists to
//! demonstrate and test the concurrent architecture (mpsc channels,
//! [`crate::sync::Mutex`] for the cloud, the store's internal
//! [`crate::sync::RwLock`] stripes) at the cost of determinism across
//! thread interleavings. Within one region, probing is deterministic.

use crate::policy::PolicyConfig;
use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
use crate::store::{SharedStore, SpikeEvent};
use crate::sync::Mutex;
use cloud_sim::api::ApiError;
use cloud_sim::catalog::Catalog;
use cloud_sim::cloud::{Cloud, CloudEvent};
use cloud_sim::ids::{MarketId, Region};
use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

/// A cloud shared between the driver and the region managers.
pub type SharedCloud = Arc<Mutex<Cloud>>;

/// Configuration for a live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The probing policy all region managers apply.
    pub policy: PolicyConfig,
    /// How long (simulation time) to run.
    pub duration: SimDuration,
}

/// Summary of a live run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveReport {
    /// Probes recorded.
    pub probes: usize,
    /// Probes issued per region.
    pub per_region_probes: HashMap<Region, usize>,
    /// Ticks driven.
    pub ticks: u64,
}

enum RegionMsg {
    Events(Vec<CloudEvent>, SimTime),
    Shutdown,
}

/// One region manager's probing state.
struct RegionWorker {
    region: Region,
    policy: PolicyConfig,
    cloud: SharedCloud,
    /// The immutable market catalog, cloned once at spawn so lookups
    /// need no cloud lock.
    catalog: Catalog,
    store: SharedStore,
    cooldown_until: HashMap<MarketId, SimTime>,
    /// Markets awaiting recovery, with their next re-probe time.
    recovery_due: HashMap<MarketId, SimTime>,
    probes_issued: usize,
}

impl RegionWorker {
    fn probe_od(&mut self, market: MarketId, trigger: ProbeTrigger, now: SimTime) {
        let od_price = self.catalog.od_price(market);
        // Cloud critical section: just the API call and the price read.
        let (outcome, cost, spot_ratio) = {
            let mut cloud = self.cloud.lock();
            let (outcome, cost) = match cloud.run_od_instance(market) {
                Ok(id) => {
                    let cost = cloud.terminate_od_instance(id).unwrap_or(od_price);
                    (ProbeOutcome::Fulfilled, cost)
                }
                Err(ApiError::InsufficientInstanceCapacity { .. }) => {
                    (ProbeOutcome::InsufficientCapacity, Price::ZERO)
                }
                Err(_) => (ProbeOutcome::ApiLimited, Price::ZERO),
            };
            let spot_ratio = cloud
                .oracle_published_price(market)
                .map_or(0.0, |p| p.ratio_to(od_price));
            (outcome, cost, spot_ratio)
        };
        self.probes_issued += 1;
        // Direct striped write: locks only this market's stripe.
        self.store.record_probe(ProbeRecord {
            at: now,
            market,
            kind: ProbeKind::OnDemand,
            trigger,
            outcome,
            spot_ratio,
            bid: None,
            cost,
        });
        match outcome {
            ProbeOutcome::InsufficientCapacity => {
                self.recovery_due
                    .entry(market)
                    .or_insert(now + self.policy.reprobe_interval);
            }
            ProbeOutcome::Fulfilled => {
                self.recovery_due.remove(&market);
            }
            _ => {}
        }
    }

    fn handle_events(&mut self, events: Vec<CloudEvent>, now: SimTime) {
        // Due recovery probes first (the batch cadence is the tick).
        let due: Vec<MarketId> = self
            .recovery_due
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&m, _)| m)
            .collect();
        for market in due {
            self.recovery_due
                .insert(market, now + self.policy.reprobe_interval);
            self.probe_od(market, ProbeTrigger::Recovery, now);
        }

        for event in events {
            let CloudEvent::PriceChange { market, price, .. } = event else {
                continue;
            };
            debug_assert_eq!(market.region(), self.region);
            let ratio = price.ratio_to(self.catalog.od_price(market));
            if ratio < self.policy.spike_threshold {
                continue;
            }
            if self
                .cooldown_until
                .get(&market)
                .is_some_and(|&until| now < until)
            {
                continue;
            }
            self.cooldown_until
                .insert(market, now + self.policy.market_cooldown);
            self.store.record_spike(SpikeEvent {
                market,
                at: now,
                ratio,
                probed: true,
            });
            self.probe_od(market, ProbeTrigger::PriceSpike { ratio }, now);

            // Fan out while we still believe the market is unavailable.
            if self.recovery_due.contains_key(&market) {
                if self.policy.family_fanout {
                    for sibling in self.catalog.family_siblings(market) {
                        self.probe_od(
                            sibling,
                            ProbeTrigger::FamilyFanout {
                                origin: market,
                                origin_ratio: ratio,
                            },
                            now,
                        );
                    }
                }
                if self.policy.cross_az_fanout {
                    for sibling in self.catalog.az_siblings(market) {
                        self.probe_od(
                            sibling,
                            ProbeTrigger::CrossAzFanout {
                                origin: market,
                                origin_ratio: ratio,
                            },
                            now,
                        );
                    }
                }
            }
        }
    }

    fn run(mut self, rx: Receiver<RegionMsg>) -> usize {
        while let Ok(msg) = rx.recv() {
            match msg {
                RegionMsg::Events(events, now) => self.handle_events(events, now),
                RegionMsg::Shutdown => break,
            }
        }
        self.probes_issued
    }
}

/// Runs the threaded deployment over `cloud` and records into `store`.
///
/// Returns the cloud (for post-run oracle inspection) and a run summary.
/// The store passed in receives every probe and spike.
pub fn run_live(cloud: Cloud, store: SharedStore, config: LiveConfig) -> (Cloud, LiveReport) {
    config.policy.validate().expect("invalid policy");
    let regions: Vec<Region> = cloud.catalog().regions();
    let catalog = cloud.catalog().clone();
    // The report counts THIS run's probes even on a pre-populated store.
    let probes_at_start = store.len();
    let shared: SharedCloud = Arc::new(Mutex::new(cloud));

    // Region managers, writing straight into the striped store.
    let mut region_txs: HashMap<Region, Sender<RegionMsg>> = HashMap::new();
    let mut handles = Vec::new();
    for &region in &regions {
        let (tx, rx) = channel::<RegionMsg>();
        region_txs.insert(region, tx);
        let worker = RegionWorker {
            region,
            policy: config.policy.clone(),
            cloud: shared.clone(),
            catalog: catalog.clone(),
            store: store.clone(),
            cooldown_until: HashMap::new(),
            recovery_due: HashMap::new(),
            probes_issued: 0,
        };
        handles.push((region, thread::spawn(move || worker.run(rx))));
    }

    // Driver: advance the cloud, fan events out per region. The drain
    // buffer and the per-region routing map are reused across ticks;
    // only the event batches themselves are allocated per tick, because
    // their ownership crosses the channel to the region managers.
    let tick = { shared.lock().config().tick };
    let ticks = config.duration.as_secs() / tick.as_secs().max(1);
    let mut events: Vec<CloudEvent> = Vec::new();
    let mut per_region: HashMap<Region, Vec<CloudEvent>> =
        region_txs.keys().map(|&r| (r, Vec::new())).collect();
    for _ in 0..ticks {
        let now = {
            let mut cloud = shared.lock();
            cloud.tick();
            cloud.drain_events_into(&mut events);
            cloud.now()
        };
        for event in events.drain(..) {
            if let CloudEvent::PriceChange { market, .. } = event {
                if let Some(batch) = per_region.get_mut(&market.region()) {
                    batch.push(event);
                }
            }
        }
        for (&region, tx) in &region_txs {
            let batch = std::mem::take(per_region.get_mut(&region).expect("prebuilt"));
            let _ = tx.send(RegionMsg::Events(batch, now));
        }
    }
    for tx in region_txs.values() {
        let _ = tx.send(RegionMsg::Shutdown);
    }

    let mut per_region_probes = HashMap::new();
    for (region, handle) in handles {
        per_region_probes.insert(region, handle.join().expect("region manager panicked"));
    }
    let probes = store.len() - probes_at_start;

    let cloud = Arc::into_inner(shared)
        .expect("all workers joined")
        .into_inner();
    (
        cloud,
        LiveReport {
            probes,
            per_region_probes,
            ticks,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::shared_store;
    use cloud_sim::config::SimConfig;

    #[test]
    fn live_run_collects_probes_concurrently() {
        let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(21));
        cloud.warmup(20);
        let store = shared_store();
        // Pre-populate one record: the report must count only this
        // run's probes, not the store's lifetime total.
        let seeded = crate::probe::ProbeRecord {
            at: cloud_sim::time::SimTime::ZERO,
            market: cloud.catalog().markets()[0],
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::Recovery,
            outcome: ProbeOutcome::Fulfilled,
            spot_ratio: 0.5,
            bid: None,
            cost: Price::ZERO,
        };
        store.record_probe(seeded);
        let config = LiveConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                ..PolicyConfig::default()
            },
            duration: SimDuration::days(2),
        };
        let (cloud, report) = run_live(cloud, store.clone(), config);
        assert_eq!(report.ticks, 2 * 86_400 / 300);
        assert_eq!(report.probes, store.len() - 1);
        assert!(
            report.per_region_probes.len() >= 2,
            "both testbed regions should have managers"
        );
        // The cloud is returned intact and time advanced.
        assert_eq!(
            cloud.now().as_secs(),
            20 * 300 + 2 * 86_400 // warmup + live run
        );
        // Probe volume equals the per-region sums: nothing is lost
        // between the workers' direct stripe writes and the store.
        let sum: usize = report.per_region_probes.values().sum();
        assert_eq!(sum, report.probes);
    }

    #[test]
    fn live_and_engine_modes_find_the_same_phenomena() {
        // Not bit-identical (thread interleavings differ) but both must
        // observe spikes on the same volatile testbed.
        let mut cloud = Cloud::new(Catalog::testbed(), SimConfig::paper(23));
        cloud.warmup(20);
        let store = shared_store();
        let (_, report) = run_live(
            cloud,
            store.clone(),
            LiveConfig {
                policy: PolicyConfig {
                    spike_threshold: 0.5,
                    ..PolicyConfig::default()
                },
                duration: SimDuration::days(3),
            },
        );
        assert!(report.probes > 0, "expected probes in three days");
        assert!(store.read().spikes().next().is_some());
    }
}
