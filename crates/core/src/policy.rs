//! Policy configuration: when and where SpotLight probes.
//!
//! The market-based probing policy of §3.1–§3.4: trigger a probe when a
//! spot price spikes above `T × od`, sample triggers with probability
//! `p`, re-probe unavailable markets every `δ` until they recover, fan
//! out to related markets (same family, other zones) after a detection,
//! and verify the other contract type. Costs are bounded by a windowed
//! budget (see [`crate::budget`]).

use crate::budget::BudgetConfig;
use cloud_sim::ids::MarketId;
use cloud_sim::time::SimDuration;

/// The market-based probing policy parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyConfig {
    /// Trigger threshold `T`: probe when spot/od ≥ this multiple. The
    /// paper's deployment used `T = 1` (the on-demand price).
    pub spike_threshold: f64,
    /// Sampling probability `p` applied to each trigger (§3.4).
    pub sampling_probability: f64,
    /// Probability of probing a price change *below* the threshold —
    /// the §3.4 trick of lowering `p` to sample less-volatile events,
    /// used to populate the low spike buckets of Figure 5.4 cheaply.
    pub subthreshold_sampling: f64,
    /// Re-probe interval `δ` for unavailable markets (§3.2).
    pub reprobe_interval: SimDuration,
    /// Probe other types in the same family and zone after a detection
    /// (§3.2.1).
    pub family_fanout: bool,
    /// Probe the same type in the region's other zones after a detection
    /// (§3.2.2).
    pub cross_az_fanout: bool,
    /// Issue a spot probe when on-demand is rejected and an on-demand
    /// probe when spot capacity is unavailable (Chapter 4 / §5.4).
    pub cross_verify: bool,
    /// Minimum time between spike-triggered probes of one market; keeps
    /// repeated spikes from burning the budget on known state.
    pub market_cooldown: SimDuration,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            spike_threshold: 1.0,
            sampling_probability: 1.0,
            subthreshold_sampling: 0.0,
            reprobe_interval: SimDuration::from_secs(300),
            family_fanout: true,
            cross_az_fanout: true,
            cross_verify: true,
            market_cooldown: SimDuration::from_secs(1800),
        }
    }
}

impl PolicyConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.sampling_probability) {
            return Err(format!(
                "sampling_probability must be in [0,1], got {}",
                self.sampling_probability
            ));
        }
        if !(0.0..=1.0).contains(&self.subthreshold_sampling) {
            return Err(format!(
                "subthreshold_sampling must be in [0,1], got {}",
                self.subthreshold_sampling
            ));
        }
        if self.spike_threshold < 0.0 || !self.spike_threshold.is_finite() {
            return Err(format!(
                "spike_threshold must be non-negative, got {}",
                self.spike_threshold
            ));
        }
        if self.reprobe_interval.is_zero() {
            return Err("reprobe_interval must be positive".into());
        }
        Ok(())
    }
}

/// Periodic spot capacity checking (`CheckCapacity`, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpotCheckConfig {
    /// Wake interval between batches.
    pub interval: SimDuration,
    /// Markets probed per batch (round-robin over the catalog).
    pub batch_size: usize,
}

impl Default for SpotCheckConfig {
    fn default() -> Self {
        SpotCheckConfig {
            interval: SimDuration::from_secs(600),
            batch_size: 64,
        }
    }
}

/// Full SpotLight deployment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotLightConfig {
    /// The probing policy.
    pub policy: PolicyConfig,
    /// The cost budget.
    pub budget: BudgetConfig,
    /// Periodic spot probing; `None` disables it.
    pub spot_check: Option<SpotCheckConfig>,
    /// Markets to run the intrinsic-bid (`BidSpread`) search on.
    pub bidspread_markets: Vec<MarketId>,
    /// Interval between `BidSpread` runs per market.
    pub bidspread_interval: SimDuration,
    /// Markets to hold spot instances in during spikes (`Revocation`).
    pub revocation_watch: Vec<MarketId>,
    /// Maximum hold before voluntarily releasing a revocation watch.
    pub revocation_hold_max: SimDuration,
    /// Seed for the policy's own sampling randomness.
    pub seed: u64,
}

impl Default for SpotLightConfig {
    fn default() -> Self {
        SpotLightConfig {
            policy: PolicyConfig::default(),
            budget: BudgetConfig::default(),
            spot_check: Some(SpotCheckConfig::default()),
            bidspread_markets: Vec::new(),
            bidspread_interval: SimDuration::hours(4),
            revocation_watch: Vec::new(),
            revocation_hold_max: SimDuration::hours(6),
            seed: 0x5f07,
        }
    }
}

impl SpotLightConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.policy.validate()?;
        if let Some(sc) = &self.spot_check {
            if sc.batch_size == 0 {
                return Err("spot_check.batch_size must be positive".into());
            }
            if sc.interval.is_zero() {
                return Err("spot_check.interval must be positive".into());
            }
        }
        if !self.bidspread_markets.is_empty() && self.bidspread_interval.is_zero() {
            return Err("bidspread_interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let p = PolicyConfig::default();
        assert_eq!(p.spike_threshold, 1.0, "paper: T = on-demand price");
        assert_eq!(p.sampling_probability, 1.0, "paper: sample every event");
        assert!(p.family_fanout && p.cross_az_fanout && p.cross_verify);
        p.validate().unwrap();
        SpotLightConfig::default().validate().unwrap();
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_rejects_bad_values() {
        let mut p = PolicyConfig::default();
        p.sampling_probability = 1.5;
        assert!(p.validate().is_err());

        let mut p = PolicyConfig::default();
        p.spike_threshold = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = PolicyConfig::default();
        p.reprobe_interval = SimDuration::ZERO;
        assert!(p.validate().is_err());

        let mut c = SpotLightConfig::default();
        c.spot_check = Some(SpotCheckConfig {
            interval: SimDuration::ZERO,
            batch_size: 1,
        });
        assert!(c.validate().is_err());

        let mut c = SpotLightConfig::default();
        c.spot_check = Some(SpotCheckConfig {
            interval: SimDuration::from_secs(60),
            batch_size: 0,
        });
        assert!(c.validate().is_err());
    }
}
