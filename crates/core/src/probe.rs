//! Probe vocabulary: what SpotLight asks the cloud and what it learns.
//!
//! A *probe* is a request for an on-demand or spot server issued purely
//! to learn whether the market can deliver one (§2.2). Chapter 4 of the
//! paper names five probing functions — `RequestOnDemand`,
//! `RequestInsufficiency`, `CheckCapacity`, `BidSpread`, `Revocation` —
//! all of which reduce to the two [`ProbeKind`]s here plus the
//! [`ProbeTrigger`] explaining *why* the probe was sent (the trigger is
//! what the Figure 5.7 attribution analysis needs).

use cloud_sim::ids::MarketId;
use cloud_sim::price::Price;
use cloud_sim::time::SimTime;

/// Which contract a probe exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// A `run_instances` request for an on-demand server.
    OnDemand,
    /// A spot instance request with an explicit bid.
    Spot,
    /// Not a request at all: a provider-pushed capacity interruption
    /// notice (a `CapacityEvictionNotice` cloud event). Free — no API
    /// call — and recorded so the diverse failure signals real
    /// providers emit are visible alongside probe-derived observations.
    InterruptionNotice,
}

/// Why SpotLight issued a probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeTrigger {
    /// The spot price spiked above the policy threshold (`RequestOnDemand`).
    PriceSpike {
        /// Spot/on-demand price ratio at the trigger.
        ratio: f64,
    },
    /// Fan-out after detecting an unavailable server: probing another
    /// type in the same family, same zone (§3.2.1).
    FamilyFanout {
        /// The market whose rejection triggered the fan-out.
        origin: MarketId,
        /// The spike ratio of the originating detection.
        origin_ratio: f64,
    },
    /// Fan-out after detecting an unavailable server: probing the same
    /// type in another zone (§3.2.2).
    CrossAzFanout {
        /// The market whose rejection triggered the fan-out.
        origin: MarketId,
        /// The spike ratio of the originating detection.
        origin_ratio: f64,
    },
    /// Periodic re-probe of a known-unavailable market until it recovers
    /// (`RequestInsufficiency`).
    Recovery,
    /// Periodic spot capacity check (`CheckCapacity`).
    Periodic,
    /// Verification probe of the *other* contract after a detection
    /// (spot request on od-insufficiency, od request on spot
    /// capacity-not-available; §5.4).
    CrossVerify {
        /// The market whose detection triggered the verification.
        origin: MarketId,
    },
    /// A step of an intrinsic-bid search (`BidSpread`).
    BidSearch,
    /// A revocation-observation hold (`Revocation`).
    RevocationWatch,
    /// A provider-pushed capacity eviction notice was received for the
    /// market (no probe was sent; the record is the notice itself).
    EvictionNotice {
        /// When the announced reclaim lands.
        evict_at: SimTime,
    },
}

impl ProbeTrigger {
    /// The spike ratio associated with the trigger, when there is one.
    pub fn spike_ratio(&self) -> Option<f64> {
        match self {
            ProbeTrigger::PriceSpike { ratio } => Some(*ratio),
            ProbeTrigger::FamilyFanout { origin_ratio, .. }
            | ProbeTrigger::CrossAzFanout { origin_ratio, .. } => Some(*origin_ratio),
            _ => None,
        }
    }

    /// True for the fan-out triggers (related-market probes).
    pub fn is_related(&self) -> bool {
        matches!(
            self,
            ProbeTrigger::FamilyFanout { .. } | ProbeTrigger::CrossAzFanout { .. }
        )
    }
}

/// What a probe learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOutcome {
    /// The request was fulfilled: the market is obtainable.
    Fulfilled,
    /// On-demand rejection: `InsufficientInstanceCapacity`.
    InsufficientCapacity,
    /// Spot rejection: `capacity-not-available`.
    CapacityNotAvailable,
    /// Spot hold: bid below the spot price.
    PriceTooLow,
    /// Spot hold: `capacity-oversubscribed`.
    CapacityOversubscribed,
    /// The probe itself could not be sent (service/rate limits); carries
    /// no availability information.
    ApiLimited,
}

impl ProbeOutcome {
    /// True when the outcome signals the market could not deliver a
    /// server (a genuine unavailability observation).
    pub fn is_unavailable(self) -> bool {
        matches!(
            self,
            ProbeOutcome::InsufficientCapacity | ProbeOutcome::CapacityNotAvailable
        )
    }

    /// True when the outcome carries availability information at all.
    pub fn is_informative(self) -> bool {
        self != ProbeOutcome::ApiLimited
    }
}

/// One probe and its result — the unit record in SpotLight's database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// When the probe was issued.
    pub at: SimTime,
    /// The market probed.
    pub market: MarketId,
    /// On-demand or spot.
    pub kind: ProbeKind,
    /// Why it was issued.
    pub trigger: ProbeTrigger,
    /// What it learned.
    pub outcome: ProbeOutcome,
    /// The spot/on-demand price ratio of the market at probe time.
    pub spot_ratio: f64,
    /// The bid, for spot probes.
    pub bid: Option<Price>,
    /// What the probe cost (fulfilled probes pay the one-hour minimum).
    pub cost: Price,
}

/// A measured unavailability interval for one market and contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnavailabilityInterval {
    /// The market.
    pub market: MarketId,
    /// On-demand or spot unavailability.
    pub kind: ProbeKind,
    /// First rejected probe.
    pub start: SimTime,
    /// First fulfilled probe after the rejections; `None` while open.
    pub end: Option<SimTime>,
    /// The spike ratio of the detection that opened the interval.
    pub detect_ratio: f64,
    /// Whether the detection came from a related-market fan-out probe.
    pub detected_via_related: bool,
}

impl UnavailabilityInterval {
    /// The measured duration, if the interval has closed.
    pub fn duration(&self) -> Option<cloud_sim::time::SimDuration> {
        self.end.map(|e| e.saturating_since(self.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::ids::{Az, Platform, Region};
    use cloud_sim::time::SimDuration;

    fn market() -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, 0),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    #[test]
    fn trigger_ratios() {
        assert_eq!(
            ProbeTrigger::PriceSpike { ratio: 2.5 }.spike_ratio(),
            Some(2.5)
        );
        assert_eq!(
            ProbeTrigger::FamilyFanout {
                origin: market(),
                origin_ratio: 3.0
            }
            .spike_ratio(),
            Some(3.0)
        );
        assert_eq!(ProbeTrigger::Recovery.spike_ratio(), None);
        assert!(ProbeTrigger::CrossAzFanout {
            origin: market(),
            origin_ratio: 1.0
        }
        .is_related());
        assert!(!ProbeTrigger::PriceSpike { ratio: 1.0 }.is_related());
    }

    #[test]
    fn outcome_classification() {
        assert!(ProbeOutcome::InsufficientCapacity.is_unavailable());
        assert!(ProbeOutcome::CapacityNotAvailable.is_unavailable());
        assert!(!ProbeOutcome::Fulfilled.is_unavailable());
        assert!(!ProbeOutcome::PriceTooLow.is_unavailable());
        assert!(!ProbeOutcome::ApiLimited.is_informative());
        assert!(ProbeOutcome::Fulfilled.is_informative());
    }

    #[test]
    fn interval_duration() {
        let mut i = UnavailabilityInterval {
            market: market(),
            kind: ProbeKind::OnDemand,
            start: SimTime::from_secs(100),
            end: None,
            detect_ratio: 2.0,
            detected_via_related: false,
        };
        assert_eq!(i.duration(), None);
        i.end = Some(SimTime::from_secs(400));
        assert_eq!(i.duration(), Some(SimDuration::from_secs(300)));
    }
}
