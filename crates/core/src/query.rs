//! SpotLight's query interface: what applications ask the information
//! service.
//!
//! Chapter 3 sketches the interface ("an application might query
//! SpotLight for the top ten server types with the longest
//! mean-time-to-revocation for a bid price equal to the corresponding
//! on-demand price") and Chapter 6 uses it to steer SpotCheck and SpotOn
//! toward markets whose on-demand fallbacks are actually obtainable when
//! spot servers are revoked.
//!
//! Queries run over a [`StoreRead`] snapshot of the striped store, so a
//! batch of queries sees one consistent state and pays the stripe locks
//! once, not per call.

use crate::budget::SpikeRate;
use crate::probe::ProbeKind;
use crate::store::StoreRead;
use cloud_sim::ids::{MarketId, Region};
use cloud_sim::time::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// Availability summary of one market and contract kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityStats {
    /// Informative probes issued.
    pub probes: u64,
    /// Probes that found the market unobtainable.
    pub rejections: u64,
    /// Fraction of the observation span spent unavailable (measured from
    /// probe-bracketed intervals).
    pub unavailable_fraction: f64,
    /// Completed unavailability intervals.
    pub intervals: u64,
}

impl AvailabilityStats {
    /// The availability reading: `1 − unavailable_fraction`.
    pub fn availability(&self) -> f64 {
        1.0 - self.unavailable_fraction
    }
}

/// How current the store's knowledge of one `(market, kind)` is.
///
/// An availability estimate computed from week-old probes during a
/// regional API outage is not the same answer as one backed by a probe
/// from a minute ago; this struct is how queries say so instead of
/// fabricating confidence (the staleness half of the live mode's
/// graceful degradation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Freshness {
    /// When the last *informative* probe of the key landed (probes that
    /// carried no availability information — `ApiLimited` — do not
    /// count). `None` when the key was never informatively observed.
    pub last_informative: Option<SimTime>,
    /// Age of that observation at the query span's end (the query's
    /// "now"). `None` when never observed.
    pub age: Option<SimDuration>,
    /// Whether the market's region is currently marked degraded by a
    /// live-mode circuit breaker — probes there are failing at the
    /// transport, so estimates cannot be refreshed.
    pub region_degraded: bool,
    /// If the store's *durability* is currently degraded (disk faults
    /// defeated the log writer's retries): observations at or before
    /// this time are provably on disk, later ones may not survive a
    /// crash. `None` when fully durable, including in-memory stores.
    /// Orthogonal to `region_degraded` — the answer itself is current,
    /// its crash-persistence is what is in doubt.
    pub durability_lost: Option<SimTime>,
}

impl Freshness {
    /// True when the key has an informative observation no older than
    /// `max_age` *and* the region's transport is healthy.
    pub fn is_fresh(&self, max_age: SimDuration) -> bool {
        !self.region_degraded && self.age.is_some_and(|a| a <= max_age)
    }
}

/// The query interface over a probe-database snapshot.
#[derive(Debug, Clone, Copy)]
pub struct SpotLightQuery<'a> {
    store: &'a StoreRead<'a>,
    /// Observation span the fractions are computed over.
    span: (SimTime, SimTime),
}

impl<'a> SpotLightQuery<'a> {
    /// Creates a query interface over `store` for the observation span
    /// `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(store: &'a StoreRead<'a>, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "observation span must be non-empty");
        SpotLightQuery {
            store,
            span: (start, end),
        }
    }

    /// Seconds of measured unavailability of `(market, kind)` inside the
    /// observation span (open intervals run to the span's end).
    ///
    /// Epoch-summarized: whole buckets for the epochs fully inside the
    /// span plus binary searches of this key's interval index for the
    /// two boundary epochs — O(buckets + log intervals), not O(intervals
    /// in span).
    pub fn unavailable_seconds(&self, market: MarketId, kind: ProbeKind) -> u64 {
        let (start, end) = self.span;
        self.store.unavailable_seconds_in(market, kind, start, end)
    }

    /// Availability summary of `(market, kind)` over the span.
    ///
    /// Counter-backed: probe and closed-interval counts come from the
    /// store's running per-`(market, kind)` counters (O(1)); the
    /// unavailable fraction comes from the epoch summaries.
    pub fn availability(&self, market: MarketId, kind: ProbeKind) -> AvailabilityStats {
        let (start, end) = self.span;
        let span_secs = (end - start).as_secs().max(1);
        let stats = self.store.probe_stats(market, kind);
        AvailabilityStats {
            probes: stats.informative,
            rejections: stats.rejections,
            unavailable_fraction: self.unavailable_seconds(market, kind) as f64 / span_secs as f64,
            intervals: self.store.closed_interval_count(market, kind),
        }
    }

    /// How current the store's knowledge of `(market, kind)` is, aged
    /// against the query span's end.
    pub fn freshness(&self, market: MarketId, kind: ProbeKind) -> Freshness {
        let last = self.store.last_informative_at(market, kind);
        let (_, end) = self.span;
        Freshness {
            last_informative: last,
            age: last.map(|t| end.saturating_since(t)),
            region_degraded: self
                .store
                .region_health(market.region())
                .is_some_and(|h| h.degraded),
            durability_lost: self.store.durability_lost(),
        }
    }

    /// Availability summary of `(market, kind)` qualified with how
    /// trustworthy it currently is — the staleness-aware variant of
    /// [`SpotLightQuery::availability`]. Callers that act on estimates
    /// (fallback selection, bid advice) should prefer this and check
    /// [`Freshness::is_fresh`] before trusting the stats.
    pub fn availability_qualified(
        &self,
        market: MarketId,
        kind: ProbeKind,
    ) -> (AvailabilityStats, Freshness) {
        (
            self.availability(market, kind),
            self.freshness(market, kind),
        )
    }

    /// Regions currently marked degraded by live-mode circuit breakers,
    /// in `Region` order. Estimates there are frozen at their last
    /// pre-fault observation.
    pub fn degraded_regions(&self) -> Vec<Region> {
        self.store.degraded_regions()
    }

    /// All measured unavailability durations of a contract kind,
    /// appended into `out` (cleared first) so batch callers reuse one
    /// buffer across calls.
    pub fn unavailability_durations_into(&self, kind: ProbeKind, out: &mut Vec<SimDuration>) {
        out.clear();
        out.extend(
            self.store
                .intervals()
                .filter(|i| i.kind == kind)
                .filter_map(|i| i.duration()),
        );
    }

    /// All measured unavailability durations of a contract kind.
    pub fn unavailability_durations(&self, kind: ProbeKind) -> Vec<SimDuration> {
        let mut out = Vec::new();
        self.unavailability_durations_into(kind, &mut out);
        out
    }

    /// Mean time from acquiring a spot instance (at a bid equal to the
    /// on-demand price) to its revocation, from the revocation-watch
    /// observations. Holds that survived count at their full hold length
    /// (a conservative lower bound). `None` without observations.
    pub fn mean_time_to_revocation(&self, market: MarketId) -> Option<SimDuration> {
        let mut total = 0u64;
        let mut n = 0u64;
        for r in self.store.revocations_of(market) {
            let end = r.revoked_at.or(r.released_at)?;
            total += end.saturating_since(r.acquired_at).as_secs();
            n += 1;
        }
        (n > 0).then(|| SimDuration::from_secs(total / n))
    }

    /// Markets ranked by on-demand availability (most available first),
    /// optionally restricted to a region. Only markets with at least
    /// `min_probes` informative probes are ranked.
    pub fn top_available_markets(
        &self,
        candidates: &[MarketId],
        region: Option<Region>,
        min_probes: u64,
        n: usize,
    ) -> Vec<(MarketId, AvailabilityStats)> {
        let mut rows: Vec<(MarketId, AvailabilityStats)> = candidates
            .iter()
            .copied()
            .filter(|m| region.is_none_or(|r| m.region() == r))
            .map(|m| (m, self.availability(m, ProbeKind::OnDemand)))
            .filter(|(_, st)| st.probes >= min_probes)
            .collect();
        rows.sort_by(|a, b| {
            a.1.unavailable_fraction
                .partial_cmp(&b.1.unavailable_fraction)
                .expect("fractions are finite")
        });
        rows.truncate(n);
        rows
    }

    /// P(on-demand of `b` unavailable within `window` | on-demand
    /// detection of `a`): the correlation SpotCheck must avoid in its
    /// fallback markets (§6.1). `None` when `a` has no detections.
    pub fn conditional_unavailability(
        &self,
        a: MarketId,
        b: MarketId,
        window: SimDuration,
    ) -> Option<f64> {
        // Both sides are index-backed: `a`'s detections come from its
        // interval index and `b`'s rejections from its time-sorted
        // rejection index, so each trial is a binary search. The shared
        // read snapshot makes the cross-stripe access free.
        let b_times = self.store.rejection_times(b, ProbeKind::OnDemand);
        let mut trials = 0u64;
        let mut hits = 0u64;
        for i in self.store.intervals_of(a, ProbeKind::OnDemand) {
            trials += 1;
            let to = i.start + window;
            let lo = b_times.partition_point(|&t| t < i.start);
            if b_times.get(lo).is_some_and(|&t| t <= to) {
                hits += 1;
            }
        }
        (trials > 0).then(|| hits as f64 / trials as f64)
    }

    /// Fallback markets for `market`, ranked by (conditional correlation
    /// with `market`, then own unavailability): the SpotLight advice that
    /// restores SpotCheck/SpotOn to near-100% availability (Chapter 6).
    ///
    /// Candidates sharing `market`'s capacity pool (same family + zone)
    /// are excluded outright — they fail together by construction.
    pub fn uncorrelated_fallbacks(
        &self,
        market: MarketId,
        candidates: &[MarketId],
        window: SimDuration,
        n: usize,
    ) -> Vec<MarketId> {
        let mut rows: Vec<(MarketId, f64, f64)> = candidates
            .iter()
            .copied()
            .filter(|&c| c != market && c.pool() != market.pool())
            .map(|c| {
                let corr = self
                    .conditional_unavailability(market, c, window)
                    .unwrap_or(0.0);
                let own = self
                    .availability(c, ProbeKind::OnDemand)
                    .unavailable_fraction;
                (c, corr, own)
            })
            .collect();
        rows.sort_by(|a, b| (a.1, a.2).partial_cmp(&(b.1, b.2)).expect("finite scores"));
        rows.into_iter().take(n).map(|(m, _, _)| m).collect()
    }

    /// Historical spike rates per window at each candidate threshold —
    /// the input to [`crate::budget::calibrate_threshold`] (§3.4).
    ///
    /// Served from the per-epoch sorted spike-ratio buckets (a binary
    /// search per bucket per threshold), not a raw-log scan — so the
    /// answer is unchanged by compaction.
    pub fn spike_rates(&self, thresholds: &[f64], window: SimDuration) -> Vec<SpikeRate> {
        let (start, end) = self.span;
        let windows = ((end - start).as_secs() as f64 / window.as_secs().max(1) as f64).max(1.0);
        thresholds
            .iter()
            .map(|&t| SpikeRate {
                threshold: t,
                spikes_per_window: self.store.spikes_at_or_above(t) as f64 / windows,
            })
            .collect()
    }

    /// Regions ordered by their measured on-demand rejection share,
    /// merged into `out` (cleared first) — a quick "where is the cloud
    /// under-provisioned" view (§5.2.2) served from the stripes' running
    /// counters without allocating a fresh map per call.
    pub fn rejection_counts_by_region_into(&self, out: &mut HashMap<Region, u64>) {
        self.store.od_rejections_into(out);
    }

    /// Regions ordered by their measured on-demand rejection share, as a
    /// fresh map.
    pub fn rejection_counts_by_region(&self) -> HashMap<Region, u64> {
        self.store.od_rejections_by_region()
    }

    /// Markets that were probed at least once.
    pub fn observed_markets(&self) -> HashSet<MarketId> {
        self.store.probed_markets().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeOutcome, ProbeRecord, ProbeTrigger};
    use crate::store::{DataStore, RevocationRecord};
    use cloud_sim::ids::{Az, Platform};
    use cloud_sim::price::Price;

    fn market(az: u8, ty: &str) -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, az),
            instance_type: ty.parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(at: u64, m: MarketId, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::PriceSpike { ratio: 2.0 },
            outcome,
            spot_ratio: 2.0,
            bid: None,
            cost: Price::ZERO,
        }
    }

    fn hour_span() -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::from_secs(3600))
    }

    #[test]
    fn availability_fraction_from_intervals() {
        let s = DataStore::new();
        let m = market(0, "c3.large");
        s.record_probe(probe(0, m, ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(900, m, ProbeOutcome::Fulfilled));
        let (a, b) = hour_span();
        let r = s.read();
        let q = SpotLightQuery::new(&r, a, b);
        let st = q.availability(m, ProbeKind::OnDemand);
        assert_eq!(st.probes, 2);
        assert_eq!(st.rejections, 1);
        assert!((st.unavailable_fraction - 0.25).abs() < 1e-9);
        assert!((st.availability() - 0.75).abs() < 1e-9);
        assert_eq!(st.intervals, 1);
    }

    #[test]
    fn open_intervals_run_to_span_end() {
        let s = DataStore::new();
        let m = market(0, "c3.large");
        s.record_probe(probe(1800, m, ProbeOutcome::InsufficientCapacity));
        let (a, b) = hour_span();
        let r = s.read();
        let q = SpotLightQuery::new(&r, a, b);
        assert_eq!(q.unavailable_seconds(m, ProbeKind::OnDemand), 1800);
    }

    #[test]
    fn mttr_averages_revocations() {
        let s = DataStore::new();
        let m = market(0, "c3.large");
        for (start, end) in [(0u64, 3600u64), (10_000, 11_800)] {
            s.record_revocation(RevocationRecord {
                market: m,
                acquired_at: SimTime::from_secs(start),
                bid: Price::from_dollars(0.1),
                revoked_at: Some(SimTime::from_secs(end)),
                released_at: Some(SimTime::from_secs(end)),
            });
        }
        let (a, b) = hour_span();
        let r = s.read();
        let q = SpotLightQuery::new(&r, a, b);
        assert_eq!(
            q.mean_time_to_revocation(m),
            Some(SimDuration::from_secs((3600 + 1800) / 2))
        );
        assert_eq!(q.mean_time_to_revocation(market(1, "c3.large")), None);
    }

    #[test]
    fn conditional_unavailability_and_fallbacks() {
        let s = DataStore::new();
        let m = market(0, "c3.large");
        let correlated = market(1, "c3.large");
        let independent = market(1, "m3.large");
        // Two detections of m; `correlated` rejected within the window
        // of both, `independent` never rejected.
        for t in [0u64, 10_000] {
            s.record_probe(probe(t, m, ProbeOutcome::InsufficientCapacity));
            s.record_probe(probe(
                t + 60,
                correlated,
                ProbeOutcome::InsufficientCapacity,
            ));
            s.record_probe(probe(t + 400, m, ProbeOutcome::Fulfilled));
            s.record_probe(probe(t + 400, correlated, ProbeOutcome::Fulfilled));
            s.record_probe(probe(t + 60, independent, ProbeOutcome::Fulfilled));
        }
        let r = s.read();
        let q = SpotLightQuery::new(&r, SimTime::ZERO, SimTime::from_secs(20_000));
        let w = SimDuration::from_secs(900);
        assert_eq!(q.conditional_unavailability(m, correlated, w), Some(1.0));
        assert_eq!(q.conditional_unavailability(m, independent, w), Some(0.0));
        let fallbacks = q.uncorrelated_fallbacks(m, &[correlated, independent], w, 2);
        assert_eq!(fallbacks[0], independent);
        // Same-pool candidates are excluded.
        let same_pool = market(0, "c3.xlarge");
        let only = q.uncorrelated_fallbacks(m, &[same_pool], w, 5);
        assert!(only.is_empty());
    }

    #[test]
    fn top_available_requires_min_probes() {
        let s = DataStore::new();
        let good = market(0, "c3.large");
        let sparse = market(1, "c3.large");
        for t in 0..5 {
            s.record_probe(probe(t * 100, good, ProbeOutcome::Fulfilled));
        }
        s.record_probe(probe(0, sparse, ProbeOutcome::Fulfilled));
        let (a, b) = hour_span();
        let r = s.read();
        let q = SpotLightQuery::new(&r, a, b);
        let top = q.top_available_markets(&[good, sparse], None, 3, 10);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, good);
    }

    #[test]
    fn spike_rates_count_per_window() {
        let s = DataStore::new();
        let m = market(0, "c3.large");
        for (t, r) in [(0u64, 1.5), (600, 2.5), (1200, 6.0)] {
            s.record_spike(crate::store::SpikeEvent {
                market: m,
                at: SimTime::from_secs(t),
                ratio: r,
                probed: true,
            });
        }
        let (a, b) = hour_span();
        let r = s.read();
        let q = SpotLightQuery::new(&r, a, b);
        let rates = q.spike_rates(&[1.0, 2.0, 5.0], SimDuration::from_secs(1800));
        assert_eq!(rates[0].spikes_per_window, 1.5); // 3 spikes / 2 windows
        assert_eq!(rates[1].spikes_per_window, 1.0);
        assert_eq!(rates[2].spikes_per_window, 0.5);
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let s = DataStore::new();
        let m = market(0, "c3.large");
        s.record_probe(probe(0, m, ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(600, m, ProbeOutcome::Fulfilled));
        let r = s.read();
        let (a, b) = hour_span();
        let q = SpotLightQuery::new(&r, a, b);
        let mut durations = vec![SimDuration::from_secs(999)];
        q.unavailability_durations_into(ProbeKind::OnDemand, &mut durations);
        assert_eq!(durations, vec![SimDuration::from_secs(600)]);
        let mut counts = HashMap::from([(Region::UsWest1, 42u64)]);
        q.rejection_counts_by_region_into(&mut counts);
        assert_eq!(counts, HashMap::from([(Region::UsEast1, 1u64)]));
        assert_eq!(counts, q.rejection_counts_by_region());
    }

    #[test]
    fn freshness_ages_against_span_end_and_flags_degraded_regions() {
        let s = DataStore::new();
        let m = market(0, "c3.large");
        let (a, b) = hour_span();
        // Never observed: no age, not fresh at any horizon.
        {
            let r = s.read();
            let q = SpotLightQuery::new(&r, a, b);
            let f = q.freshness(m, ProbeKind::OnDemand);
            assert_eq!(f.last_informative, None);
            assert_eq!(f.age, None);
            assert!(!f.is_fresh(SimDuration::days(365)));
        }
        // An informative probe sets the clock; ApiLimited does not.
        s.record_probe(probe(600, m, ProbeOutcome::Fulfilled));
        s.record_probe(probe(3000, m, ProbeOutcome::ApiLimited));
        {
            let r = s.read();
            let q = SpotLightQuery::new(&r, a, b);
            let f = q.freshness(m, ProbeKind::OnDemand);
            assert_eq!(f.last_informative, Some(SimTime::from_secs(600)));
            assert_eq!(f.age, Some(SimDuration::from_secs(3000)));
            assert!(f.is_fresh(SimDuration::from_secs(3000)));
            assert!(!f.is_fresh(SimDuration::from_secs(2999)));
            assert!(!f.region_degraded);
        }
        // A degraded region poisons freshness regardless of age.
        s.mark_region_degraded(Region::UsEast1, SimTime::from_secs(3100));
        {
            let r = s.read();
            let q = SpotLightQuery::new(&r, a, b);
            let (st, f) = q.availability_qualified(m, ProbeKind::OnDemand);
            assert_eq!(st.probes, 1);
            assert!(f.region_degraded);
            assert!(!f.is_fresh(SimDuration::days(365)));
            assert_eq!(q.degraded_regions(), vec![Region::UsEast1]);
        }
        // Recovery clears the flag.
        s.mark_region_recovered(Region::UsEast1, SimTime::from_secs(3200));
        let r = s.read();
        let q = SpotLightQuery::new(&r, a, b);
        assert!(q.freshness(m, ProbeKind::OnDemand).is_fresh(b - a));
        assert!(q.degraded_regions().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_span_panics() {
        let s = DataStore::new();
        let r = s.read();
        let _ = SpotLightQuery::new(&r, SimTime::from_secs(10), SimTime::from_secs(10));
    }
}
