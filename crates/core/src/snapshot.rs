//! Immutable, atomically-swapped snapshots of the store — the
//! RCU/arc-swap pattern the HTTP query service reads through.
//!
//! A live [`crate::store::StoreRead`] holds every stripe's read lock,
//! which is exactly right for a batch of analyses but wrong for a
//! serving hot path: a million concurrent GETs would contend with each
//! other and stall ingest. Instead the service publishes a
//! [`StoreSnapshot`] — an owned deep copy of the stripes plus the
//! store-wide counters, taken under one consistent read pass — into a
//! [`SnapshotHub`], and request workers read through a per-worker
//! [`SnapshotReader`] cache:
//!
//! * **Publish** (ingest side, rare): [`DataStore::snapshot`] →
//!   [`SnapshotHub::publish`]. Swaps the `Arc` under a tiny mutex and
//!   bumps a generation counter.
//! * **Read** (query side, hot): [`SnapshotReader::current`] is one
//!   atomic generation load plus a branch; the mutex is touched only
//!   on the first read after a publish. Queries then run over
//!   [`StoreSnapshot::read`] — the same [`crate::store::StoreRead`]
//!   API as a live read, with **no locks held**, so readers never
//!   block ingest and ingest never blocks readers.
//!
//! The crate forbids `unsafe`, so the swap is a mutex-guarded `Arc`
//! clone rather than an `AtomicPtr` dance; the generation check keeps
//! that mutex off the per-request path entirely.
//!
//! On multicore hosts the expensive half — the per-stripe deep copies
//! in [`DataStore::snapshot`] — fans out over the shared persistent
//! worker pool ([`spotlight_pool::WorkerPool::global`]), under all
//! stripe read locks so consistency is unchanged; the scoped-borrow
//! machinery lives in that crate, keeping this one `unsafe`-free.

use crate::store::{DataStore, ReadView, RegionHealth, StoreRead, Stripe};
use crate::sync::Mutex;
use cloud_sim::ids::Region;
use cloud_sim::price::Price;
use cloud_sim::time::SimTime;
use spotlight_pool::WorkerPool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An owned, immutable copy of the store's queryable state, consistent
/// across stripes (captured under every stripe's read lock).
#[derive(Debug)]
pub struct StoreSnapshot {
    pub(crate) stripes: Box<[Stripe]>,
    pub(crate) epoch_secs: u64,
    pub(crate) recorded_probes: u64,
    pub(crate) total_cost_micros: u64,
    pub(crate) suppressed_probes: u64,
    pub(crate) region_health: HashMap<Region, RegionHealth>,
    pub(crate) durability_lost: Option<SimTime>,
    as_of: SimTime,
}

impl StoreSnapshot {
    /// A lock-free read view over the snapshot — the full
    /// [`StoreRead`] query/analysis surface, shareable across any
    /// number of threads.
    pub fn read(&self) -> StoreRead<'_> {
        StoreRead {
            view: ReadView::Snapshot(self),
        }
    }

    /// The publisher-supplied capture time: queries default their
    /// observation span's end (their "now") to this.
    pub fn as_of(&self) -> SimTime {
        self.as_of
    }

    /// Probes recorded over the store's lifetime as of the capture.
    pub fn len(&self) -> usize {
        self.recorded_probes as usize
    }

    /// True when the captured store had recorded no probes.
    pub fn is_empty(&self) -> bool {
        self.recorded_probes == 0
    }

    /// Total money spent on probes as of the capture.
    pub fn total_cost(&self) -> Price {
        Price::from_micros(self.total_cost_micros)
    }
}

impl DataStore {
    /// Captures an immutable snapshot of the store's queryable state:
    /// a deep copy of every stripe plus the store-wide counters and
    /// health tables, taken under one consistent all-stripe read pass.
    /// `as_of` is the publisher's clock — what snapshot queries treat
    /// as "now".
    ///
    /// This is the expensive half of the RCU pattern (a full copy of
    /// the resident data); call it at ingest cadence (seconds), not
    /// query cadence.
    pub fn snapshot(&self, as_of: SimTime) -> StoreSnapshot {
        // Consistency first: take every stripe's read lock before any
        // copying starts, exactly as the sequential path always did.
        let guards: Vec<_> = self.stripes.iter().map(|s| s.read()).collect();
        let pool = WorkerPool::global();
        let stripes: Box<[Stripe]> = if pool.threads() > 1 && guards.len() > 1 {
            // With all guards held the stripes are frozen, so the deep
            // copies are independent — fan one clone per stripe out on
            // the shared persistent pool. The scope's join barrier
            // keeps the guards (and `slots`) borrowed until every
            // clone lands.
            let mut slots: Vec<Option<Stripe>> = Vec::new();
            slots.resize_with(guards.len(), || None);
            pool.scope(|s| {
                for (slot, guard) in slots.iter_mut().zip(guards.iter()) {
                    let stripe: &Stripe = guard;
                    s.spawn(move || *slot = Some(stripe.clone()));
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("scope join barrier ran every clone"))
                .collect()
        } else {
            guards.iter().map(|g| (**g).clone()).collect()
        };
        drop(guards);
        StoreSnapshot {
            stripes,
            epoch_secs: self.epoch_secs,
            recorded_probes: self.recorded_probes.load(Ordering::Relaxed),
            total_cost_micros: self.total_cost_micros.load(Ordering::Relaxed),
            suppressed_probes: self.suppressed_probes.load(Ordering::Relaxed),
            region_health: self.region_health.read().clone(),
            durability_lost: self.durability_lost(),
            as_of,
        }
    }
}

/// The publication point: one current [`StoreSnapshot`] behind an
/// atomically-bumped generation. Writers swap; readers poll the
/// generation and re-clone the `Arc` only when it moved.
#[derive(Debug)]
pub struct SnapshotHub {
    current: Mutex<Arc<StoreSnapshot>>,
    generation: AtomicU64,
}

impl SnapshotHub {
    /// Creates a hub publishing `initial` at generation 0.
    pub fn new(initial: StoreSnapshot) -> Self {
        SnapshotHub {
            current: Mutex::new(Arc::new(initial)),
            generation: AtomicU64::new(0),
        }
    }

    /// Publishes a new snapshot, returning the new generation. Readers
    /// observe the bump and refresh on their next request.
    pub fn publish(&self, snapshot: StoreSnapshot) -> u64 {
        let next = Arc::new(snapshot);
        let mut current = self.current.lock();
        *current = next;
        // Bumped while the mutex is held so a reader that sees the new
        // generation is guaranteed to load (at least) this snapshot.
        self.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// Captures and publishes a fresh snapshot of `store` in one call —
    /// the publication hook an ingest loop runs at its own cadence.
    pub fn republish(&self, store: &DataStore, as_of: SimTime) -> u64 {
        self.publish(store.snapshot(as_of))
    }

    /// The current snapshot (clones the `Arc` under the mutex; use a
    /// [`SnapshotReader`] on hot paths).
    pub fn load(&self) -> Arc<StoreSnapshot> {
        self.current.lock().clone()
    }

    /// The current generation (0 until the first [`SnapshotHub::publish`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// A per-worker cache of the hub's current snapshot. The fast path of
/// [`SnapshotReader::current`] is one atomic load and a pointer return;
/// only the first call after a publish pays the mutex.
#[derive(Debug)]
pub struct SnapshotReader {
    generation: u64,
    cached: Arc<StoreSnapshot>,
}

impl SnapshotReader {
    /// Creates a reader primed with the hub's current snapshot.
    pub fn new(hub: &SnapshotHub) -> Self {
        // Generation first: if a publish lands in between, the cache is
        // newer than the recorded generation and the next `current`
        // call harmlessly reloads.
        let generation = hub.generation();
        SnapshotReader {
            generation,
            cached: hub.load(),
        }
    }

    /// The freshest published snapshot, refreshing the cache only when
    /// the hub's generation moved.
    pub fn current(&mut self, hub: &SnapshotHub) -> &Arc<StoreSnapshot> {
        let generation = hub.generation();
        if generation != self.generation {
            self.generation = generation;
            self.cached = hub.load();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
    use crate::query::SpotLightQuery;
    use cloud_sim::ids::{Az, MarketId, Platform};

    fn market(i: u8) -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, i),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(at: u64, m: MarketId, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::PriceSpike { ratio: 2.0 },
            outcome,
            spot_ratio: 2.0,
            bid: None,
            cost: Price::from_dollars(0.1),
        }
    }

    #[test]
    fn snapshot_answers_match_live_reads() {
        let store = DataStore::new();
        let m = market(0);
        store.record_probe(probe(0, m, ProbeOutcome::InsufficientCapacity));
        store.record_probe(probe(900, m, ProbeOutcome::Fulfilled));
        store.record_probe(probe(1800, market(1), ProbeOutcome::Fulfilled));
        store.mark_region_degraded(Region::EuWest1, SimTime::from_secs(100));

        let snap = store.snapshot(SimTime::from_secs(3600));
        let live = store.read();
        let frozen = snap.read();
        let span = (SimTime::ZERO, SimTime::from_secs(3600));

        let ql = SpotLightQuery::new(&live, span.0, span.1);
        let qs = SpotLightQuery::new(&frozen, span.0, span.1);
        assert_eq!(
            ql.availability(m, ProbeKind::OnDemand),
            qs.availability(m, ProbeKind::OnDemand)
        );
        assert_eq!(
            ql.freshness(m, ProbeKind::OnDemand),
            qs.freshness(m, ProbeKind::OnDemand)
        );
        assert_eq!(ql.degraded_regions(), qs.degraded_regions());
        assert_eq!(live.len(), frozen.len());
        assert_eq!(live.total_cost(), frozen.total_cost());
        assert_eq!(
            live.probed_markets().count(),
            frozen.probed_markets().count()
        );
        assert_eq!(snap.as_of(), SimTime::from_secs(3600));
    }

    #[test]
    fn snapshot_is_immutable_under_later_ingest() {
        let store = DataStore::new();
        let m = market(0);
        store.record_probe(probe(0, m, ProbeOutcome::Fulfilled));
        let snap = store.snapshot(SimTime::from_secs(10));
        store.record_probe(probe(20, m, ProbeOutcome::InsufficientCapacity));
        let frozen = snap.read();
        assert_eq!(frozen.len(), 1);
        assert!(!frozen.is_unavailable(m, ProbeKind::OnDemand));
        assert_eq!(store.read().len(), 2);
    }

    #[test]
    fn hub_generation_gates_reader_refresh() {
        let store = DataStore::new();
        let m = market(0);
        store.record_probe(probe(0, m, ProbeOutcome::Fulfilled));
        let hub = SnapshotHub::new(store.snapshot(SimTime::from_secs(1)));
        let mut reader = SnapshotReader::new(&hub);
        assert_eq!(hub.generation(), 0);
        assert_eq!(reader.current(&hub).len(), 1);

        store.record_probe(probe(5, m, ProbeOutcome::Fulfilled));
        assert_eq!(reader.current(&hub).len(), 1, "not yet published");
        let generation = hub.republish(&store, SimTime::from_secs(6));
        assert_eq!(generation, 1);
        assert_eq!(reader.current(&hub).len(), 2);
        assert_eq!(reader.current(&hub).as_of(), SimTime::from_secs(6));
    }

    #[test]
    fn concurrent_publishers_and_readers_stay_coherent() {
        let store = Arc::new(DataStore::new());
        let hub = Arc::new(SnapshotHub::new(store.snapshot(SimTime::ZERO)));
        std::thread::scope(|scope| {
            let publisher = {
                let store = Arc::clone(&store);
                let hub = Arc::clone(&hub);
                scope.spawn(move || {
                    for t in 0..200u64 {
                        store.record_probe(probe(
                            t,
                            market((t % 4) as u8),
                            ProbeOutcome::Fulfilled,
                        ));
                        hub.republish(&store, SimTime::from_secs(t));
                    }
                })
            };
            for _ in 0..2 {
                let hub = Arc::clone(&hub);
                scope.spawn(move || {
                    let mut reader = SnapshotReader::new(&hub);
                    let mut last = 0usize;
                    for _ in 0..1000 {
                        let snap = reader.current(&hub);
                        let n = snap.len();
                        assert!(n >= last, "snapshots must advance monotonically");
                        assert_eq!(snap.read().probes().count(), n);
                        last = n;
                    }
                });
            }
            publisher.join().unwrap();
        });
        assert_eq!(hub.load().len(), 200);
    }

    /// The same publisher/reader stress as above, but with every
    /// participant running as a task on a persistent worker pool
    /// instead of ad-hoc scoped threads — the pool's scope must give
    /// the identical coherence guarantees (and the publisher's
    /// `snapshot()` calls themselves exercise the pool-parallel
    /// stripe-clone path whenever the global pool is multithreaded).
    #[test]
    fn concurrent_publishers_and_readers_over_pool() {
        let store = DataStore::new();
        let hub = SnapshotHub::new(store.snapshot(SimTime::ZERO));
        let pool = spotlight_pool::WorkerPool::new(3);
        pool.scope(|s| {
            let store = &store;
            let hub = &hub;
            s.spawn(move || {
                for t in 0..200u64 {
                    store.record_probe(probe(t, market((t % 4) as u8), ProbeOutcome::Fulfilled));
                    hub.republish(store, SimTime::from_secs(t));
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut reader = SnapshotReader::new(hub);
                    let mut last = 0usize;
                    for _ in 0..1000 {
                        let snap = reader.current(hub);
                        let n = snap.len();
                        assert!(n >= last, "snapshots must advance monotonically");
                        assert_eq!(snap.read().probes().count(), n);
                        last = n;
                    }
                });
            }
        });
        assert_eq!(hub.load().len(), 200);
    }
}
