//! The SpotLight service itself: an [`Agent`] that watches every spot
//! market, probes on price spikes, fans out to related markets, tracks
//! unavailability until recovery, periodically checks spot capacity,
//! measures intrinsic bids, and observes revocations.
//!
//! This is the deterministic in-engine deployment; the threaded
//! "live" deployment of Chapter 4's manager hierarchy lives in
//! [`crate::manager`]. Both write the same [`DataStore`].

use crate::bidspread::find_intrinsic_bid;
use crate::policy::SpotLightConfig;
use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, ProbeTrigger};
use crate::store::{IntrinsicBidRecord, RevocationRecord, SharedStore, SpikeEvent};
use cloud_sim::api::ApiError;
use cloud_sim::cloud::CloudEvent;
use cloud_sim::engine::{Agent, Ctx};
use cloud_sim::ids::{MarketId, SpotRequestId};
use cloud_sim::lifecycle::SpotRequestState;
use cloud_sim::price::Price;
use cloud_sim::rng::SimRng;
use cloud_sim::time::SimTime;
use std::collections::{HashMap, HashSet};

/// What a scheduled wake-up should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Re-probe an unavailable market until it recovers
    /// (`RequestInsufficiency`); the flag records whether the probe
    /// chain originated from the periodic `CheckCapacity` stream.
    Recovery(MarketId, ProbeKind, bool),
    /// Probe the next batch of spot markets (`CheckCapacity`).
    SpotCheckBatch,
    /// Run the intrinsic-bid search on `bidspread_markets[idx]`
    /// (`BidSpread`).
    BidSpread(usize),
    /// Voluntarily release a revocation-watch hold (`Revocation`).
    ReleaseHold(SpotRequestId),
}

/// An active revocation-watch hold.
#[derive(Debug, Clone, Copy)]
struct Hold {
    market: MarketId,
    acquired_at: SimTime,
    bid: Price,
}

/// The SpotLight probing service.
pub struct SpotLight {
    cfg: SpotLightConfig,
    store: SharedStore,
    budget: crate::budget::BudgetManager,
    rng: SimRng,
    actions: HashMap<u64, Action>,
    next_action: u64,
    cooldown_until: HashMap<MarketId, SimTime>,
    recovering: HashSet<(MarketId, ProbeKind)>,
    spot_cursor: usize,
    holds: HashMap<SpotRequestId, Hold>,
    /// Markets with an active hold (one watch at a time per market).
    held_markets: HashSet<MarketId>,
}

impl std::fmt::Debug for SpotLight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpotLight")
            .field("recovering", &self.recovering.len())
            .field("holds", &self.holds.len())
            .finish_non_exhaustive()
    }
}

impl SpotLight {
    /// Creates the service with its configuration and shared store.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: SpotLightConfig, store: SharedStore) -> Self {
        cfg.validate().expect("invalid SpotLight configuration");
        let budget = crate::budget::BudgetManager::new(cfg.budget, SimTime::ZERO);
        let rng = SimRng::seed_from(cfg.seed);
        SpotLight {
            cfg,
            store,
            budget,
            rng,
            actions: HashMap::new(),
            next_action: 1,
            cooldown_until: HashMap::new(),
            recovering: HashSet::new(),
            spot_cursor: 0,
            holds: HashMap::new(),
            held_markets: HashSet::new(),
        }
    }

    /// Total probe spend so far.
    pub fn spend(&self) -> Price {
        self.budget.spent_total()
    }

    fn schedule(&mut self, ctx: &mut Ctx<'_>, at: SimTime, action: Action) {
        let id = self.next_action;
        self.next_action += 1;
        self.actions.insert(id, action);
        ctx.wake_at(at, id);
    }

    fn ratio(ctx: &Ctx<'_>, market: MarketId, price: Price) -> f64 {
        price.ratio_to(ctx.cloud.catalog().od_price(market))
    }

    /// Issues one on-demand probe and handles its consequences.
    fn probe_od(
        &mut self,
        ctx: &mut Ctx<'_>,
        market: MarketId,
        trigger: ProbeTrigger,
    ) -> ProbeOutcome {
        let now = ctx.now();
        let od_price = ctx.cloud.catalog().od_price(market);
        if !self.budget.allows(now, od_price) {
            self.store.record_suppressed();
            return ProbeOutcome::ApiLimited;
        }
        let (outcome, cost) = match ctx.cloud.run_od_instance(market) {
            Ok(id) => {
                let cost = ctx.cloud.terminate_od_instance(id).unwrap_or(od_price);
                (ProbeOutcome::Fulfilled, cost)
            }
            Err(ApiError::InsufficientInstanceCapacity { .. }) => {
                (ProbeOutcome::InsufficientCapacity, Price::ZERO)
            }
            Err(_) => (ProbeOutcome::ApiLimited, Price::ZERO),
        };
        self.budget.charge(now, cost);
        let spot_ratio = ctx
            .cloud
            .oracle_published_price(market)
            .map_or(0.0, |p| Self::ratio(ctx, market, p));
        // Build the record before recording it: the store's stripe lock
        // is held only for the record call itself.
        let record = ProbeRecord {
            at: now,
            market,
            kind: ProbeKind::OnDemand,
            trigger,
            outcome,
            spot_ratio,
            bid: None,
            cost,
        };
        let opened = self.store.record_probe(record);

        if outcome == ProbeOutcome::Fulfilled {
            self.recovering.remove(&(market, ProbeKind::OnDemand));
        } else if outcome == ProbeOutcome::InsufficientCapacity {
            if self.recovering.insert((market, ProbeKind::OnDemand)) {
                self.schedule(
                    ctx,
                    now + self.cfg.policy.reprobe_interval,
                    Action::Recovery(market, ProbeKind::OnDemand, false),
                );
            }
            let _ = opened;
            if let ProbeTrigger::PriceSpike { ratio } = trigger {
                self.fan_out(ctx, market, ratio);
            }
        }
        outcome
    }

    /// Fan-out after an initial detection: family siblings, cross-zone
    /// siblings, and a spot verification of the same market.
    fn fan_out(&mut self, ctx: &mut Ctx<'_>, origin: MarketId, origin_ratio: f64) {
        if self.cfg.policy.family_fanout {
            for sibling in ctx.cloud.catalog().family_siblings(origin) {
                self.probe_od(
                    ctx,
                    sibling,
                    ProbeTrigger::FamilyFanout {
                        origin,
                        origin_ratio,
                    },
                );
            }
        }
        if self.cfg.policy.cross_az_fanout {
            for sibling in ctx.cloud.catalog().az_siblings(origin) {
                self.probe_od(
                    ctx,
                    sibling,
                    ProbeTrigger::CrossAzFanout {
                        origin,
                        origin_ratio,
                    },
                );
            }
        }
        if self.cfg.policy.cross_verify {
            self.probe_spot(ctx, origin, ProbeTrigger::CrossVerify { origin }, None);
        }
    }

    /// Issues one spot probe (bidding `bid`, default the published
    /// price) and handles its consequences.
    fn probe_spot(
        &mut self,
        ctx: &mut Ctx<'_>,
        market: MarketId,
        trigger: ProbeTrigger,
        bid: Option<Price>,
    ) -> ProbeOutcome {
        let now = ctx.now();
        let Some(published) = ctx.cloud.oracle_published_price(market) else {
            return ProbeOutcome::ApiLimited;
        };
        let bid = bid
            .unwrap_or(published)
            .min(ctx.cloud.catalog().bid_cap(market));
        if !self.budget.allows(now, published) {
            self.store.record_suppressed();
            return ProbeOutcome::ApiLimited;
        }
        let (outcome, cost) = match ctx.cloud.request_spot_instance(market, bid) {
            Ok(sub) => match sub.status {
                SpotRequestState::Fulfilled => {
                    let cost = ctx
                        .cloud
                        .terminate_spot_instance(sub.id)
                        .unwrap_or(published);
                    (ProbeOutcome::Fulfilled, cost)
                }
                SpotRequestState::CapacityNotAvailable => {
                    let _ = ctx.cloud.cancel_spot_request(sub.id);
                    (ProbeOutcome::CapacityNotAvailable, Price::ZERO)
                }
                SpotRequestState::PriceTooLow => {
                    let _ = ctx.cloud.cancel_spot_request(sub.id);
                    (ProbeOutcome::PriceTooLow, Price::ZERO)
                }
                SpotRequestState::CapacityOversubscribed => {
                    let _ = ctx.cloud.cancel_spot_request(sub.id);
                    (ProbeOutcome::CapacityOversubscribed, Price::ZERO)
                }
                _ => (ProbeOutcome::ApiLimited, Price::ZERO),
            },
            Err(_) => (ProbeOutcome::ApiLimited, Price::ZERO),
        };
        self.budget.charge(now, cost);
        let record = ProbeRecord {
            at: now,
            market,
            kind: ProbeKind::Spot,
            trigger,
            outcome,
            spot_ratio: Self::ratio(ctx, market, published),
            bid: Some(bid),
            cost,
        };
        let opened = self.store.record_probe(record);

        if outcome == ProbeOutcome::Fulfilled {
            self.recovering.remove(&(market, ProbeKind::Spot));
        } else if outcome == ProbeOutcome::CapacityNotAvailable {
            if self.recovering.insert((market, ProbeKind::Spot)) {
                let from_periodic = matches!(trigger, ProbeTrigger::Periodic);
                self.schedule(
                    ctx,
                    now + self.cfg.policy.reprobe_interval,
                    Action::Recovery(market, ProbeKind::Spot, from_periodic),
                );
            }
            // Verify the on-demand side of the market (Chapter 4:
            // "when spot request held due to market unavailability,
            // issue an on-demand instance request").
            if opened
                && self.cfg.policy.cross_verify
                && !matches!(trigger, ProbeTrigger::CrossVerify { .. })
            {
                self.probe_od(ctx, market, ProbeTrigger::CrossVerify { origin: market });
            }
        }
        outcome
    }

    /// Handles a published price change: spike triggering + revocation
    /// watching.
    fn on_price_change(&mut self, ctx: &mut Ctx<'_>, market: MarketId, price: Price) {
        let ratio = Self::ratio(ctx, market, price);
        let now = ctx.now();

        let off_cooldown = self
            .cooldown_until
            .get(&market)
            .is_none_or(|&until| now >= until);
        let eligible = off_cooldown
            && if ratio >= self.cfg.policy.spike_threshold {
                self.rng.chance(self.cfg.policy.sampling_probability)
            } else {
                self.rng.chance(self.cfg.policy.subthreshold_sampling)
            };

        let mut probed = false;
        if eligible {
            self.cooldown_until
                .insert(market, now + self.cfg.policy.market_cooldown);
            let outcome = self.probe_od(ctx, market, ProbeTrigger::PriceSpike { ratio });
            probed = outcome.is_informative();
        }
        if probed {
            self.store.record_spike(SpikeEvent {
                market,
                at: now,
                ratio,
                probed,
            });
        }

        // Revocation watch: acquire a spot instance during a spike and
        // see whether it survives.
        if probed
            && self.cfg.revocation_watch.contains(&market)
            && !self.held_markets.contains(&market)
        {
            self.acquire_hold(ctx, market);
        }
    }

    fn acquire_hold(&mut self, ctx: &mut Ctx<'_>, market: MarketId) {
        let now = ctx.now();
        let bid = ctx.cloud.catalog().od_price(market);
        if !self.budget.allows(now, bid) {
            self.store.record_suppressed();
            return;
        }
        match ctx.cloud.request_spot_instance(market, bid) {
            Ok(sub) if sub.status == SpotRequestState::Fulfilled => {
                self.budget.charge(now, bid); // reserve one hour of budget
                self.holds.insert(
                    sub.id,
                    Hold {
                        market,
                        acquired_at: now,
                        bid,
                    },
                );
                self.held_markets.insert(market);
                self.schedule(
                    ctx,
                    now + self.cfg.revocation_hold_max,
                    Action::ReleaseHold(sub.id),
                );
            }
            Ok(sub) => {
                let _ = ctx.cloud.cancel_spot_request(sub.id);
            }
            Err(_) => {}
        }
    }

    fn run_spot_check_batch(&mut self, ctx: &mut Ctx<'_>) {
        let Some(sc) = self.cfg.spot_check else {
            return;
        };
        let markets: Vec<MarketId> = {
            let all = ctx.cloud.catalog().markets();
            (0..sc.batch_size)
                .map(|k| all[(self.spot_cursor + k) % all.len()])
                .collect()
        };
        self.spot_cursor = (self.spot_cursor + sc.batch_size) % ctx.cloud.catalog().markets().len();
        for market in markets {
            // Skip markets already being tracked as unavailable; the
            // recovery loop owns them.
            if self.recovering.contains(&(market, ProbeKind::Spot)) {
                continue;
            }
            self.probe_spot(ctx, market, ProbeTrigger::Periodic, None);
        }
        let at = ctx.now() + sc.interval;
        self.schedule(ctx, at, Action::SpotCheckBatch);
    }

    fn run_bidspread(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let market = self.cfg.bidspread_markets[idx];
        let now = ctx.now();
        let est = ctx
            .cloud
            .oracle_published_price(market)
            .unwrap_or(Price::ZERO);
        if self.budget.allows(now, est) {
            if let Some(result) = find_intrinsic_bid(ctx.cloud, market, 6) {
                self.budget.charge(now, result.cost);
                if let Some(intrinsic) = result.intrinsic {
                    self.store.record_intrinsic_bid(IntrinsicBidRecord {
                        market,
                        at: now,
                        published: result.published,
                        intrinsic,
                        attempts: result.attempts,
                    });
                }
                // The search's requests are probes too.
                self.store.record_probe(ProbeRecord {
                    at: now,
                    market,
                    kind: ProbeKind::Spot,
                    trigger: ProbeTrigger::BidSearch,
                    outcome: if result.intrinsic.is_some() {
                        ProbeOutcome::Fulfilled
                    } else {
                        ProbeOutcome::CapacityNotAvailable
                    },
                    spot_ratio: Self::ratio(ctx, market, result.published),
                    bid: result.intrinsic,
                    cost: result.cost,
                });
            }
        } else {
            self.store.record_suppressed();
        }
        let at = now + self.cfg.bidspread_interval;
        self.schedule(ctx, at, Action::BidSpread(idx));
    }

    fn release_hold(&mut self, ctx: &mut Ctx<'_>, request: SpotRequestId) {
        let Some(hold) = self.holds.remove(&request) else {
            return; // already revoked
        };
        self.held_markets.remove(&hold.market);
        let now = ctx.now();
        if ctx.cloud.terminate_spot_instance(request).is_ok() {
            self.store.record_revocation(RevocationRecord {
                market: hold.market,
                acquired_at: hold.acquired_at,
                bid: hold.bid,
                revoked_at: None,
                released_at: Some(now),
            });
        }
    }
}

impl Agent for SpotLight {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Align budget windows with the deployment start.
        self.budget = crate::budget::BudgetManager::new(self.cfg.budget, ctx.now());
        if let Some(sc) = self.cfg.spot_check {
            let at = ctx.now() + sc.interval;
            self.schedule(ctx, at, Action::SpotCheckBatch);
        }
        for idx in 0..self.cfg.bidspread_markets.len() {
            // Stagger the searches so they do not collide on limits.
            let offset = cloud_sim::time::SimDuration::from_secs(601 * (idx as u64 + 1));
            let at = ctx.now() + offset;
            self.schedule(ctx, at, Action::BidSpread(idx));
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(action) = self.actions.remove(&token) else {
            return;
        };
        match action {
            Action::Recovery(market, kind, from_periodic) => {
                // The recovery probe itself re-schedules when the market
                // is still unavailable. Re-probes of the CheckCapacity
                // stream keep the Periodic trigger (§3.3: "continues to
                // issue the probe ... until the capacity becomes
                // available"), so the Figure 5.10/5.11 analyses see them.
                self.recovering.remove(&(market, kind));
                match kind {
                    ProbeKind::OnDemand => {
                        self.probe_od(ctx, market, ProbeTrigger::Recovery);
                    }
                    ProbeKind::Spot if from_periodic => {
                        self.probe_spot(ctx, market, ProbeTrigger::Periodic, None);
                    }
                    ProbeKind::Spot => {
                        self.probe_spot(ctx, market, ProbeTrigger::Recovery, None);
                    }
                    // Notices are pushed by the provider, never probed for.
                    ProbeKind::InterruptionNotice => {}
                }
            }
            Action::SpotCheckBatch => self.run_spot_check_batch(ctx),
            Action::BidSpread(idx) => self.run_bidspread(ctx, idx),
            Action::ReleaseHold(request) => self.release_hold(ctx, request),
        }
    }

    fn on_cloud_event(&mut self, ctx: &mut Ctx<'_>, event: &CloudEvent) {
        match *event {
            CloudEvent::PriceChange { market, price, .. } => {
                self.on_price_change(ctx, market, price);
            }
            CloudEvent::SpotTerminatedByPrice { request, at, .. } => {
                if let Some(hold) = self.holds.remove(&request) {
                    self.held_markets.remove(&hold.market);
                    self.store.record_revocation(RevocationRecord {
                        market: hold.market,
                        acquired_at: hold.acquired_at,
                        bid: hold.bid,
                        revoked_at: Some(at),
                        released_at: Some(at),
                    });
                }
            }
            CloudEvent::CapacityEvictionNotice {
                market, evict_at, ..
            } => {
                // A provider-pushed interruption notice (chaos-injected
                // capacity eviction): a free unavailability observation.
                self.store.record_probe(ProbeRecord {
                    at: ctx.now(),
                    market,
                    kind: ProbeKind::InterruptionNotice,
                    trigger: ProbeTrigger::EvictionNotice { evict_at },
                    outcome: ProbeOutcome::CapacityNotAvailable,
                    spot_ratio: 0.0,
                    bid: None,
                    cost: Price::ZERO,
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyConfig, SpotCheckConfig};
    use crate::store::shared_store;
    use cloud_sim::catalog::Catalog;
    use cloud_sim::config::SimConfig;
    use cloud_sim::engine::Engine;
    use cloud_sim::time::{SimDuration, SimTime};

    fn run_spotlight(days: u64, sim_seed: u64, cfg: SpotLightConfig) -> crate::store::SharedStore {
        let config = SimConfig::paper(sim_seed);
        let mut engine = Engine::new(Catalog::testbed(), config);
        engine.cloud_mut().warmup(20);
        let store = shared_store();
        engine.add_agent(Box::new(SpotLight::new(cfg, store.clone())));
        engine.run_until(SimTime::ZERO + SimDuration::days(days));
        store
    }

    #[test]
    fn collects_probes_on_volatile_testbed() {
        let cfg = SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                ..PolicyConfig::default()
            },
            spot_check: Some(SpotCheckConfig {
                interval: SimDuration::from_secs(900),
                batch_size: 8,
            }),
            ..SpotLightConfig::default()
        };
        let store = run_spotlight(3, 11, cfg);
        let s = store.read();
        assert!(!s.is_empty(), "expected probes on a volatile testbed");
        assert!(
            s.probes().any(|p| p.kind == ProbeKind::Spot),
            "spot checks should run"
        );
        assert!(
            s.spikes().all(|sp| sp.probed),
            "recorded spikes are probed spikes"
        );
        // Every closed interval ends after it starts.
        for i in s.intervals() {
            if let Some(end) = i.end {
                assert!(end > i.start);
            }
        }
    }

    #[test]
    fn fan_out_probes_follow_detections() {
        let cfg = SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                ..PolicyConfig::default()
            },
            spot_check: None,
            ..SpotLightConfig::default()
        };
        let store = run_spotlight(5, 13, cfg);
        let s = store.read();
        let detections = s
            .probes()
            .filter(|p| {
                p.outcome == ProbeOutcome::InsufficientCapacity
                    && matches!(p.trigger, ProbeTrigger::PriceSpike { .. })
            })
            .count();
        let related = s.probes().filter(|p| p.trigger.is_related()).count();
        if detections > 0 {
            assert!(related > 0, "detections must trigger related-market probes");
        }
    }

    #[test]
    fn durable_engine_run_recovers_equal_to_in_memory_twin() {
        use crate::durable::DurableOptions;
        use crate::store::DataStore;
        use spotlight_persist::tempdir::TempDir;
        use std::sync::Arc;

        let cfg = SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                ..PolicyConfig::default()
            },
            spot_check: Some(SpotCheckConfig {
                interval: SimDuration::from_secs(900),
                batch_size: 8,
            }),
            ..SpotLightConfig::default()
        };

        // The deterministic engine makes the in-memory twin a perfect
        // oracle for the durable run: same seed, same probe stream.
        let twin = run_spotlight(2, 31, cfg.clone());

        let tmp = TempDir::new("engine-durable");
        let dir = tmp.path().join("store");
        {
            let store: crate::store::SharedStore = Arc::new(
                DataStore::create_durable(&dir, DurableOptions::default()).expect("create"),
            );
            let mut engine = Engine::new(Catalog::testbed(), SimConfig::paper(31));
            engine.cloud_mut().warmup(20);
            engine.add_agent(Box::new(SpotLight::new(cfg, store.clone())));
            engine.run_until(SimTime::ZERO + SimDuration::days(2));
            assert!(store.is_durable());
        } // drop: drain + final fsync

        let recovered = DataStore::recover(&dir).expect("recover");
        assert!(!twin.is_empty());
        assert_eq!(recovered.len(), twin.len());
        assert_eq!(recovered.total_cost(), twin.total_cost());
        assert_eq!(recovered.suppressed_probes(), twin.suppressed_probes());
        let want = twin.read();
        let got = recovered.read();
        assert_eq!(
            got.probes().collect::<Vec<_>>(),
            want.probes().collect::<Vec<_>>(),
            "recovered raw probe log must be bit-identical"
        );
        assert_eq!(got.spikes().count(), want.spikes().count());
        assert_eq!(
            got.intervals().collect::<Vec<_>>(),
            want.intervals().collect::<Vec<_>>()
        );
        assert_eq!(
            got.revocations().collect::<Vec<_>>(),
            want.revocations().collect::<Vec<_>>()
        );
        for p in want.probes() {
            assert_eq!(
                got.probe_stats(p.market, p.kind),
                want.probe_stats(p.market, p.kind)
            );
        }
    }

    #[test]
    fn budget_limits_probing() {
        use crate::budget::BudgetConfig;
        use cloud_sim::price::Price;
        let tight = SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.3,
                ..PolicyConfig::default()
            },
            budget: BudgetConfig {
                window: SimDuration::hours(6),
                limit: Some(Price::from_dollars(0.30)),
            },
            ..SpotLightConfig::default()
        };
        let unlimited = SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.3,
                ..PolicyConfig::default()
            },
            ..SpotLightConfig::default()
        };
        let tight_store = run_spotlight(3, 17, tight);
        let free_store = run_spotlight(3, 17, unlimited);
        let tight_cost = tight_store.total_cost();
        let free_cost = free_store.total_cost();
        assert!(
            tight_cost < free_cost,
            "tight budget must spend less: {tight_cost} vs {free_cost}"
        );
        assert!(tight_store.suppressed_probes() > 0);
    }

    #[test]
    fn sampling_probability_thins_probes() {
        let full = SpotLightConfig {
            policy: PolicyConfig {
                spike_threshold: 0.5,
                market_cooldown: SimDuration::from_secs(60),
                ..PolicyConfig::default()
            },
            spot_check: None,
            ..SpotLightConfig::default()
        };
        let sampled = SpotLightConfig {
            policy: PolicyConfig {
                sampling_probability: 0.1,
                ..full.policy.clone()
            },
            ..full.clone()
        };
        let spike_probes = |store: &crate::store::SharedStore| {
            store
                .read()
                .probes()
                .filter(|p| matches!(p.trigger, ProbeTrigger::PriceSpike { .. }))
                .count()
        };
        let full_n = spike_probes(&run_spotlight(3, 19, full));
        let sampled_n = spike_probes(&run_spotlight(3, 19, sampled));
        assert!(
            sampled_n < full_n / 2,
            "10% sampling should trigger far fewer spike probes ({sampled_n} vs {full_n})"
        );
    }
}
