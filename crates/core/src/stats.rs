//! Small statistics toolkit: bucketed probability estimators, empirical
//! CDFs, and rolling maxima — the machinery behind the Chapter 5
//! analyses.

/// A probability estimator over ordered threshold buckets: counts trials
/// and successes per bucket and reports `successes / trials`.
///
/// Used for all the "P(unavailable | spike ≥ k×)" curves.
///
/// # Examples
///
/// ```
/// use spotlight_core::stats::BucketedRate;
///
/// let mut r = BucketedRate::new(&[1.0, 2.0, 5.0]);
/// r.observe(2.4, true);   // lands in the ">=2" bucket
/// r.observe(2.6, false);
/// assert_eq!(r.rate(1), Some(0.5));
/// assert_eq!(r.rate(2), None); // no trials at >=5
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BucketedRate {
    edges: Vec<f64>,
    trials: Vec<u64>,
    successes: Vec<u64>,
}

impl BucketedRate {
    /// Creates an estimator with the given ascending bucket lower edges.
    /// A value `v` lands in the last bucket whose edge is ≤ `v`.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn new(edges: &[f64]) -> Self {
        assert!(!edges.is_empty(), "need at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        BucketedRate {
            edges: edges.to_vec(),
            trials: vec![0; edges.len()],
            successes: vec![0; edges.len()],
        }
    }

    /// The bucket index a value lands in, or `None` below the first edge.
    pub fn bucket_of(&self, value: f64) -> Option<usize> {
        if value < self.edges[0] {
            return None;
        }
        Some(self.edges.partition_point(|&e| e <= value) - 1)
    }

    /// Records one trial with the given success flag.
    pub fn observe(&mut self, value: f64, success: bool) {
        if let Some(b) = self.bucket_of(value) {
            self.trials[b] += 1;
            if success {
                self.successes[b] += 1;
            }
        }
    }

    /// The bucket edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Trials in a bucket.
    pub fn trials(&self, bucket: usize) -> u64 {
        self.trials[bucket]
    }

    /// Successes in a bucket.
    pub fn successes(&self, bucket: usize) -> u64 {
        self.successes[bucket]
    }

    /// The success rate of one bucket, `None` if it has no trials.
    pub fn rate(&self, bucket: usize) -> Option<f64> {
        (self.trials[bucket] > 0)
            .then(|| self.successes[bucket] as f64 / self.trials[bucket] as f64)
    }

    /// The *cumulative* success rate of all buckets at or above `bucket`
    /// — the "≥ k×" reading of the paper's figures.
    pub fn cumulative_rate(&self, bucket: usize) -> Option<f64> {
        let t: u64 = self.trials[bucket..].iter().sum();
        let s: u64 = self.successes[bucket..].iter().sum();
        (t > 0).then(|| s as f64 / t as f64)
    }

    /// Cumulative trials at or above `bucket`.
    pub fn cumulative_trials(&self, bucket: usize) -> u64 {
        self.trials[bucket..].iter().sum()
    }

    /// Cumulative successes at or above `bucket`.
    pub fn cumulative_successes(&self, bucket: usize) -> u64 {
        self.successes[bucket..].iter().sum()
    }

    /// Merges another estimator with identical edges into this one.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ.
    pub fn merge(&mut self, other: &BucketedRate) {
        assert_eq!(self.edges, other.edges, "bucket edges must match");
        for i in 0..self.trials.len() {
            self.trials[i] += other.trials[i];
            self.successes[i] += other.successes[i];
        }
    }
}

/// An empirical CDF over `f64` samples.
///
/// # Examples
///
/// ```
/// use spotlight_core::stats::Ecdf;
///
/// let cdf = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs remain"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (0 when empty).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Rolling maximum of a step function over a look-ahead horizon: for each
/// step point `t`, the maximum value in `[t, t + horizon]`.
///
/// This is the "least price to hold a spot instance for k hours"
/// computation behind Figure 5.3.
pub fn rolling_forward_max(points: &[(u64, f64)], horizon_secs: u64) -> Vec<(u64, f64)> {
    let n = points.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (t, mut m) = points[i];
        let end = t + horizon_secs;
        for &(t2, v2) in &points[i + 1..] {
            if t2 > end {
                break;
            }
            m = m.max(v2);
        }
        out.push((t, m));
    }
    out
}

/// Mean of a slice, `None` when empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment() {
        let r = BucketedRate::new(&[1.0, 2.0, 5.0, 10.0]);
        assert_eq!(r.bucket_of(0.5), None);
        assert_eq!(r.bucket_of(1.0), Some(0));
        assert_eq!(r.bucket_of(1.99), Some(0));
        assert_eq!(r.bucket_of(2.0), Some(1));
        assert_eq!(r.bucket_of(7.0), Some(2));
        assert_eq!(r.bucket_of(100.0), Some(3));
    }

    #[test]
    fn rates_and_cumulative() {
        let mut r = BucketedRate::new(&[1.0, 2.0]);
        r.observe(1.5, false);
        r.observe(1.5, false);
        r.observe(1.5, true);
        r.observe(3.0, true);
        assert_eq!(r.rate(0), Some(1.0 / 3.0));
        assert_eq!(r.rate(1), Some(1.0));
        assert_eq!(r.cumulative_rate(0), Some(0.5));
        assert_eq!(r.cumulative_trials(0), 4);
        assert_eq!(r.cumulative_successes(1), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BucketedRate::new(&[1.0]);
        let mut b = BucketedRate::new(&[1.0]);
        a.observe(1.0, true);
        b.observe(1.0, false);
        a.merge(&b);
        assert_eq!(a.rate(0), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_edges_panic() {
        let _ = BucketedRate::new(&[2.0, 1.0]);
    }

    #[test]
    fn ecdf_quantiles() {
        let cdf = Ecdf::from_samples(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(3.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
        assert_eq!(cdf.fraction_at_or_below(3.5), 0.6);
        assert!((Ecdf::from_samples(vec![]).quantile(0.5)).is_none());
    }

    #[test]
    fn ecdf_drops_nans() {
        let cdf = Ecdf::from_samples(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn rolling_max_looks_forward() {
        let pts = [(0, 1.0), (10, 5.0), (20, 2.0), (40, 9.0)];
        let out = rolling_forward_max(&pts, 15);
        assert_eq!(out[0], (0, 5.0)); // sees t=10
        assert_eq!(out[1], (10, 5.0)); // sees t=20 (2.0) but 5 > 2
        assert_eq!(out[2], (20, 2.0)); // t=40 is beyond 20+15
        assert_eq!(out[3], (40, 9.0));
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}
