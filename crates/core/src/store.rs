//! SpotLight's database: every probe, spike, unavailability interval,
//! revocation observation, and intrinsic-bid measurement.
//!
//! The prototype in the paper logged "all states and status changes
//! timestamps ... into database" through a dedicated database manager
//! (Chapter 4). Here the store is an indexed in-memory log; the analysis
//! (`crate::analysis`) and the query interface (`crate::query`) are pure
//! functions over it.

use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, UnavailabilityInterval};
use cloud_sim::ids::MarketId;
use cloud_sim::price::Price;
use cloud_sim::time::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A spike observation: a published price crossing SpotLight's radar.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeEvent {
    /// The market that spiked.
    pub market: MarketId,
    /// When the spike was observed.
    pub at: SimTime,
    /// Spot/on-demand price ratio.
    pub ratio: f64,
    /// Whether the policy issued a probe for it (sampling/cooldown/budget
    /// may suppress probes; unprobed spikes are excluded from
    /// conditional-probability trials).
    pub probed: bool,
}

/// One revocation-watch observation (the `Revocation` probing function).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevocationRecord {
    /// The watched market.
    pub market: MarketId,
    /// When the spot instance was acquired.
    pub acquired_at: SimTime,
    /// The bid it was acquired with.
    pub bid: Price,
    /// When the platform revoked it; `None` if it survived the hold.
    pub revoked_at: Option<SimTime>,
    /// When the hold ended (revocation or voluntary release).
    pub released_at: Option<SimTime>,
}

/// One intrinsic-bid measurement (the `BidSpread` probing function).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntrinsicBidRecord {
    /// The market measured.
    pub market: MarketId,
    /// When the search ran.
    pub at: SimTime,
    /// The published spot price at the time.
    pub published: Price,
    /// The lowest bid that actually obtained an instance.
    pub intrinsic: Price,
    /// Spot requests the search needed (the paper reports 2–3 average,
    /// 6 maximum).
    pub attempts: u32,
}

/// The in-memory database.
#[derive(Debug, Default)]
pub struct DataStore {
    probes: Vec<ProbeRecord>,
    probes_by_market: HashMap<MarketId, Vec<usize>>,
    spikes: Vec<SpikeEvent>,
    intervals: Vec<UnavailabilityInterval>,
    open_intervals: HashMap<(MarketId, ProbeKind), usize>,
    revocations: Vec<RevocationRecord>,
    intrinsic_bids: Vec<IntrinsicBidRecord>,
    total_cost: Price,
    suppressed_probes: u64,
}

/// A shareable handle to the store (engine agents and live-mode threads
/// both write through this).
pub type SharedStore = Arc<Mutex<DataStore>>;

/// Creates an empty shared store.
pub fn shared_store() -> SharedStore {
    Arc::new(Mutex::new(DataStore::default()))
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DataStore::default()
    }

    /// Records a probe, maintaining unavailability intervals: a rejected
    /// probe opens an interval for its `(market, kind)` (if none is
    /// open); a fulfilled probe closes it. Returns `true` when this
    /// probe *opened* a new interval — i.e. it is an initial detection.
    pub fn record_probe(&mut self, probe: ProbeRecord) -> bool {
        let idx = self.probes.len();
        self.probes.push(probe);
        self.probes_by_market
            .entry(probe.market)
            .or_default()
            .push(idx);
        self.total_cost += probe.cost;

        let key = (probe.market, probe.kind);
        if probe.outcome.is_unavailable() {
            if self.open_intervals.contains_key(&key) {
                return false;
            }
            self.open_intervals.insert(key, self.intervals.len());
            self.intervals.push(UnavailabilityInterval {
                market: probe.market,
                kind: probe.kind,
                start: probe.at,
                end: None,
                detect_ratio: probe.spot_ratio,
                detected_via_related: probe.trigger.is_related(),
            });
            true
        } else {
            if probe.outcome == ProbeOutcome::Fulfilled {
                if let Some(idx) = self.open_intervals.remove(&key) {
                    self.intervals[idx].end = Some(probe.at);
                }
            }
            false
        }
    }

    /// Records a spike observation.
    pub fn record_spike(&mut self, spike: SpikeEvent) {
        self.spikes.push(spike);
    }

    /// Records that the policy wanted to probe but was suppressed by
    /// budget or service limits.
    pub fn record_suppressed(&mut self) {
        self.suppressed_probes += 1;
    }

    /// Records a revocation-watch observation.
    pub fn record_revocation(&mut self, rec: RevocationRecord) {
        self.revocations.push(rec);
    }

    /// Records an intrinsic-bid measurement.
    pub fn record_intrinsic_bid(&mut self, rec: IntrinsicBidRecord) {
        self.intrinsic_bids.push(rec);
    }

    /// All probes, oldest first.
    pub fn probes(&self) -> &[ProbeRecord] {
        &self.probes
    }

    /// The probes of one market, oldest first.
    pub fn probes_of(&self, market: MarketId) -> impl Iterator<Item = &ProbeRecord> + '_ {
        self.probes_by_market
            .get(&market)
            .into_iter()
            .flatten()
            .map(move |&i| &self.probes[i])
    }

    /// All spike observations.
    pub fn spikes(&self) -> &[SpikeEvent] {
        &self.spikes
    }

    /// All unavailability intervals (open ones have `end == None`).
    pub fn intervals(&self) -> &[UnavailabilityInterval] {
        &self.intervals
    }

    /// Whether `(market, kind)` has an open unavailability interval.
    pub fn is_unavailable(&self, market: MarketId, kind: ProbeKind) -> bool {
        self.open_intervals.contains_key(&(market, kind))
    }

    /// All revocation observations.
    pub fn revocations(&self) -> &[RevocationRecord] {
        &self.revocations
    }

    /// All intrinsic-bid measurements.
    pub fn intrinsic_bids(&self) -> &[IntrinsicBidRecord] {
        &self.intrinsic_bids
    }

    /// Total money spent on probes.
    pub fn total_cost(&self) -> Price {
        self.total_cost
    }

    /// Probes suppressed by budget or service limits.
    pub fn suppressed_probes(&self) -> u64 {
        self.suppressed_probes
    }

    /// Number of probes recorded.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when no probes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeTrigger;
    use cloud_sim::ids::{Az, Platform, Region};

    fn market(i: u8) -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, i),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(at: u64, m: MarketId, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::PriceSpike { ratio: 2.0 },
            outcome,
            spot_ratio: 2.0,
            bid: None,
            cost: Price::from_dollars(0.1),
        }
    }

    #[test]
    fn rejection_opens_interval_once() {
        let mut s = DataStore::new();
        assert!(s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity)));
        assert!(!s.record_probe(probe(20, market(0), ProbeOutcome::InsufficientCapacity)));
        assert!(s.is_unavailable(market(0), ProbeKind::OnDemand));
        assert_eq!(s.intervals().len(), 1);
    }

    #[test]
    fn fulfilment_closes_interval() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(310, market(0), ProbeOutcome::Fulfilled));
        assert!(!s.is_unavailable(market(0), ProbeKind::OnDemand));
        let i = s.intervals()[0];
        assert_eq!(i.end, Some(SimTime::from_secs(310)));
        assert_eq!(i.duration().unwrap().as_secs(), 300);
    }

    #[test]
    fn kinds_tracked_independently() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        let mut sp = probe(20, market(0), ProbeOutcome::CapacityNotAvailable);
        sp.kind = ProbeKind::Spot;
        assert!(s.record_probe(sp));
        assert!(s.is_unavailable(market(0), ProbeKind::OnDemand));
        assert!(s.is_unavailable(market(0), ProbeKind::Spot));
        assert_eq!(s.intervals().len(), 2);
    }

    #[test]
    fn held_outcomes_do_not_close_intervals() {
        let mut s = DataStore::new();
        let mut sp = probe(10, market(0), ProbeOutcome::CapacityNotAvailable);
        sp.kind = ProbeKind::Spot;
        s.record_probe(sp);
        let mut ptl = probe(20, market(0), ProbeOutcome::PriceTooLow);
        ptl.kind = ProbeKind::Spot;
        s.record_probe(ptl);
        assert!(s.is_unavailable(market(0), ProbeKind::Spot));
    }

    #[test]
    fn cost_accumulates_and_indexes_work() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::Fulfilled));
        s.record_probe(probe(20, market(1), ProbeOutcome::Fulfilled));
        s.record_probe(probe(30, market(0), ProbeOutcome::Fulfilled));
        assert_eq!(s.total_cost(), Price::from_dollars(0.3));
        assert_eq!(s.probes_of(market(0)).count(), 2);
        assert_eq!(s.probes_of(market(1)).count(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn shared_store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedStore>();
        let s = shared_store();
        s.lock().record_spike(SpikeEvent {
            market: market(0),
            at: SimTime::ZERO,
            ratio: 1.5,
            probed: true,
        });
        assert_eq!(s.lock().spikes().len(), 1);
    }
}
