//! SpotLight's database: every probe, spike, unavailability interval,
//! revocation observation, and intrinsic-bid measurement.
//!
//! The prototype in the paper logged "all states and status changes
//! timestamps ... into database" through a dedicated database manager
//! (Chapter 4). Here the store is a **lock-striped, epoch-summarized
//! in-memory log**: the analysis (`crate::analysis`) and the query
//! interface (`crate::query`) are pure functions over a [`StoreRead`]
//! snapshot of it.
//!
//! # Striping
//!
//! Records are routed to one of N stripes by a hash of their market id;
//! each stripe sits behind its own [`crate::sync::RwLock`]. Ingest
//! (`record_*`, all `&self`) write-locks exactly one stripe, so
//! concurrent probe workers in live mode only contend when they hit the
//! same stripe. Reads go through [`DataStore::read`], which acquires
//! every stripe's read lock (in stripe order, so readers never deadlock
//! against writers) and exposes the whole-log iteration and per-market
//! index API on the combined snapshot. Store-wide counters
//! (`len`, `total_cost`, `suppressed_probes`) are lock-free atomics.
//!
//! # Index invariants
//!
//! Within a stripe the log slabs (`probes`, `spikes`, `intervals`, …)
//! are append-only between compactions; secondary indices refer to
//! records by their position in the owning slab:
//!
//! * `probes_by_market` — per-market record indices, kept **sorted by
//!   timestamp**. Probes arrive in non-decreasing time order from the
//!   engine, so maintaining the sort is an O(1) append in the common
//!   case; a rare out-of-order insert (live mode's thread
//!   interleavings) costs a binary-search insertion. Sorted order is
//!   what turns time-range queries into binary searches
//!   ([`StoreRead::probes_between`]).
//! * `keys` — one [`KeyState`] per `(market, kind)` holding everything
//!   the per-key queries need in a single hash lookup: running
//!   informative/rejection counters, the key's interval index (in
//!   interval-open order), the at-most-one open interval, the
//!   time-sorted rejection timestamps, the closed-interval counter,
//!   and the key's epoch summary.
//!
//! # Epoch summaries
//!
//! Each `(market, kind)` additionally maintains fixed-width time
//! buckets ([`DataStore::epoch_width`], default one hour) with
//! informative/rejection counts and **closed-unavailable seconds**,
//! updated incrementally at ingest (interval seconds are distributed
//! over the epochs they cover when the interval closes). Window sweeps
//! ([`StoreRead::unavailable_seconds_in`]) read whole buckets for the
//! epochs fully inside the query span and binary-search the key's
//! interval index only for the two boundary epochs — O(buckets in
//! span plus log intervals) instead of O(intervals in span). The fast path
//! requires the key's intervals to be start-sorted and non-overlapping
//! (always true for the engine's monotone timestamps); a key that ever
//! observes out-of-order interval bookkeeping is flagged and falls back
//! to the exact full walk. Spike ratios are likewise bucketed per epoch
//! in sorted lists, so threshold counts ([`StoreRead::spikes_at_or_above`])
//! are binary searches per bucket, independent of the raw spike log.
//!
//! # Compaction
//!
//! [`DataStore::compact`] folds records strictly older than a retention
//! horizon into the summaries and frees the raw slabs: probe and spike
//! records are dropped (their contributions already live in the running
//! counters, rejection-time indices, interval log, and epoch
//! summaries), while intervals, rejection timestamps, revocations, and
//! intrinsic bids — the small derived structures every summarized query
//! is answered from — are retained in full. Summarized queries
//! (`availability`, `unavailable_seconds`, `spike_rates`,
//! `top_available_markets`, `conditional_unavailability`,
//! `mean_time_to_revocation`, the running counters) therefore return
//! bit-identical results before and after compaction; only raw-log
//! iteration (`probes*`, `spikes`) shrinks to the retained window.
//! [`DataStore::len`] keeps counting every probe ever recorded;
//! [`DataStore::resident_records`] / [`DataStore::resident_bytes`]
//! report what is actually held.
//!
//! # Durability and recovery
//!
//! A store opened with [`DataStore::create_durable`] additionally
//! appends every mutation to a per-stripe, CRC-framed, append-only
//! segment log (one log *stream* per stripe plus a meta stream for
//! store-wide events), written by a background thread behind a bounded
//! queue with a configurable fsync policy
//! ([`crate::durable::DurableOptions`]). [`DataStore::checkpoint`]
//! writes an atomic full-state snapshot and prunes the log behind it;
//! [`DataStore::recover`] rebuilds the store from the last checkpoint
//! plus the surviving log tail, trimming torn or corrupt tail frames
//! and dropping duplicated frames a retried append can leave. In
//! durable mode [`DataStore::compact`] *spills* the doomed raw records
//! into sealed on-disk segments before freeing their slabs, so
//! bounded-RAM operation never destroys history. The protocol,
//! sequence-number reasoning, and crash-safety argument live in
//! [`crate::durable`]; the recovery oracle is
//! `tests/persistence.rs`, which asserts a recovered store answers
//! summarized queries bit-identically to one that never crashed across
//! a torn/truncated/corrupted/duplicated fault matrix.
//!
//! # Runtime I/O faults and degraded mode
//!
//! A disk that starts failing at runtime does not panic the store and
//! does not block ingest. After bounded in-writer retries the store
//! drops to **degraded** mode: appends stay in memory only, a
//! `durability_lost` watermark (the last op provably on disk) is
//! published through [`DataStore::durability_lost`], live reports, and
//! query freshness, and the driver's periodic
//! [`DataStore::tend_durability`] call re-establishes the log at a
//! fresh generation once the disk recovers — a healing checkpoint
//! captures every op recorded while degraded. Graceful shutdown
//! ([`DataStore::close`]) writes a clean-shutdown marker after a final
//! checkpoint so the next recovery skips tail-scan replay entirely.
//! The full state machine is documented in [`crate::durable`]; the
//! kill-9 crash-torture harness (`crates/bench/src/bin/torture.rs`,
//! driven by `scripts/torture_smoke.sh`) exercises real SIGKILLed
//! child processes against it.

use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, UnavailabilityInterval};
use crate::sync::{RwLock, RwLockReadGuard};
use cloud_sim::ids::{MarketId, Region};
use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default stripe count (markets hash across these).
pub const DEFAULT_STRIPES: usize = 16;

/// rustc-hash-style multiplicative hasher. Two properties matter here:
/// it is a few ns per `MarketId` (the store hashes a market on every
/// record and every per-market lookup — SipHash showed up as 30%+ on
/// the indexed query benches), and it is deterministic across
/// processes, so stripe layout and map iteration order are stable for
/// bench snapshots and reproducible output.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                tail |= u64::from(b) << (8 * i);
            }
            self.add(tail);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

pub(crate) type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Default epoch-summary bucket width.
pub const DEFAULT_EPOCH: SimDuration = SimDuration::from_secs(3600);

/// A spike observation: a published price crossing SpotLight's radar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeEvent {
    /// The market that spiked.
    pub market: MarketId,
    /// When the spike was observed.
    pub at: SimTime,
    /// Spot/on-demand price ratio.
    pub ratio: f64,
    /// Whether the policy issued a probe for it (sampling/cooldown/budget
    /// may suppress probes; unprobed spikes are excluded from
    /// conditional-probability trials).
    pub probed: bool,
}

/// One revocation-watch observation (the `Revocation` probing function).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevocationRecord {
    /// The watched market.
    pub market: MarketId,
    /// When the spot instance was acquired.
    pub acquired_at: SimTime,
    /// The bid it was acquired with.
    pub bid: Price,
    /// When the platform revoked it; `None` if it survived the hold.
    pub revoked_at: Option<SimTime>,
    /// When the hold ended (revocation or voluntary release).
    pub released_at: Option<SimTime>,
}

/// One intrinsic-bid measurement (the `BidSpread` probing function).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntrinsicBidRecord {
    /// The market measured.
    pub market: MarketId,
    /// When the search ran.
    pub at: SimTime,
    /// The published spot price at the time.
    pub published: Price,
    /// The lowest bid that actually obtained an instance.
    pub intrinsic: Price,
    /// Spot requests the search needed (the paper reports 2–3 average,
    /// 6 maximum).
    pub attempts: u32,
}

/// Running per-`(market, kind)` probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Informative probes (everything but `ApiLimited`).
    pub informative: u64,
    /// Probes with an unavailable outcome.
    pub rejections: u64,
}

/// What one [`DataStore::compact`] pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Raw probe records dropped (folded into the summaries).
    pub dropped_probes: u64,
    /// Raw spike records dropped (ratios remain in the epoch buckets).
    pub dropped_spikes: u64,
}

/// One epoch bucket of a `(market, kind)` summary.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpochCell {
    pub(crate) informative: u64,
    pub(crate) rejections: u64,
    pub(crate) unavail_secs: u64,
}

/// A dense, growable run of epoch buckets starting at epoch `first`.
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochSeries {
    pub(crate) first: u64,
    pub(crate) cells: Vec<EpochCell>,
}

impl EpochSeries {
    /// Mutable access to epoch `e`'s cell, growing the run as needed.
    fn cell(&mut self, e: u64) -> &mut EpochCell {
        if self.cells.is_empty() {
            self.first = e;
            self.cells.push(EpochCell::default());
        } else if e < self.first {
            // Rare (out-of-order live-mode arrivals): prepend.
            let missing = (self.first - e) as usize;
            self.cells
                .splice(0..0, std::iter::repeat_n(EpochCell::default(), missing));
            self.first = e;
        } else if e >= self.first + self.cells.len() as u64 {
            let needed = (e - self.first) as usize + 1;
            self.cells.resize(needed, EpochCell::default());
        }
        &mut self.cells[(e - self.first) as usize]
    }

    /// Sum of closed-unavailable seconds over epochs `[from, to)`.
    fn unavail_in(&self, from: u64, to: u64) -> u64 {
        let lo = from.max(self.first);
        let hi = to.min(self.first + self.cells.len() as u64);
        if hi <= lo {
            return 0;
        }
        self.cells[(lo - self.first) as usize..(hi - self.first) as usize]
            .iter()
            .map(|c| c.unavail_secs)
            .sum()
    }

    /// Sum of (informative, rejection) counts over epochs `[from, to)`.
    fn counts_in(&self, from: u64, to: u64) -> (u64, u64) {
        let lo = from.max(self.first);
        let hi = to.min(self.first + self.cells.len() as u64);
        if hi <= lo {
            return (0, 0);
        }
        self.cells[(lo - self.first) as usize..(hi - self.first) as usize]
            .iter()
            .fold((0, 0), |(i, r), c| (i + c.informative, r + c.rejections))
    }
}

/// Everything one `(market, kind)` key maintains, reachable in a single
/// hash lookup at ingest.
#[derive(Debug, Clone, Default)]
pub(crate) struct KeyState {
    pub(crate) stats: ProbeStats,
    /// Indices into the stripe's interval slab, in interval-open order.
    pub(crate) intervals: Vec<usize>,
    /// The at-most-one open interval, as an index into the slab.
    pub(crate) open: Option<usize>,
    pub(crate) closed_intervals: u64,
    /// Time-sorted timestamps of unavailable-outcome probes.
    pub(crate) rejection_times: Vec<SimTime>,
    /// Latest informative probe timestamp — the freshness anchor of
    /// [`StoreRead::last_informative_at`]. A max, not a last-write, so
    /// out-of-order live-mode arrivals cannot move it backwards.
    pub(crate) last_informative: Option<SimTime>,
    pub(crate) epochs: EpochSeries,
    /// Set once the key's intervals stop being start-sorted and
    /// non-overlapping (possible under live-mode reordering); the
    /// epoch fast path then yields to the exact full walk.
    pub(crate) disordered: bool,
}

/// One lock stripe: a shard of the log plus its secondary indices.
/// `Clone` is what [`DataStore::snapshot`] deep-copies per stripe.
#[derive(Debug, Clone, Default)]
pub(crate) struct Stripe {
    pub(crate) probes: Vec<ProbeRecord>,
    pub(crate) probes_by_market: FxHashMap<MarketId, Vec<usize>>,
    pub(crate) spikes: Vec<SpikeEvent>,
    /// Sorted spike ratios per epoch — the summary `spike_rates` reads;
    /// holds every spike ever recorded (compaction keeps it intact).
    pub(crate) spike_ratios_by_epoch: FxHashMap<u64, Vec<f64>>,
    pub(crate) intervals: Vec<UnavailabilityInterval>,
    pub(crate) keys: FxHashMap<(MarketId, ProbeKind), KeyState>,
    pub(crate) od_rejections_by_region: HashMap<Region, u64>,
    pub(crate) revocations: Vec<RevocationRecord>,
    pub(crate) revocations_by_market: FxHashMap<MarketId, Vec<usize>>,
    pub(crate) intrinsic_bids: Vec<IntrinsicBidRecord>,
}

/// The health of one region's probing transport, as the live pipeline's
/// circuit breakers report it (see `crate::manager`). Degraded means
/// the region's API was failing persistently — the region's recent
/// observations are missing, not negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionHealth {
    /// Whether the region is currently marked degraded.
    pub degraded: bool,
    /// When the current (or latest) degraded episode began.
    pub since: SimTime,
    /// Total seconds spent degraded over completed episodes.
    pub degraded_secs: u64,
    /// Completed + ongoing degraded episodes (breaker trips).
    pub trips: u64,
}

/// The in-memory database: N independently locked stripes plus
/// store-wide atomic counters and the region-health table.
#[derive(Debug)]
pub struct DataStore {
    pub(crate) stripes: Box<[RwLock<Stripe>]>,
    pub(crate) epoch_secs: u64,
    pub(crate) recorded_probes: AtomicU64,
    pub(crate) total_cost_micros: AtomicU64,
    pub(crate) suppressed_probes: AtomicU64,
    /// Region degradation markers, written by live-mode circuit
    /// breakers. A separate (tiny, rarely written) lock so marking a
    /// region never contends with probe ingest.
    pub(crate) region_health: RwLock<HashMap<Region, RegionHealth>>,
    /// The operation log, when this store was opened in durable mode
    /// (see [`crate::durable`]). `None` for plain in-memory stores —
    /// every ingest path then skips logging entirely.
    pub(crate) durable: Option<crate::durable::DurableSink>,
}

impl Default for DataStore {
    fn default() -> Self {
        DataStore::new()
    }
}

/// A shareable handle to the store. Writers (`record_*`) go straight
/// through `&self` — the striping is internal — so engine agents and
/// live-mode threads share it without an outer lock.
pub type SharedStore = Arc<DataStore>;

/// Creates an empty shared store.
pub fn shared_store() -> SharedStore {
    Arc::new(DataStore::new())
}

/// Routes a market to a stripe: the deterministic Fx hash of its id,
/// high bits folded into the low bits the modulo looks at. A free
/// function so live stores and owned snapshots (which have no
/// `DataStore`) agree on the layout.
pub(crate) fn stripe_index(market: MarketId, stripes: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    market.hash(&mut h);
    let h = h.finish();
    ((h >> 32) ^ h) as usize % stripes
}

/// Inserts `item` into a vector kept sorted by `key_of`. Appends in
/// O(1) when the new item's key is the latest (the engine's monotone
/// case); binary-search inserts otherwise.
fn insert_sorted_by<T: Copy, K: PartialOrd>(
    sorted: &mut Vec<T>,
    item: T,
    key_of: impl Fn(&T) -> K,
) {
    match sorted.last() {
        Some(last) if key_of(last) > key_of(&item) => {
            let pos = sorted.partition_point(|x| key_of(x) <= key_of(&item));
            sorted.insert(pos, item);
        }
        _ => sorted.push(item),
    }
}

/// Distributes a closed interval's `[start, end)` seconds over the
/// epoch buckets it covers.
fn add_closed_span(epochs: &mut EpochSeries, start: u64, end: u64, width: u64) {
    if end <= start {
        return;
    }
    let last = (end - 1) / width;
    for e in (start / width)..=last {
        let lo = start.max(e * width);
        let hi = end.min((e + 1) * width);
        epochs.cell(e).unavail_secs += hi - lo;
    }
}

impl DataStore {
    /// Creates an empty store with the default layout
    /// ([`DEFAULT_STRIPES`] stripes, [`DEFAULT_EPOCH`] epochs).
    pub fn new() -> Self {
        DataStore::with_layout(DEFAULT_STRIPES, DEFAULT_EPOCH)
    }

    /// Creates an empty store with `stripes` lock stripes and `epoch`
    /// wide summary buckets.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero or `epoch` is zero-length.
    pub fn with_layout(stripes: usize, epoch: SimDuration) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        assert!(epoch.as_secs() > 0, "epoch width must be positive");
        DataStore {
            stripes: (0..stripes).map(|_| RwLock::default()).collect(),
            epoch_secs: epoch.as_secs(),
            recorded_probes: AtomicU64::new(0),
            total_cost_micros: AtomicU64::new(0),
            suppressed_probes: AtomicU64::new(0),
            region_health: RwLock::default(),
            durable: None,
        }
    }

    /// The configured number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The configured epoch-summary bucket width.
    pub fn epoch_width(&self) -> SimDuration {
        SimDuration::from_secs(self.epoch_secs)
    }

    fn stripe_of(&self, market: MarketId) -> usize {
        stripe_index(market, self.stripes.len())
    }

    /// Acquires a consistent read snapshot over every stripe. Readers
    /// share; writers to any stripe wait until the snapshot is dropped.
    pub fn read(&self) -> StoreRead<'_> {
        StoreRead {
            view: ReadView::Live {
                store: self,
                stripes: self.stripes.iter().map(|s| s.read()).collect(),
            },
        }
    }

    /// Records a probe, maintaining unavailability intervals: a rejected
    /// probe opens an interval for its `(market, kind)` (if none is
    /// open); a fulfilled probe closes it. Returns `true` when this
    /// probe *opened* a new interval — i.e. it is an initial detection.
    ///
    /// Locks only the market's stripe; concurrent callers for other
    /// stripes proceed in parallel.
    pub fn record_probe(&self, probe: ProbeRecord) -> bool {
        let epoch = probe.at.as_secs() / self.epoch_secs;
        let idx = self.stripe_of(probe.market);
        let mut stripe = self.stripes[idx].write();
        // The counter bumps live inside the stripe-lock critical
        // section, next to the WAL append: checkpoint captures the
        // counters and `next_seq` under every stripe lock, so a probe
        // is either entirely inside the snapshot (counted, seq below
        // the captured floor) or entirely replayed on recovery — never
        // both, which would double-count it in `len`/`total_cost`.
        self.recorded_probes.fetch_add(1, Ordering::Relaxed);
        self.total_cost_micros
            .fetch_add(probe.cost.as_micros(), Ordering::Relaxed);
        if let Some(d) = &self.durable {
            d.append(idx as u32, &crate::durable::StoreOp::Probe(probe));
        }
        stripe.record_probe(probe, epoch, self.epoch_secs)
    }

    /// Records a spike observation (raw log + epoch ratio summary).
    pub fn record_spike(&self, spike: SpikeEvent) {
        let epoch = spike.at.as_secs() / self.epoch_secs;
        let idx = self.stripe_of(spike.market);
        let mut stripe = self.stripes[idx].write();
        if let Some(d) = &self.durable {
            d.append(idx as u32, &crate::durable::StoreOp::Spike(spike));
        }
        stripe.spikes.push(spike);
        let ratios = stripe.spike_ratios_by_epoch.entry(epoch).or_default();
        insert_sorted_by(ratios, spike.ratio, |&r| r);
    }

    /// Records that the policy wanted to probe but was suppressed by
    /// budget or service limits.
    pub fn record_suppressed(&self) {
        let total = self.suppressed_probes.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(d) = &self.durable {
            // Lock-free path: the op carries the running total and
            // replays via `fetch_max`, so frame order never matters.
            d.append(
                self.meta_stream(),
                &crate::durable::StoreOp::Suppressed { total },
            );
        }
    }

    /// Marks a region's probing transport degraded (a live-mode circuit
    /// breaker tripped at `at`). Idempotent while already degraded.
    pub fn mark_region_degraded(&self, region: Region, at: SimTime) {
        let mut health = self.region_health.write();
        let h = health.entry(region).or_default();
        if !h.degraded {
            h.degraded = true;
            h.since = at;
            h.trips += 1;
            if let Some(d) = &self.durable {
                d.append(
                    self.meta_stream(),
                    &crate::durable::StoreOp::RegionDegraded { region, at },
                );
            }
        }
    }

    /// Marks a region's probing transport recovered at `at`, folding the
    /// episode into `degraded_secs`. A no-op if the region was never
    /// marked degraded.
    pub fn mark_region_recovered(&self, region: Region, at: SimTime) {
        let mut health = self.region_health.write();
        if let Some(h) = health.get_mut(&region) {
            if h.degraded {
                h.degraded = false;
                h.degraded_secs += at.saturating_since(h.since).as_secs();
                if let Some(d) = &self.durable {
                    d.append(
                        self.meta_stream(),
                        &crate::durable::StoreOp::RegionRecovered { region, at },
                    );
                }
            }
        }
    }

    /// The health record of one region, if a breaker ever reported it.
    pub fn region_health(&self, region: Region) -> Option<RegionHealth> {
        self.region_health.read().get(&region).copied()
    }

    /// Records a revocation-watch observation.
    pub fn record_revocation(&self, rec: RevocationRecord) {
        let stripe_idx = self.stripe_of(rec.market);
        let mut stripe = self.stripes[stripe_idx].write();
        if let Some(d) = &self.durable {
            d.append(stripe_idx as u32, &crate::durable::StoreOp::Revocation(rec));
        }
        let idx = stripe.revocations.len();
        stripe.revocations.push(rec);
        let Stripe {
            revocations,
            revocations_by_market,
            ..
        } = &mut *stripe;
        insert_sorted_by(
            revocations_by_market.entry(rec.market).or_default(),
            idx,
            |&i| revocations[i].acquired_at,
        );
    }

    /// Records an intrinsic-bid measurement.
    pub fn record_intrinsic_bid(&self, rec: IntrinsicBidRecord) {
        let idx = self.stripe_of(rec.market);
        let mut stripe = self.stripes[idx].write();
        if let Some(d) = &self.durable {
            d.append(idx as u32, &crate::durable::StoreOp::IntrinsicBid(rec));
        }
        stripe.intrinsic_bids.push(rec);
    }

    /// Folds raw records strictly older than `before` into the
    /// summaries and frees their slabs. Intervals, rejection
    /// timestamps, epoch summaries, revocations, intrinsic bids, and
    /// every running counter are retained, so summarized queries are
    /// unchanged; raw-log iteration shrinks to the retained window.
    ///
    /// In durable mode the doomed raw records are first sealed into
    /// spill segments on disk (see [`crate::durable`]) — compaction
    /// *spills* rather than destroys, so the full raw history survives
    /// bounded-RAM operation. If a stripe's spill write fails, that
    /// stripe keeps its raw slabs (nothing is lost; the error is
    /// surfaced via [`DataStore::durability_stats`]).
    pub fn compact(&self, before: SimTime) -> CompactionStats {
        // Durable compaction releases the stripe lock between spilling
        // and dropping, so concurrent passes must not interleave (the
        // same records would be sealed twice).
        let _spill_guard = self.durable.as_ref().map(|d| d.compact_lock.lock());
        let mut stats = CompactionStats::default();
        for (idx, stripe) in self.stripes.iter().enumerate() {
            // In durable mode the doomed records are sealed *before*
            // their slabs are touched, and the synchronous segment
            // write runs with no stripe lock held — ingest and reads
            // proceed during the disk IO. Only the snapshotted slab
            // prefix is dropped afterwards: records that arrive
            // mid-spill (even ones older than `before`) stay resident
            // until the next pass, so segments never hold duplicates.
            let spilled = match &self.durable {
                Some(d) => {
                    let (records, probes_len, spikes_len) = {
                        let s = stripe.read();
                        (
                            crate::durable::encode_spill(&s, before),
                            s.probes.len(),
                            s.spikes.len(),
                        )
                    };
                    if !crate::durable::write_spill(d, idx, &records) {
                        continue; // keep the raw slabs: nothing sealed
                    }
                    Some((probes_len, spikes_len))
                }
                None => None,
            };
            let mut s = stripe.write();
            let (probe_limit, spike_limit) = spilled.unwrap_or((s.probes.len(), s.spikes.len()));
            stats.dropped_probes += s.compact_probes(before, probe_limit);
            stats.dropped_spikes += s.compact_spikes(before, spike_limit);
        }
        stats
    }

    /// Raw records currently resident (probes + spikes + revocations +
    /// intrinsic bids). [`DataStore::compact`] lowers this;
    /// [`DataStore::len`] is unaffected.
    pub fn resident_records(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| {
                let s = s.read();
                (s.probes.len() + s.spikes.len() + s.revocations.len() + s.intrinsic_bids.len())
                    as u64
            })
            .sum()
    }

    /// Approximate resident heap footprint of the store's slabs and
    /// indices, in bytes (capacities × element sizes; hash-map control
    /// overhead is not counted).
    pub fn resident_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut bytes = 0usize;
        for stripe in &self.stripes {
            let s = stripe.read();
            bytes += s.probes.capacity() * size_of::<ProbeRecord>();
            bytes += s.spikes.capacity() * size_of::<SpikeEvent>();
            bytes += s.intervals.capacity() * size_of::<UnavailabilityInterval>();
            bytes += s.revocations.capacity() * size_of::<RevocationRecord>();
            bytes += s.intrinsic_bids.capacity() * size_of::<IntrinsicBidRecord>();
            bytes += s
                .probes_by_market
                .values()
                .map(|v| v.capacity() * size_of::<usize>())
                .sum::<usize>();
            bytes += s
                .revocations_by_market
                .values()
                .map(|v| v.capacity() * size_of::<usize>())
                .sum::<usize>();
            bytes += s
                .spike_ratios_by_epoch
                .values()
                .map(|v| v.capacity() * size_of::<f64>())
                .sum::<usize>();
            bytes += s
                .keys
                .values()
                .map(|k| {
                    k.intervals.capacity() * size_of::<usize>()
                        + k.rejection_times.capacity() * size_of::<SimTime>()
                        + k.epochs.cells.capacity() * size_of::<EpochCell>()
                })
                .sum::<usize>();
        }
        bytes as u64
    }

    /// Total money spent on probes.
    pub fn total_cost(&self) -> Price {
        Price::from_micros(self.total_cost_micros.load(Ordering::Relaxed))
    }

    /// Probes suppressed by budget or service limits.
    pub fn suppressed_probes(&self) -> u64 {
        self.suppressed_probes.load(Ordering::Relaxed)
    }

    /// Number of probes recorded over the store's lifetime (compaction
    /// does not lower this).
    pub fn len(&self) -> usize {
        self.recorded_probes.load(Ordering::Relaxed) as usize
    }

    /// True when no probes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Stripe {
    fn record_probe(&mut self, probe: ProbeRecord, epoch: u64, epoch_secs: u64) -> bool {
        let idx = self.probes.len();
        self.probes.push(probe);
        let by_market = self.probes_by_market.entry(probe.market).or_default();
        let probes = &self.probes;
        insert_sorted_by(by_market, idx, |&i| probes[i].at);

        let key = (probe.market, probe.kind);
        let state = self.keys.entry(key).or_default();
        if probe.outcome.is_informative() {
            state.stats.informative += 1;
            state.last_informative =
                Some(state.last_informative.map_or(probe.at, |t| t.max(probe.at)));
            let cell = state.epochs.cell(epoch);
            cell.informative += 1;
            if probe.outcome.is_unavailable() {
                state.stats.rejections += 1;
                cell.rejections += 1;
            }
        }

        if probe.outcome.is_unavailable() {
            insert_sorted_by(&mut state.rejection_times, probe.at, |&t| t);
            if probe.kind == ProbeKind::OnDemand {
                *self
                    .od_rejections_by_region
                    .entry(probe.market.region())
                    .or_insert(0) += 1;
            }
            if state.open.is_some() {
                return false;
            }
            // Opening a new interval: the previous one (necessarily
            // closed) must end at or before this start for the epoch
            // fast path to stay valid.
            if let Some(&last) = state.intervals.last() {
                let prev = &self.intervals[last];
                if probe.at < prev.start || prev.end.is_some_and(|e| probe.at < e) {
                    state.disordered = true;
                }
            }
            let interval_idx = self.intervals.len();
            state.open = Some(interval_idx);
            state.intervals.push(interval_idx);
            self.intervals.push(UnavailabilityInterval {
                market: probe.market,
                kind: probe.kind,
                start: probe.at,
                end: None,
                detect_ratio: probe.spot_ratio,
                detected_via_related: probe.trigger.is_related(),
            });
            true
        } else {
            if probe.outcome == ProbeOutcome::Fulfilled {
                if let Some(idx) = state.open.take() {
                    let interval = &mut self.intervals[idx];
                    interval.end = Some(probe.at);
                    state.closed_intervals += 1;
                    if probe.at < interval.start {
                        state.disordered = true;
                    }
                    add_closed_span(
                        &mut state.epochs,
                        interval.start.as_secs(),
                        probe.at.as_secs(),
                        epoch_secs,
                    );
                }
            }
            false
        }
    }

    /// Drops probe records older than `before` among the first `limit`
    /// slab entries, remapping the per-market indices onto the retained
    /// slab. Entries at or past `limit` are kept regardless — in
    /// durable mode they arrived after the spill snapshot and have not
    /// been sealed on disk yet. Markets whose probes are all compacted
    /// keep their (empty) index entry so `probed_markets` stays a
    /// lifetime fact.
    fn compact_probes(&mut self, before: SimTime, limit: usize) -> u64 {
        let old_len = self.probes.len();
        if old_len == 0 {
            return 0;
        }
        let mut remap = vec![usize::MAX; old_len];
        let mut kept = Vec::new();
        for (i, p) in self.probes.iter().enumerate() {
            if i >= limit || p.at >= before {
                remap[i] = kept.len();
                kept.push(*p);
            }
        }
        if kept.len() == old_len {
            return 0;
        }
        kept.shrink_to_fit();
        self.probes = kept;
        for ids in self.probes_by_market.values_mut() {
            ids.retain_mut(|id| {
                if remap[*id] == usize::MAX {
                    false
                } else {
                    *id = remap[*id];
                    true
                }
            });
            ids.shrink_to_fit();
        }
        (old_len - self.probes.len()) as u64
    }

    /// Drops spike records older than `before` among the first `limit`
    /// slab entries (later entries postdate the spill snapshot, like
    /// `compact_probes`); their ratios stay in the epoch buckets, so
    /// `spike_rates` is unchanged.
    fn compact_spikes(&mut self, before: SimTime, limit: usize) -> u64 {
        let old_len = self.spikes.len();
        let mut i = 0;
        self.spikes.retain(|s| {
            let keep = i >= limit || s.at >= before;
            i += 1;
            keep
        });
        self.spikes.shrink_to_fit();
        (old_len - self.spikes.len()) as u64
    }

    /// Exact closed-interval overlap with `[from, to)` for a key on the
    /// epoch fast path (start-sorted, non-overlapping intervals): one
    /// binary search plus a scan of the intervals starting inside the
    /// range. The open interval, if any, is the caller's business.
    fn closed_overlap(&self, state: &KeyState, from: u64, to: u64) -> u64 {
        if to <= from {
            return 0;
        }
        let ids = &state.intervals;
        let first = ids.partition_point(|&id| self.intervals[id].start.as_secs() < from);
        let mut total = 0u64;
        if first > 0 {
            // At most one closed interval can straddle `from`.
            let prev = &self.intervals[ids[first - 1]];
            if let Some(end) = prev.end {
                let e = end.as_secs().min(to);
                total += e.saturating_sub(from.max(prev.start.as_secs()));
            }
        }
        for &id in &ids[first..] {
            let interval = &self.intervals[id];
            let s = interval.start.as_secs();
            if s >= to {
                break;
            }
            if let Some(end) = interval.end {
                total += end.as_secs().min(to).saturating_sub(s);
            }
        }
        total
    }

    /// Seconds of measured unavailability of `key` inside `[from, to)`,
    /// open intervals running to `to`. Epoch-summarized: whole buckets
    /// for the epochs fully inside the span, binary searches for the
    /// two boundary epochs; exact full walk for disordered keys.
    fn unavailable_seconds_in(
        &self,
        key: (MarketId, ProbeKind),
        from: SimTime,
        to: SimTime,
        epoch_secs: u64,
    ) -> u64 {
        let Some(state) = self.keys.get(&key) else {
            return 0;
        };
        let (a, b) = (from.as_secs(), to.as_secs());
        if b <= a {
            return 0;
        }
        let closed = if state.disordered {
            state
                .intervals
                .iter()
                .filter_map(|&id| {
                    let interval = &self.intervals[id];
                    interval.end.map(|end| {
                        end.as_secs()
                            .min(b)
                            .saturating_sub(interval.start.as_secs().max(a))
                    })
                })
                .sum()
        } else {
            let first_full = a.div_ceil(epoch_secs);
            let end_full = b / epoch_secs;
            // Adaptive: the epoch path touches one cell per in-span
            // bucket, the index walk one entry per interval — pick
            // whichever is smaller (sparse keys over long spans are
            // cheaper to walk; dense keys are cheaper to bucket-sum).
            let buckets = end_full.saturating_sub(first_full);
            if first_full >= end_full || (state.intervals.len() as u64) < buckets {
                self.closed_overlap(state, a, b)
            } else {
                self.closed_overlap(state, a, first_full * epoch_secs)
                    + state.epochs.unavail_in(first_full, end_full)
                    + self.closed_overlap(state, end_full * epoch_secs, b)
            }
        };
        let open = state.open.map_or(0, |id| {
            b.saturating_sub(self.intervals[id].start.as_secs().max(a))
        });
        closed + open
    }
}

/// A consistent read view over every stripe: the whole query and
/// analysis surface of the store.
///
/// Two backings share this one API:
///
/// * **Live** ([`DataStore::read`]) — holds every stripe's read guard.
///   Holding one blocks writers, so drop it before resuming
///   ingest-heavy work.
/// * **Snapshot** ([`crate::snapshot::StoreSnapshot::read`]) — borrows
///   an owned, immutable copy of the stripes. No locks are held; a
///   million concurrent readers share it freely (the HTTP service's
///   hot path).
#[derive(Debug)]
pub struct StoreRead<'a> {
    pub(crate) view: ReadView<'a>,
}

#[derive(Debug)]
pub(crate) enum ReadView<'a> {
    Live {
        store: &'a DataStore,
        stripes: Vec<RwLockReadGuard<'a, Stripe>>,
    },
    Snapshot(&'a crate::snapshot::StoreSnapshot),
}

impl StoreRead<'_> {
    fn stripe_count(&self) -> usize {
        match &self.view {
            ReadView::Live { stripes, .. } => stripes.len(),
            ReadView::Snapshot(s) => s.stripes.len(),
        }
    }

    fn stripe_at(&self, i: usize) -> &Stripe {
        match &self.view {
            ReadView::Live { stripes, .. } => &stripes[i],
            ReadView::Snapshot(s) => &s.stripes[i],
        }
    }

    fn stripes(&self) -> impl Iterator<Item = &Stripe> + '_ {
        (0..self.stripe_count()).map(|i| self.stripe_at(i))
    }

    fn stripe_for(&self, market: MarketId) -> &Stripe {
        self.stripe_at(stripe_index(market, self.stripe_count()))
    }

    fn epoch_secs(&self) -> u64 {
        match &self.view {
            ReadView::Live { store, .. } => store.epoch_secs,
            ReadView::Snapshot(s) => s.epoch_secs,
        }
    }

    /// All resident probes, stripe by stripe (oldest first within a
    /// market; cross-market order is stripe layout, not global time).
    pub fn probes(&self) -> impl Iterator<Item = &ProbeRecord> + '_ {
        self.stripes().flat_map(|s| s.probes.iter())
    }

    /// The resident probes of one market, oldest first.
    pub fn probes_of(&self, market: MarketId) -> impl Iterator<Item = &ProbeRecord> + '_ {
        let stripe = self.stripe_for(market);
        stripe
            .probes_by_market
            .get(&market)
            .into_iter()
            .flatten()
            .map(move |&i| &stripe.probes[i])
    }

    /// The resident probes of one market inside `[from, to]`, oldest
    /// first — a binary search over the time-sorted per-market index,
    /// O(log n + matches) rather than O(market probes).
    pub fn probes_between(
        &self,
        market: MarketId,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &ProbeRecord> + '_ {
        let stripe = self.stripe_for(market);
        let index: &[usize] = stripe
            .probes_by_market
            .get(&market)
            .map_or(&[], |v| v.as_slice());
        let lo = index.partition_point(|&i| stripe.probes[i].at < from);
        index[lo..]
            .iter()
            .map(move |&i| &stripe.probes[i])
            .take_while(move |p| p.at <= to)
    }

    /// All resident spike observations.
    pub fn spikes(&self) -> impl Iterator<Item = &SpikeEvent> + '_ {
        self.stripes().flat_map(|s| s.spikes.iter())
    }

    /// Spikes with `ratio >= threshold`, counted over the store's
    /// lifetime from the per-epoch sorted ratio buckets (a binary
    /// search per bucket; unaffected by compaction).
    pub fn spikes_at_or_above(&self, threshold: f64) -> u64 {
        self.stripes()
            .flat_map(|s| s.spike_ratios_by_epoch.values())
            .map(|ratios| (ratios.len() - ratios.partition_point(|&r| r < threshold)) as u64)
            .sum()
    }

    /// All unavailability intervals (open ones have `end == None`),
    /// stripe by stripe.
    pub fn intervals(&self) -> impl Iterator<Item = &UnavailabilityInterval> + '_ {
        self.stripes().flat_map(|s| s.intervals.iter())
    }

    /// The unavailability intervals of one `(market, kind)`, in open
    /// order.
    pub fn intervals_of(
        &self,
        market: MarketId,
        kind: ProbeKind,
    ) -> impl Iterator<Item = &UnavailabilityInterval> + '_ {
        let stripe = self.stripe_for(market);
        stripe
            .keys
            .get(&(market, kind))
            .map(|k| k.intervals.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &stripe.intervals[i])
    }

    /// Completed unavailability intervals of one `(market, kind)` —
    /// a running counter, O(1).
    pub fn closed_interval_count(&self, market: MarketId, kind: ProbeKind) -> u64 {
        self.stripe_for(market)
            .keys
            .get(&(market, kind))
            .map_or(0, |k| k.closed_intervals)
    }

    /// The time-sorted timestamps of unavailable-outcome probes of one
    /// `(market, kind)` — the input the correlation analyses binary
    /// search.
    ///
    /// "Unavailable" is [`crate::probe::ProbeOutcome::is_unavailable`]:
    /// for on-demand probes the engine only ever produces
    /// `InsufficientCapacity`, but a caller recording an on-demand
    /// probe with `CapacityNotAvailable` would be counted here too.
    pub fn rejection_times(&self, market: MarketId, kind: ProbeKind) -> &[SimTime] {
        self.stripe_for(market)
            .keys
            .get(&(market, kind))
            .map_or(&[], |k| k.rejection_times.as_slice())
    }

    /// Iterates every `(market, kind)` that has recorded rejections,
    /// with its time-sorted rejection timestamps.
    pub fn rejection_entries(
        &self,
    ) -> impl Iterator<Item = ((MarketId, ProbeKind), &[SimTime])> + '_ {
        self.stripes().flat_map(|s| {
            s.keys
                .iter()
                .filter(|(_, k)| !k.rejection_times.is_empty())
                .map(|(&key, k)| (key, k.rejection_times.as_slice()))
        })
    }

    /// Running informative/rejection counters of one `(market, kind)`.
    pub fn probe_stats(&self, market: MarketId, kind: ProbeKind) -> ProbeStats {
        self.stripe_for(market)
            .keys
            .get(&(market, kind))
            .map_or_else(ProbeStats::default, |k| k.stats)
    }

    /// Informative/rejection counts of one `(market, kind)` restricted
    /// to the epochs fully covering `[from, to)` — served from the
    /// epoch summary (whole buckets; boundary epochs are included).
    pub fn probe_counts_around(
        &self,
        market: MarketId,
        kind: ProbeKind,
        from: SimTime,
        to: SimTime,
    ) -> (u64, u64) {
        let Some(state) = self.stripe_for(market).keys.get(&(market, kind)) else {
            return (0, 0);
        };
        let w = self.epoch_secs();
        state
            .epochs
            .counts_in(from.as_secs() / w, to.as_secs().div_ceil(w))
    }

    /// Seconds of measured unavailability of `(market, kind)` inside
    /// `[from, to)` (open intervals run to `to`). Epoch-summarized —
    /// see the module docs.
    pub fn unavailable_seconds_in(
        &self,
        market: MarketId,
        kind: ProbeKind,
        from: SimTime,
        to: SimTime,
    ) -> u64 {
        self.stripe_for(market)
            .unavailable_seconds_in((market, kind), from, to, self.epoch_secs())
    }

    /// On-demand rejection counts per region, merged into `out`
    /// (cleared first) from the stripes' running counters.
    pub fn od_rejections_into(&self, out: &mut HashMap<Region, u64>) {
        out.clear();
        for stripe in self.stripes() {
            for (&region, &n) in &stripe.od_rejections_by_region {
                *out.entry(region).or_insert(0) += n;
            }
        }
    }

    /// On-demand rejection counts per region, as a fresh map. Counts
    /// any unavailable outcome on an on-demand probe (from the engine
    /// that is exactly `InsufficientCapacity`).
    pub fn od_rejections_by_region(&self) -> HashMap<Region, u64> {
        let mut out = HashMap::new();
        self.od_rejections_into(&mut out);
        out
    }

    /// Whether `(market, kind)` has an open unavailability interval.
    pub fn is_unavailable(&self, market: MarketId, kind: ProbeKind) -> bool {
        self.stripe_for(market)
            .keys
            .get(&(market, kind))
            .is_some_and(|k| k.open.is_some())
    }

    /// The latest informative probe timestamp of `(market, kind)` —
    /// the freshness anchor of [`crate::query::SpotLightQuery::freshness`].
    /// `None` when the key has never produced an informative
    /// observation.
    pub fn last_informative_at(&self, market: MarketId, kind: ProbeKind) -> Option<SimTime> {
        self.stripe_for(market)
            .keys
            .get(&(market, kind))
            .and_then(|k| k.last_informative)
    }

    /// The health record of one region, if a breaker ever reported it.
    pub fn region_health(&self, region: Region) -> Option<RegionHealth> {
        match &self.view {
            ReadView::Live { store, .. } => store.region_health(region),
            ReadView::Snapshot(s) => s.region_health.get(&region).copied(),
        }
    }

    /// The store's durability-loss watermark, if its durable log is
    /// currently degraded (see [`DataStore::durability_lost`]). A
    /// snapshot reports the watermark captured at publication.
    pub fn durability_lost(&self) -> Option<SimTime> {
        match &self.view {
            ReadView::Live { store, .. } => store.durability_lost(),
            ReadView::Snapshot(s) => s.durability_lost,
        }
    }

    /// Regions currently marked degraded, in canonical region order.
    pub fn degraded_regions(&self) -> Vec<Region> {
        let collect = |iter: &mut dyn Iterator<Item = (Region, RegionHealth)>| {
            let mut out: Vec<Region> = iter.filter(|(_, h)| h.degraded).map(|(r, _)| r).collect();
            out.sort_unstable();
            out
        };
        match &self.view {
            ReadView::Live { store, .. } => {
                let health = store.region_health.read();
                collect(&mut health.iter().map(|(&r, &h)| (r, h)))
            }
            ReadView::Snapshot(s) => collect(&mut s.region_health.iter().map(|(&r, &h)| (r, h))),
        }
    }

    /// All revocation observations.
    pub fn revocations(&self) -> impl Iterator<Item = &RevocationRecord> + '_ {
        self.stripes().flat_map(|s| s.revocations.iter())
    }

    /// The revocation observations of one market, oldest first.
    pub fn revocations_of(&self, market: MarketId) -> impl Iterator<Item = &RevocationRecord> + '_ {
        let stripe = self.stripe_for(market);
        stripe
            .revocations_by_market
            .get(&market)
            .into_iter()
            .flatten()
            .map(move |&i| &stripe.revocations[i])
    }

    /// All intrinsic-bid measurements.
    pub fn intrinsic_bids(&self) -> impl Iterator<Item = &IntrinsicBidRecord> + '_ {
        self.stripes().flat_map(|s| s.intrinsic_bids.iter())
    }

    /// Markets that were probed at least once (a lifetime fact;
    /// compaction does not remove markets).
    pub fn probed_markets(&self) -> impl Iterator<Item = MarketId> + '_ {
        self.stripes()
            .flat_map(|s| s.probes_by_market.keys().copied())
    }

    /// Total money spent on probes.
    pub fn total_cost(&self) -> Price {
        match &self.view {
            ReadView::Live { store, .. } => store.total_cost(),
            ReadView::Snapshot(s) => Price::from_micros(s.total_cost_micros),
        }
    }

    /// Probes suppressed by budget or service limits.
    pub fn suppressed_probes(&self) -> u64 {
        match &self.view {
            ReadView::Live { store, .. } => store.suppressed_probes(),
            ReadView::Snapshot(s) => s.suppressed_probes,
        }
    }

    /// Number of probes recorded over the store's lifetime.
    pub fn len(&self) -> usize {
        match &self.view {
            ReadView::Live { store, .. } => store.len(),
            ReadView::Snapshot(s) => s.recorded_probes as usize,
        }
    }

    /// True when no probes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeTrigger;
    use cloud_sim::ids::{Az, Platform, Region};

    fn market(i: u8) -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, i),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(at: u64, m: MarketId, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::PriceSpike { ratio: 2.0 },
            outcome,
            spot_ratio: 2.0,
            bid: None,
            cost: Price::from_dollars(0.1),
        }
    }

    #[test]
    fn rejection_opens_interval_once() {
        let s = DataStore::new();
        assert!(s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity)));
        assert!(!s.record_probe(probe(20, market(0), ProbeOutcome::InsufficientCapacity)));
        let r = s.read();
        assert!(r.is_unavailable(market(0), ProbeKind::OnDemand));
        assert_eq!(r.intervals().count(), 1);
        assert_eq!(r.intervals_of(market(0), ProbeKind::OnDemand).count(), 1);
    }

    #[test]
    fn fulfilment_closes_interval() {
        let s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(310, market(0), ProbeOutcome::Fulfilled));
        let r = s.read();
        assert!(!r.is_unavailable(market(0), ProbeKind::OnDemand));
        let i = *r.intervals().next().unwrap();
        assert_eq!(i.end, Some(SimTime::from_secs(310)));
        assert_eq!(i.duration().unwrap().as_secs(), 300);
        assert_eq!(r.closed_interval_count(market(0), ProbeKind::OnDemand), 1);
    }

    #[test]
    fn kinds_tracked_independently() {
        let s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        let mut sp = probe(20, market(0), ProbeOutcome::CapacityNotAvailable);
        sp.kind = ProbeKind::Spot;
        assert!(s.record_probe(sp));
        let r = s.read();
        assert!(r.is_unavailable(market(0), ProbeKind::OnDemand));
        assert!(r.is_unavailable(market(0), ProbeKind::Spot));
        assert_eq!(r.intervals().count(), 2);
        assert_eq!(r.intervals_of(market(0), ProbeKind::OnDemand).count(), 1);
        assert_eq!(r.intervals_of(market(0), ProbeKind::Spot).count(), 1);
    }

    #[test]
    fn held_outcomes_do_not_close_intervals() {
        let s = DataStore::new();
        let mut sp = probe(10, market(0), ProbeOutcome::CapacityNotAvailable);
        sp.kind = ProbeKind::Spot;
        s.record_probe(sp);
        let mut ptl = probe(20, market(0), ProbeOutcome::PriceTooLow);
        ptl.kind = ProbeKind::Spot;
        s.record_probe(ptl);
        assert!(s.read().is_unavailable(market(0), ProbeKind::Spot));
    }

    #[test]
    fn cost_accumulates_and_indexes_work() {
        let s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::Fulfilled));
        s.record_probe(probe(20, market(1), ProbeOutcome::Fulfilled));
        s.record_probe(probe(30, market(0), ProbeOutcome::Fulfilled));
        assert_eq!(s.total_cost(), Price::from_dollars(0.3));
        let r = s.read();
        assert_eq!(r.probes_of(market(0)).count(), 2);
        assert_eq!(r.probes_of(market(1)).count(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn probe_stats_track_informative_and_rejections() {
        let s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::Fulfilled));
        s.record_probe(probe(20, market(0), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(30, market(0), ProbeOutcome::ApiLimited));
        let r = s.read();
        let st = r.probe_stats(market(0), ProbeKind::OnDemand);
        assert_eq!(st.informative, 2);
        assert_eq!(st.rejections, 1);
        assert_eq!(
            r.probe_stats(market(1), ProbeKind::OnDemand),
            ProbeStats::default()
        );
    }

    #[test]
    fn probes_between_is_a_time_range() {
        let s = DataStore::new();
        for t in [10u64, 20, 30, 40, 50] {
            s.record_probe(probe(t, market(0), ProbeOutcome::Fulfilled));
        }
        let r = s.read();
        let hits: Vec<u64> = r
            .probes_between(market(0), SimTime::from_secs(20), SimTime::from_secs(40))
            .map(|p| p.at.as_secs())
            .collect();
        assert_eq!(hits, vec![20, 30, 40]);
        assert_eq!(
            r.probes_between(market(1), SimTime::ZERO, SimTime::from_secs(100))
                .count(),
            0
        );
    }

    #[test]
    fn out_of_order_inserts_keep_indices_sorted() {
        let s = DataStore::new();
        for t in [50u64, 10, 30, 20, 40] {
            s.record_probe(probe(t, market(0), ProbeOutcome::InsufficientCapacity));
        }
        let r = s.read();
        let times: Vec<u64> = r.probes_of(market(0)).map(|p| p.at.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
        let rejections = r.rejection_times(market(0), ProbeKind::OnDemand);
        assert!(rejections.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rejections.len(), 5);
    }

    #[test]
    fn region_rejection_counters_accumulate() {
        let s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(20, market(1), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(30, market(0), ProbeOutcome::Fulfilled));
        assert_eq!(s.read().od_rejections_by_region()[&Region::UsEast1], 2);
    }

    #[test]
    fn shared_store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedStore>();
        let s = shared_store();
        s.record_spike(SpikeEvent {
            market: market(0),
            at: SimTime::ZERO,
            ratio: 1.5,
            probed: true,
        });
        assert_eq!(s.read().spikes().count(), 1);
        assert_eq!(s.read().spikes_at_or_above(1.0), 1);
        assert_eq!(s.read().spikes_at_or_above(2.0), 0);
    }

    #[test]
    fn concurrent_writers_do_not_lose_records() {
        let s = shared_store();
        std::thread::scope(|scope| {
            for w in 0..4u8 {
                let s = &s;
                scope.spawn(move || {
                    for t in 0..500u64 {
                        s.record_probe(probe(t, market(w), ProbeOutcome::Fulfilled));
                    }
                });
            }
        });
        assert_eq!(s.len(), 2000);
        let r = s.read();
        for w in 0..4u8 {
            assert_eq!(r.probes_of(market(w)).count(), 500);
            assert_eq!(
                r.probe_stats(market(w), ProbeKind::OnDemand).informative,
                500
            );
        }
    }

    #[test]
    fn epoch_summary_matches_interval_walk() {
        // One-hour epochs; an interval crossing three epochs plus an
        // open one: the summarized sweep equals the clipped walk.
        let s = DataStore::new();
        let m = market(0);
        s.record_probe(probe(1800, m, ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(9000, m, ProbeOutcome::Fulfilled)); // 7200 s closed
        s.record_probe(probe(20_000, m, ProbeOutcome::InsufficientCapacity)); // open
        let r = s.read();
        let q = |a: u64, b: u64| {
            r.unavailable_seconds_in(
                m,
                ProbeKind::OnDemand,
                SimTime::from_secs(a),
                SimTime::from_secs(b),
            )
        };
        assert_eq!(q(0, 30_000), 7200 + 10_000);
        assert_eq!(q(0, 9000), 7200);
        assert_eq!(q(3600, 7200), 3600); // one whole middle epoch
        assert_eq!(q(2000, 8000), 6000); // boundary epochs only
        assert_eq!(q(10_000, 15_000), 0);
        assert_eq!(q(25_000, 30_000), 5000); // open interval clipped to span
    }

    #[test]
    fn epoch_probe_counts_cover_span_buckets() {
        // Hourly epochs: probes at 600 s, 4000 s, 4100 s (one rejected).
        let s = DataStore::new();
        let m = market(0);
        s.record_probe(probe(600, m, ProbeOutcome::Fulfilled));
        s.record_probe(probe(4000, m, ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(4100, m, ProbeOutcome::ApiLimited)); // not informative
        let r = s.read();
        let counts = |a: u64, b: u64| {
            r.probe_counts_around(
                m,
                ProbeKind::OnDemand,
                SimTime::from_secs(a),
                SimTime::from_secs(b),
            )
        };
        assert_eq!(counts(0, 8000), (2, 1));
        // Boundary epochs are included whole: a span inside epoch 1
        // still sees that epoch's counts, never partial ones.
        assert_eq!(counts(3700, 3800), (1, 1));
        assert_eq!(counts(0, 3600), (1, 0));
        assert_eq!(counts(7200, 10_000), (0, 0));
        assert_eq!(
            r.probe_counts_around(market(1), ProbeKind::OnDemand, SimTime::ZERO, SimTime::MAX),
            (0, 0)
        );
    }

    #[test]
    fn compaction_preserves_summaries_and_frees_slabs() {
        let s = DataStore::new();
        let m = market(0);
        for t in 0..200u64 {
            let outcome = if t % 10 == 0 {
                ProbeOutcome::InsufficientCapacity
            } else {
                ProbeOutcome::Fulfilled
            };
            s.record_probe(probe(t * 100, m, outcome));
            s.record_spike(SpikeEvent {
                market: m,
                at: SimTime::from_secs(t * 100),
                ratio: 1.0 + (t % 5) as f64,
                probed: true,
            });
        }
        let horizon = SimTime::from_secs(15_000);
        let (stats_before, unavail_before, spikes_ge2, rejections) = {
            let r = s.read();
            (
                r.probe_stats(m, ProbeKind::OnDemand),
                r.unavailable_seconds_in(
                    m,
                    ProbeKind::OnDemand,
                    SimTime::ZERO,
                    SimTime::from_secs(20_000),
                ),
                r.spikes_at_or_above(2.0),
                r.rejection_times(m, ProbeKind::OnDemand).to_vec(),
            )
        };
        let before_records = s.resident_records();
        let dropped = s.compact(horizon);
        assert!(dropped.dropped_probes > 0 && dropped.dropped_spikes > 0);
        assert!(s.resident_records() < before_records);
        assert_eq!(s.len(), 200, "logical count survives compaction");
        let r = s.read();
        assert_eq!(r.probe_stats(m, ProbeKind::OnDemand), stats_before);
        assert_eq!(
            r.unavailable_seconds_in(
                m,
                ProbeKind::OnDemand,
                SimTime::ZERO,
                SimTime::from_secs(20_000)
            ),
            unavail_before
        );
        assert_eq!(r.spikes_at_or_above(2.0), spikes_ge2);
        assert_eq!(r.rejection_times(m, ProbeKind::OnDemand), &rejections[..]);
        assert!(r.probes().all(|p| p.at >= horizon));
        assert!(r.spikes().all(|sp| sp.at >= horizon));
        assert!(r.probed_markets().any(|pm| pm == m), "market stays known");
    }

    #[test]
    fn last_informative_tracks_max_not_last_write() {
        let s = DataStore::new();
        let m = market(0);
        assert_eq!(s.read().last_informative_at(m, ProbeKind::OnDemand), None);
        s.record_probe(probe(100, m, ProbeOutcome::Fulfilled));
        s.record_probe(probe(500, m, ProbeOutcome::InsufficientCapacity));
        // ApiLimited is not informative: it must not advance freshness.
        s.record_probe(probe(900, m, ProbeOutcome::ApiLimited));
        // An out-of-order arrival must not move freshness backwards.
        s.record_probe(probe(300, m, ProbeOutcome::Fulfilled));
        assert_eq!(
            s.read().last_informative_at(m, ProbeKind::OnDemand),
            Some(SimTime::from_secs(500))
        );
        assert_eq!(s.read().last_informative_at(m, ProbeKind::Spot), None);
    }

    #[test]
    fn region_health_episodes_accumulate() {
        let s = DataStore::new();
        let r = Region::ApSoutheast2;
        assert_eq!(s.region_health(r), None);
        s.mark_region_degraded(r, SimTime::from_secs(1000));
        // Re-marking while degraded is idempotent.
        s.mark_region_degraded(r, SimTime::from_secs(1500));
        {
            let read = s.read();
            assert_eq!(read.degraded_regions(), vec![r]);
            let h = read.region_health(r).unwrap();
            assert!(h.degraded);
            assert_eq!(h.trips, 1);
            assert_eq!(h.since, SimTime::from_secs(1000));
        }
        s.mark_region_recovered(r, SimTime::from_secs(4000));
        let h = s.region_health(r).unwrap();
        assert!(!h.degraded);
        assert_eq!(h.degraded_secs, 3000);
        // A second episode bumps trips and adds seconds.
        s.mark_region_degraded(r, SimTime::from_secs(5000));
        s.mark_region_recovered(r, SimTime::from_secs(5600));
        let h = s.region_health(r).unwrap();
        assert_eq!(h.trips, 2);
        assert_eq!(h.degraded_secs, 3600);
        assert!(s.read().degraded_regions().is_empty());
        // Recovering a never-degraded region is a no-op.
        s.mark_region_recovered(Region::EuWest1, SimTime::from_secs(1));
        assert_eq!(s.region_health(Region::EuWest1), None);
    }
}
