//! SpotLight's database: every probe, spike, unavailability interval,
//! revocation observation, and intrinsic-bid measurement.
//!
//! The prototype in the paper logged "all states and status changes
//! timestamps ... into database" through a dedicated database manager
//! (Chapter 4). Here the store is an indexed in-memory log; the analysis
//! (`crate::analysis`) and the query interface (`crate::query`) are pure
//! functions over it.
//!
//! # Index invariants
//!
//! The log itself (`probes`, `intervals`, `revocations`, …) is strictly
//! append-only; records are never reordered or removed. On top of it the
//! store maintains secondary indices so per-market queries never scan
//! the full log:
//!
//! * `probes_by_market` / `revocations_by_market` — per-market record
//!   indices, kept **sorted by timestamp**. Probes arrive in
//!   non-decreasing time order from the engine, so maintaining the sort
//!   is an O(1) append in the common case; a rare out-of-order insert
//!   (live mode's thread interleavings) costs a binary-search insertion.
//!   Sorted order is what turns time-range queries into binary searches
//!   ([`DataStore::probes_between`]).
//! * `intervals_by_key` — unavailability-interval indices per
//!   `(market, kind)`, in interval-open order (monotone, since
//!   intervals open at probe time).
//! * `rejection_times` — the timestamps of unavailable-outcome probes
//!   per `(market, kind)`, time-sorted; the correlation analyses binary
//!   search these.
//! * `probe_stats` — running informative/rejection counters per
//!   `(market, kind)`, so availability summaries are O(1) in the probe
//!   count.
//! * `open_intervals` — at most one open interval per `(market, kind)`,
//!   pointing into `intervals`.
//!
//! Every index refers to records by their position in the append-only
//! log, so an index entry is never invalidated.

use crate::probe::{ProbeKind, ProbeOutcome, ProbeRecord, UnavailabilityInterval};
use crate::sync::Mutex;
use cloud_sim::ids::{MarketId, Region};
use cloud_sim::price::Price;
use cloud_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A spike observation: a published price crossing SpotLight's radar.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeEvent {
    /// The market that spiked.
    pub market: MarketId,
    /// When the spike was observed.
    pub at: SimTime,
    /// Spot/on-demand price ratio.
    pub ratio: f64,
    /// Whether the policy issued a probe for it (sampling/cooldown/budget
    /// may suppress probes; unprobed spikes are excluded from
    /// conditional-probability trials).
    pub probed: bool,
}

/// One revocation-watch observation (the `Revocation` probing function).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevocationRecord {
    /// The watched market.
    pub market: MarketId,
    /// When the spot instance was acquired.
    pub acquired_at: SimTime,
    /// The bid it was acquired with.
    pub bid: Price,
    /// When the platform revoked it; `None` if it survived the hold.
    pub revoked_at: Option<SimTime>,
    /// When the hold ended (revocation or voluntary release).
    pub released_at: Option<SimTime>,
}

/// One intrinsic-bid measurement (the `BidSpread` probing function).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntrinsicBidRecord {
    /// The market measured.
    pub market: MarketId,
    /// When the search ran.
    pub at: SimTime,
    /// The published spot price at the time.
    pub published: Price,
    /// The lowest bid that actually obtained an instance.
    pub intrinsic: Price,
    /// Spot requests the search needed (the paper reports 2–3 average,
    /// 6 maximum).
    pub attempts: u32,
}

/// Running per-`(market, kind)` probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Informative probes (everything but `ApiLimited`).
    pub informative: u64,
    /// Probes with an unavailable outcome.
    pub rejections: u64,
}

/// The in-memory database.
#[derive(Debug, Default)]
pub struct DataStore {
    probes: Vec<ProbeRecord>,
    probes_by_market: HashMap<MarketId, Vec<usize>>,
    spikes: Vec<SpikeEvent>,
    intervals: Vec<UnavailabilityInterval>,
    intervals_by_key: HashMap<(MarketId, ProbeKind), Vec<usize>>,
    open_intervals: HashMap<(MarketId, ProbeKind), usize>,
    rejection_times: HashMap<(MarketId, ProbeKind), Vec<SimTime>>,
    probe_stats: HashMap<(MarketId, ProbeKind), ProbeStats>,
    od_rejections_by_region: HashMap<Region, u64>,
    revocations: Vec<RevocationRecord>,
    revocations_by_market: HashMap<MarketId, Vec<usize>>,
    intrinsic_bids: Vec<IntrinsicBidRecord>,
    total_cost: Price,
    suppressed_probes: u64,
}

/// A shareable handle to the store (engine agents and live-mode threads
/// both write through this).
pub type SharedStore = Arc<Mutex<DataStore>>;

/// Creates an empty shared store.
pub fn shared_store() -> SharedStore {
    Arc::new(Mutex::new(DataStore::default()))
}

/// Inserts `item` into a vector kept sorted by `key_of`. Appends in
/// O(1) when the new item's key is the latest (the engine's monotone
/// case); binary-search inserts otherwise.
fn insert_sorted_by<T: Copy, K: Ord>(sorted: &mut Vec<T>, item: T, key_of: impl Fn(&T) -> K) {
    match sorted.last() {
        Some(last) if key_of(last) > key_of(&item) => {
            let pos = sorted.partition_point(|x| key_of(x) <= key_of(&item));
            sorted.insert(pos, item);
        }
        _ => sorted.push(item),
    }
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DataStore::default()
    }

    /// Records a probe, maintaining unavailability intervals: a rejected
    /// probe opens an interval for its `(market, kind)` (if none is
    /// open); a fulfilled probe closes it. Returns `true` when this
    /// probe *opened* a new interval — i.e. it is an initial detection.
    pub fn record_probe(&mut self, probe: ProbeRecord) -> bool {
        let idx = self.probes.len();
        self.probes.push(probe);
        let by_market = self.probes_by_market.entry(probe.market).or_default();
        let probes = &self.probes;
        insert_sorted_by(by_market, idx, |&i| probes[i].at);
        self.total_cost += probe.cost;

        let key = (probe.market, probe.kind);
        if probe.outcome.is_informative() {
            let stats = self.probe_stats.entry(key).or_default();
            stats.informative += 1;
            if probe.outcome.is_unavailable() {
                stats.rejections += 1;
            }
        }

        if probe.outcome.is_unavailable() {
            insert_sorted_by(
                self.rejection_times.entry(key).or_default(),
                probe.at,
                |&t| t,
            );
            if probe.kind == ProbeKind::OnDemand {
                *self
                    .od_rejections_by_region
                    .entry(probe.market.region())
                    .or_insert(0) += 1;
            }
            if self.open_intervals.contains_key(&key) {
                return false;
            }
            let interval_idx = self.intervals.len();
            self.open_intervals.insert(key, interval_idx);
            self.intervals_by_key
                .entry(key)
                .or_default()
                .push(interval_idx);
            self.intervals.push(UnavailabilityInterval {
                market: probe.market,
                kind: probe.kind,
                start: probe.at,
                end: None,
                detect_ratio: probe.spot_ratio,
                detected_via_related: probe.trigger.is_related(),
            });
            true
        } else {
            if probe.outcome == ProbeOutcome::Fulfilled {
                if let Some(idx) = self.open_intervals.remove(&key) {
                    self.intervals[idx].end = Some(probe.at);
                }
            }
            false
        }
    }

    /// Records a spike observation.
    pub fn record_spike(&mut self, spike: SpikeEvent) {
        self.spikes.push(spike);
    }

    /// Records that the policy wanted to probe but was suppressed by
    /// budget or service limits.
    pub fn record_suppressed(&mut self) {
        self.suppressed_probes += 1;
    }

    /// Records a revocation-watch observation.
    pub fn record_revocation(&mut self, rec: RevocationRecord) {
        let idx = self.revocations.len();
        self.revocations.push(rec);
        let by_market = self.revocations_by_market.entry(rec.market).or_default();
        let revocations = &self.revocations;
        insert_sorted_by(by_market, idx, |&i| revocations[i].acquired_at);
    }

    /// Records an intrinsic-bid measurement.
    pub fn record_intrinsic_bid(&mut self, rec: IntrinsicBidRecord) {
        self.intrinsic_bids.push(rec);
    }

    /// All probes, oldest first.
    pub fn probes(&self) -> &[ProbeRecord] {
        &self.probes
    }

    /// The probes of one market, oldest first.
    pub fn probes_of(&self, market: MarketId) -> impl Iterator<Item = &ProbeRecord> + '_ {
        self.probes_by_market
            .get(&market)
            .into_iter()
            .flatten()
            .map(move |&i| &self.probes[i])
    }

    /// The probes of one market inside `[from, to]`, oldest first — a
    /// binary search over the time-sorted per-market index, O(log n +
    /// matches) rather than O(market probes).
    pub fn probes_between(
        &self,
        market: MarketId,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &ProbeRecord> + '_ {
        let index: &[usize] = self
            .probes_by_market
            .get(&market)
            .map_or(&[], |v| v.as_slice());
        let lo = index.partition_point(|&i| self.probes[i].at < from);
        index[lo..]
            .iter()
            .map(move |&i| &self.probes[i])
            .take_while(move |p| p.at <= to)
    }

    /// All spike observations.
    pub fn spikes(&self) -> &[SpikeEvent] {
        &self.spikes
    }

    /// All unavailability intervals (open ones have `end == None`).
    pub fn intervals(&self) -> &[UnavailabilityInterval] {
        &self.intervals
    }

    /// The unavailability intervals of one `(market, kind)`, in open
    /// order.
    pub fn intervals_of(
        &self,
        market: MarketId,
        kind: ProbeKind,
    ) -> impl Iterator<Item = &UnavailabilityInterval> + '_ {
        self.intervals_by_key
            .get(&(market, kind))
            .into_iter()
            .flatten()
            .map(move |&i| &self.intervals[i])
    }

    /// The time-sorted timestamps of unavailable-outcome probes of one
    /// `(market, kind)` — the input the correlation analyses binary
    /// search.
    ///
    /// "Unavailable" is [`crate::probe::ProbeOutcome::is_unavailable`]:
    /// for on-demand probes the engine only ever produces
    /// `InsufficientCapacity`, but a caller recording an on-demand
    /// probe with `CapacityNotAvailable` would be counted here too.
    pub fn rejection_times(&self, market: MarketId, kind: ProbeKind) -> &[SimTime] {
        self.rejection_times
            .get(&(market, kind))
            .map_or(&[], |v| v.as_slice())
    }

    /// Iterates every `(market, kind)` that has recorded rejections,
    /// with its time-sorted rejection timestamps.
    pub fn rejection_entries(
        &self,
    ) -> impl Iterator<Item = ((MarketId, ProbeKind), &[SimTime])> + '_ {
        self.rejection_times
            .iter()
            .map(|(&key, times)| (key, times.as_slice()))
    }

    /// Running informative/rejection counters of one `(market, kind)`.
    pub fn probe_stats(&self, market: MarketId, kind: ProbeKind) -> ProbeStats {
        self.probe_stats
            .get(&(market, kind))
            .copied()
            .unwrap_or_default()
    }

    /// On-demand rejection counts per region, maintained at record
    /// time. Counts any unavailable outcome on an on-demand probe
    /// (from the engine that is exactly `InsufficientCapacity`).
    pub fn od_rejections_by_region(&self) -> &HashMap<Region, u64> {
        &self.od_rejections_by_region
    }

    /// Whether `(market, kind)` has an open unavailability interval.
    pub fn is_unavailable(&self, market: MarketId, kind: ProbeKind) -> bool {
        self.open_intervals.contains_key(&(market, kind))
    }

    /// All revocation observations.
    pub fn revocations(&self) -> &[RevocationRecord] {
        &self.revocations
    }

    /// The revocation observations of one market, oldest first.
    pub fn revocations_of(&self, market: MarketId) -> impl Iterator<Item = &RevocationRecord> + '_ {
        self.revocations_by_market
            .get(&market)
            .into_iter()
            .flatten()
            .map(move |&i| &self.revocations[i])
    }

    /// All intrinsic-bid measurements.
    pub fn intrinsic_bids(&self) -> &[IntrinsicBidRecord] {
        &self.intrinsic_bids
    }

    /// Markets that were probed at least once.
    pub fn probed_markets(&self) -> impl Iterator<Item = MarketId> + '_ {
        self.probes_by_market.keys().copied()
    }

    /// Total money spent on probes.
    pub fn total_cost(&self) -> Price {
        self.total_cost
    }

    /// Probes suppressed by budget or service limits.
    pub fn suppressed_probes(&self) -> u64 {
        self.suppressed_probes
    }

    /// Number of probes recorded.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when no probes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeTrigger;
    use cloud_sim::ids::{Az, Platform, Region};

    fn market(i: u8) -> MarketId {
        MarketId {
            az: Az::new(Region::UsEast1, i),
            instance_type: "c3.large".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    fn probe(at: u64, m: MarketId, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            at: SimTime::from_secs(at),
            market: m,
            kind: ProbeKind::OnDemand,
            trigger: ProbeTrigger::PriceSpike { ratio: 2.0 },
            outcome,
            spot_ratio: 2.0,
            bid: None,
            cost: Price::from_dollars(0.1),
        }
    }

    #[test]
    fn rejection_opens_interval_once() {
        let mut s = DataStore::new();
        assert!(s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity)));
        assert!(!s.record_probe(probe(20, market(0), ProbeOutcome::InsufficientCapacity)));
        assert!(s.is_unavailable(market(0), ProbeKind::OnDemand));
        assert_eq!(s.intervals().len(), 1);
        assert_eq!(s.intervals_of(market(0), ProbeKind::OnDemand).count(), 1);
    }

    #[test]
    fn fulfilment_closes_interval() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(310, market(0), ProbeOutcome::Fulfilled));
        assert!(!s.is_unavailable(market(0), ProbeKind::OnDemand));
        let i = s.intervals()[0];
        assert_eq!(i.end, Some(SimTime::from_secs(310)));
        assert_eq!(i.duration().unwrap().as_secs(), 300);
    }

    #[test]
    fn kinds_tracked_independently() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        let mut sp = probe(20, market(0), ProbeOutcome::CapacityNotAvailable);
        sp.kind = ProbeKind::Spot;
        assert!(s.record_probe(sp));
        assert!(s.is_unavailable(market(0), ProbeKind::OnDemand));
        assert!(s.is_unavailable(market(0), ProbeKind::Spot));
        assert_eq!(s.intervals().len(), 2);
        assert_eq!(s.intervals_of(market(0), ProbeKind::OnDemand).count(), 1);
        assert_eq!(s.intervals_of(market(0), ProbeKind::Spot).count(), 1);
    }

    #[test]
    fn held_outcomes_do_not_close_intervals() {
        let mut s = DataStore::new();
        let mut sp = probe(10, market(0), ProbeOutcome::CapacityNotAvailable);
        sp.kind = ProbeKind::Spot;
        s.record_probe(sp);
        let mut ptl = probe(20, market(0), ProbeOutcome::PriceTooLow);
        ptl.kind = ProbeKind::Spot;
        s.record_probe(ptl);
        assert!(s.is_unavailable(market(0), ProbeKind::Spot));
    }

    #[test]
    fn cost_accumulates_and_indexes_work() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::Fulfilled));
        s.record_probe(probe(20, market(1), ProbeOutcome::Fulfilled));
        s.record_probe(probe(30, market(0), ProbeOutcome::Fulfilled));
        assert_eq!(s.total_cost(), Price::from_dollars(0.3));
        assert_eq!(s.probes_of(market(0)).count(), 2);
        assert_eq!(s.probes_of(market(1)).count(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn probe_stats_track_informative_and_rejections() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::Fulfilled));
        s.record_probe(probe(20, market(0), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(30, market(0), ProbeOutcome::ApiLimited));
        let st = s.probe_stats(market(0), ProbeKind::OnDemand);
        assert_eq!(st.informative, 2);
        assert_eq!(st.rejections, 1);
        assert_eq!(
            s.probe_stats(market(1), ProbeKind::OnDemand),
            ProbeStats::default()
        );
    }

    #[test]
    fn probes_between_is_a_time_range() {
        let mut s = DataStore::new();
        for t in [10u64, 20, 30, 40, 50] {
            s.record_probe(probe(t, market(0), ProbeOutcome::Fulfilled));
        }
        let hits: Vec<u64> = s
            .probes_between(market(0), SimTime::from_secs(20), SimTime::from_secs(40))
            .map(|p| p.at.as_secs())
            .collect();
        assert_eq!(hits, vec![20, 30, 40]);
        assert_eq!(
            s.probes_between(market(1), SimTime::ZERO, SimTime::from_secs(100))
                .count(),
            0
        );
    }

    #[test]
    fn out_of_order_inserts_keep_indices_sorted() {
        let mut s = DataStore::new();
        for t in [50u64, 10, 30, 20, 40] {
            s.record_probe(probe(t, market(0), ProbeOutcome::InsufficientCapacity));
        }
        let times: Vec<u64> = s.probes_of(market(0)).map(|p| p.at.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
        let rejections = s.rejection_times(market(0), ProbeKind::OnDemand);
        assert!(rejections.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rejections.len(), 5);
    }

    #[test]
    fn region_rejection_counters_accumulate() {
        let mut s = DataStore::new();
        s.record_probe(probe(10, market(0), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(20, market(1), ProbeOutcome::InsufficientCapacity));
        s.record_probe(probe(30, market(0), ProbeOutcome::Fulfilled));
        assert_eq!(s.od_rejections_by_region()[&Region::UsEast1], 2);
    }

    #[test]
    fn shared_store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedStore>();
        let s = shared_store();
        s.lock().record_spike(SpikeEvent {
            market: market(0),
            at: SimTime::ZERO,
            ratio: 1.5,
            probed: true,
        });
        assert_eq!(s.lock().spikes().len(), 1);
    }
}
