//! Minimal locking primitives for the live deployment.
//!
//! The prototype's live mode originally leaned on `parking_lot`; the
//! container builds offline, so this module wraps [`std::sync::Mutex`]
//! and [`std::sync::RwLock`] with the same ergonomic, non-poisoning
//! APIs (a poisoned lock just hands back the inner guard — every writer
//! here leaves the store and cloud in a consistent state between
//! mutations).
//!
//! The [`RwLock`] exists for the striped [`crate::store::DataStore`]:
//! its read-mostly query paths must not serialize against each other,
//! only against writers of the same stripe.

use std::sync::MutexGuard;
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` never return a
/// `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = Arc::new(RwLock::new(7u64));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (7, 7));
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        let l = Arc::try_unwrap(l).unwrap();
        assert_eq!(l.into_inner(), 8);
    }
}
