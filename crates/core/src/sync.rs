//! Minimal locking primitives for the live deployment.
//!
//! The prototype's live mode originally leaned on `parking_lot`; the
//! container builds offline, so this module wraps [`std::sync::Mutex`]
//! with the same ergonomic, non-poisoning `lock()` API (a poisoned lock
//! just hands back the inner guard — every writer here leaves the store
//! and cloud in a consistent state between mutations).

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
