//! # spotlight-derivative
//!
//! The two derivative-cloud case studies of the SpotLight paper
//! (Chapter 6), replayed over SpotLight's measured data:
//!
//! * [`spotcheck`] — SpotCheck, a derivative IaaS that live-migrates
//!   nested VMs from revoked spot servers to on-demand servers
//!   (Figure 6.1: its availability collapses from four nines to 72–92%
//!   because on-demand servers are least available exactly when spot
//!   prices spike; a SpotLight-informed uncorrelated fallback restores
//!   it);
//! * [`spoton`] — SpotOn, a batch service with checkpoint/replication
//!   fault tolerance and the Equation 6.1 expected-cost market selection
//!   (Figure 6.2: running times inflate 15–72% for the same reason).
//!
//! Both consume the measured artifacts the information service
//! produces: a market's published price trace ([`series::PriceSeries`])
//! and its probe-measured on-demand unavailability intervals
//! ([`series::AvailabilityTimeline`]).
//!
//! ## Example
//!
//! ```
//! use cloud_sim::price::Price;
//! use cloud_sim::time::{SimDuration, SimTime};
//! use cloud_sim::trace::PricePoint;
//! use spotlight_derivative::series::{AvailabilityTimeline, PriceSeries};
//! use spotlight_derivative::spotcheck::{replay, SpotCheckConfig};
//!
//! let prices = PriceSeries::new(vec![
//!     PricePoint { at: SimTime::ZERO, price: Price::from_dollars(0.1) },
//!     PricePoint { at: SimTime::from_secs(3600), price: Price::from_dollars(0.6) },
//!     PricePoint { at: SimTime::from_secs(7200), price: Price::from_dollars(0.1) },
//! ]);
//! let report = replay(
//!     &prices,
//!     Price::from_dollars(0.5),
//!     &AvailabilityTimeline::default(),
//!     &SpotCheckConfig::default(),
//!     SimTime::ZERO,
//!     SimTime::from_secs(86_400),
//! );
//! assert_eq!(report.revocations, 1);
//! assert!(report.availability > 0.9999);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod series;
pub mod spotcheck;
pub mod spoton;

pub use series::{AvailabilityTimeline, PriceSeries};
