//! Step-function views over recorded data: price series and
//! availability timelines.
//!
//! Both case studies replay *measured* data — a market's published price
//! history and the on-demand unavailability intervals SpotLight
//! collected — so the inputs here are exactly what
//! [`spotlight_core::store::DataStore`] and the simulator's trace store
//! produce.

use cloud_sim::price::Price;
use cloud_sim::time::SimTime;
use cloud_sim::trace::PricePoint;
use serde::{Deserialize, Serialize};

/// A right-continuous step function of price over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceSeries {
    points: Vec<PricePoint>,
}

impl PriceSeries {
    /// Wraps a recorded history (must be time-sorted, as the trace store
    /// guarantees).
    ///
    /// # Panics
    ///
    /// Panics if the points are not sorted by time.
    pub fn new(points: Vec<PricePoint>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].at <= w[1].at),
            "price history must be time-sorted"
        );
        PriceSeries { points }
    }

    /// True when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded points.
    pub fn points(&self) -> &[PricePoint] {
        &self.points
    }

    /// First recorded timestamp.
    pub fn start(&self) -> Option<SimTime> {
        self.points.first().map(|p| p.at)
    }

    /// Last recorded timestamp.
    pub fn end(&self) -> Option<SimTime> {
        self.points.last().map(|p| p.at)
    }

    /// The price in force at `t` (the last change at or before `t`).
    pub fn at(&self, t: SimTime) -> Option<Price> {
        let i = self.points.partition_point(|p| p.at <= t);
        i.checked_sub(1).map(|i| self.points[i].price)
    }

    /// The first time at or after `t` where the price rises strictly
    /// above `threshold`; `None` if it never does (within the record).
    pub fn next_above(&self, t: SimTime, threshold: Price) -> Option<SimTime> {
        if self.at(t).is_some_and(|p| p > threshold) {
            return Some(t);
        }
        let i = self.points.partition_point(|p| p.at <= t);
        self.points[i..]
            .iter()
            .find(|p| p.price > threshold)
            .map(|p| p.at)
    }

    /// The first time at or after `t` where the price is at or below
    /// `threshold`; `None` if it never is (within the record).
    pub fn next_at_or_below(&self, t: SimTime, threshold: Price) -> Option<SimTime> {
        if self.at(t).is_some_and(|p| p <= threshold) {
            return Some(t);
        }
        let i = self.points.partition_point(|p| p.at <= t);
        self.points[i..]
            .iter()
            .find(|p| p.price <= threshold)
            .map(|p| p.at)
    }

    /// Converts to `(seconds, dollars)` pairs for the analysis helpers.
    pub fn to_dollar_points(&self) -> Vec<(u64, f64)> {
        self.points
            .iter()
            .map(|p| (p.at.as_secs(), p.price.as_dollars()))
            .collect()
    }
}

/// A timeline of unavailability intervals (closed-open, time-sorted,
/// non-overlapping after normalization).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AvailabilityTimeline {
    /// Sorted, merged `(start, end)` unavailability intervals in seconds.
    intervals: Vec<(u64, u64)>,
}

impl AvailabilityTimeline {
    /// Builds a timeline from raw `(start, end)` intervals; open-ended
    /// intervals should be clamped by the caller to the observation end.
    pub fn from_intervals(mut raw: Vec<(SimTime, SimTime)>) -> Self {
        raw.sort_by_key(|&(s, _)| s);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            let (s, e) = (s.as_secs(), e.as_secs());
            if e <= s {
                continue;
            }
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        AvailabilityTimeline { intervals: merged }
    }

    /// Whether the resource is unavailable at `t`.
    pub fn unavailable_at(&self, t: SimTime) -> bool {
        let t = t.as_secs();
        let i = self.intervals.partition_point(|&(s, _)| s <= t);
        i.checked_sub(1).is_some_and(|i| self.intervals[i].1 > t)
    }

    /// The first time at or after `t` when the resource is available.
    pub fn next_available(&self, t: SimTime) -> SimTime {
        let secs = t.as_secs();
        let i = self.intervals.partition_point(|&(s, _)| s <= secs);
        match i.checked_sub(1) {
            Some(i) if self.intervals[i].1 > secs => SimTime::from_secs(self.intervals[i].1),
            _ => t,
        }
    }

    /// Total unavailable seconds within `[from, to)`.
    pub fn unavailable_secs(&self, from: SimTime, to: SimTime) -> u64 {
        let (from, to) = (from.as_secs(), to.as_secs());
        self.intervals
            .iter()
            .map(|&(s, e)| e.min(to).saturating_sub(s.max(from)))
            .sum()
    }

    /// The merged intervals.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, f64)]) -> PriceSeries {
        PriceSeries::new(
            points
                .iter()
                .map(|&(t, d)| PricePoint {
                    at: SimTime::from_secs(t),
                    price: Price::from_dollars(d),
                })
                .collect(),
        )
    }

    #[test]
    fn price_lookup_is_right_continuous() {
        let s = series(&[(0, 0.1), (100, 0.5), (200, 0.2)]);
        assert_eq!(s.at(SimTime::from_secs(0)), Some(Price::from_dollars(0.1)));
        assert_eq!(s.at(SimTime::from_secs(99)), Some(Price::from_dollars(0.1)));
        assert_eq!(
            s.at(SimTime::from_secs(100)),
            Some(Price::from_dollars(0.5))
        );
        assert_eq!(
            s.at(SimTime::from_secs(500)),
            Some(Price::from_dollars(0.2))
        );
    }

    #[test]
    fn crossings() {
        let s = series(&[(0, 0.1), (100, 0.5), (200, 0.2), (300, 0.7)]);
        let th = Price::from_dollars(0.4);
        assert_eq!(
            s.next_above(SimTime::ZERO, th),
            Some(SimTime::from_secs(100))
        );
        assert_eq!(
            s.next_above(SimTime::from_secs(150), th),
            Some(SimTime::from_secs(150)),
            "already above"
        );
        assert_eq!(
            s.next_above(SimTime::from_secs(201), th),
            Some(SimTime::from_secs(300))
        );
        assert_eq!(
            s.next_at_or_below(SimTime::from_secs(100), th),
            Some(SimTime::from_secs(200))
        );
        assert_eq!(
            s.next_above(SimTime::from_secs(301), Price::from_dollars(1.0)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_history_panics() {
        let _ = series(&[(100, 0.1), (0, 0.2)]);
    }

    #[test]
    fn timeline_merges_overlaps() {
        let tl = AvailabilityTimeline::from_intervals(vec![
            (SimTime::from_secs(100), SimTime::from_secs(200)),
            (SimTime::from_secs(150), SimTime::from_secs(300)),
            (SimTime::from_secs(500), SimTime::from_secs(600)),
            (SimTime::from_secs(50), SimTime::from_secs(40)), // degenerate
        ]);
        assert_eq!(tl.intervals(), &[(100, 300), (500, 600)]);
        assert!(tl.unavailable_at(SimTime::from_secs(250)));
        assert!(!tl.unavailable_at(SimTime::from_secs(300)));
        assert!(!tl.unavailable_at(SimTime::from_secs(400)));
        assert_eq!(
            tl.next_available(SimTime::from_secs(250)),
            SimTime::from_secs(300)
        );
        assert_eq!(
            tl.next_available(SimTime::from_secs(400)),
            SimTime::from_secs(400)
        );
        assert_eq!(
            tl.unavailable_secs(SimTime::ZERO, SimTime::from_secs(1000)),
            300
        );
        assert_eq!(
            tl.unavailable_secs(SimTime::from_secs(200), SimTime::from_secs(550)),
            150
        );
    }
}
