//! SpotCheck (§6.1): a derivative IaaS cloud that runs nested VMs on
//! spot servers and live-migrates them to on-demand servers on
//! revocation.
//!
//! SpotCheck's availability hinges on an assumption the paper disproves:
//! that on-demand servers are always obtainable as a fallback. Spot
//! servers are revoked exactly when the spot price spikes above the
//! on-demand price — which is when the same market's on-demand servers
//! are *least* likely to be available. Replaying a market's measured
//! price trace against its measured on-demand unavailability timeline
//! quantifies the damage (the paper's Figure 6.1: 72–92% instead of four
//! nines) and shows SpotLight's fix: fall back to an *uncorrelated*
//! market instead.

use crate::series::{AvailabilityTimeline, PriceSeries};
use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// SpotCheck configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotCheckConfig {
    /// Bid as a multiple of the on-demand price (SpotCheck bids the
    /// on-demand price: revocation == price exceeding it).
    pub bid_ratio: f64,
    /// Pause to copy the final memory state during a migration — the
    /// only downtime SpotCheck expects (bounded-time migration).
    pub migration_pause: SimDuration,
    /// How often a VM waiting for capacity re-checks availability.
    pub retry_interval: SimDuration,
}

impl Default for SpotCheckConfig {
    fn default() -> Self {
        SpotCheckConfig {
            bid_ratio: 1.0,
            migration_pause: SimDuration::from_secs(2),
            retry_interval: SimDuration::from_secs(300),
        }
    }
}

/// How SpotCheck chooses its on-demand fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackPolicy {
    /// The paper's baseline: fall back to the on-demand servers of the
    /// *same* market (whose availability is correlated with the
    /// revocation).
    SameMarket,
    /// SpotLight-informed: fall back to an uncorrelated market that the
    /// information service reports as available (its measured
    /// unavailability enters through the second timeline).
    SpotLightInformed,
}

/// Result of replaying a SpotCheck VM over a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotCheckReport {
    /// Fraction of time the VM was up.
    pub availability: f64,
    /// Spot revocations experienced.
    pub revocations: u64,
    /// Migrations that found the fallback immediately available.
    pub clean_migrations: u64,
    /// Migrations stalled by on-demand unavailability.
    pub stalled_migrations: u64,
    /// Total downtime.
    pub downtime: SimDuration,
    /// Span replayed.
    pub span: SimDuration,
}

/// Replays one SpotCheck VM over `[start, end)`.
///
/// * `prices` — the market's published spot price trace;
/// * `od_price` — the market's on-demand price (the bid reference);
/// * `fallback_od` — the measured on-demand unavailability timeline of
///   the *fallback* market (same market for the baseline, an
///   uncorrelated one for the SpotLight policy);
/// * `config` — timing parameters.
///
/// The VM runs on spot while the spot price is at or below the bid.
/// When the price rises above the bid the instance is revoked; SpotCheck
/// migrates to the fallback's on-demand servers, pausing for
/// `migration_pause` when capacity is there and stalling (full downtime)
/// until capacity appears otherwise. It moves back to spot once the spot
/// price falls back to the bid.
pub fn replay(
    prices: &PriceSeries,
    od_price: Price,
    fallback_od: &AvailabilityTimeline,
    config: &SpotCheckConfig,
    start: SimTime,
    end: SimTime,
) -> SpotCheckReport {
    assert!(end > start, "replay span must be non-empty");
    let bid = od_price.scale(config.bid_ratio);
    let mut t = start;
    let mut downtime = SimDuration::ZERO;
    let mut revocations = 0;
    let mut clean = 0;
    let mut stalled = 0;

    while t < end {
        // Running on spot: find the next revocation.
        let Some(revoked_at) = prices.next_above(t, bid) else {
            break; // no further revocation in the record
        };
        if revoked_at >= end {
            break;
        }
        revocations += 1;

        // Migrate to the fallback's on-demand capacity.
        let mut cursor = revoked_at;
        if fallback_od.unavailable_at(cursor) {
            stalled += 1;
            // Stall until on-demand capacity appears (checking every
            // retry interval) or the spot price falls back.
            let od_ready = fallback_od.next_available(cursor);
            let od_ready = ceil_to_interval(cursor, od_ready, config.retry_interval);
            let spot_back = prices.next_at_or_below(cursor, bid).unwrap_or(SimTime::MAX);
            let back_up = od_ready.min(spot_back).min(end);
            downtime += back_up.saturating_since(cursor);
            cursor = back_up;
        } else {
            clean += 1;
            let pause_end = (cursor + config.migration_pause).min(end);
            downtime += pause_end.saturating_since(cursor);
            cursor = pause_end;
        }

        // Now running on on-demand; return to spot when the price falls
        // back to the bid.
        let return_at = prices.next_at_or_below(cursor, bid).unwrap_or(end);
        t = return_at.max(cursor);
        if t <= revoked_at {
            // Guard against pathological zero-width steps.
            t = revoked_at + config.retry_interval;
        }
    }

    let span = end - start;
    let downtime = downtime.min(span);
    SpotCheckReport {
        availability: 1.0 - downtime.as_secs() as f64 / span.as_secs() as f64,
        revocations,
        clean_migrations: clean,
        stalled_migrations: stalled,
        downtime,
        span,
    }
}

/// Rounds `target` up so the stall ends on a retry-interval boundary
/// after `from` (a VM only notices recovery when it re-checks).
fn ceil_to_interval(from: SimTime, target: SimTime, interval: SimDuration) -> SimTime {
    if target <= from {
        return from;
    }
    let gap = target.saturating_since(from).as_secs();
    let step = interval.as_secs().max(1);
    from + SimDuration::from_secs(gap.div_ceil(step) * step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::trace::PricePoint;

    fn series(points: &[(u64, f64)]) -> PriceSeries {
        PriceSeries::new(
            points
                .iter()
                .map(|&(t, d)| PricePoint {
                    at: SimTime::from_secs(t),
                    price: Price::from_dollars(d),
                })
                .collect(),
        )
    }

    const OD: f64 = 1.0;
    const HOUR: u64 = 3600;

    #[test]
    fn no_revocations_means_full_availability() {
        let prices = series(&[(0, 0.2)]);
        let report = replay(
            &prices,
            Price::from_dollars(OD),
            &AvailabilityTimeline::default(),
            &SpotCheckConfig::default(),
            SimTime::ZERO,
            SimTime::from_secs(24 * HOUR),
        );
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.revocations, 0);
    }

    #[test]
    fn clean_migration_costs_only_the_pause() {
        // Price above od during [1h, 2h): one revocation, fallback free.
        let prices = series(&[(0, 0.2), (HOUR, 1.5), (2 * HOUR, 0.2)]);
        let report = replay(
            &prices,
            Price::from_dollars(OD),
            &AvailabilityTimeline::default(),
            &SpotCheckConfig::default(),
            SimTime::ZERO,
            SimTime::from_secs(24 * HOUR),
        );
        assert_eq!(report.revocations, 1);
        assert_eq!(report.clean_migrations, 1);
        assert_eq!(report.downtime, SimDuration::from_secs(2));
        assert!(report.availability > 0.99997);
    }

    #[test]
    fn stalled_migration_counts_downtime() {
        // Revocation at 1h; on-demand unavailable 1h..2h; spot recovers
        // at 3h — the VM is down from 1h until od recovers at 2h.
        let prices = series(&[(0, 0.2), (HOUR, 1.5), (3 * HOUR, 0.2)]);
        let od_down = AvailabilityTimeline::from_intervals(vec![(
            SimTime::from_secs(HOUR),
            SimTime::from_secs(2 * HOUR),
        )]);
        let report = replay(
            &prices,
            Price::from_dollars(OD),
            &od_down,
            &SpotCheckConfig::default(),
            SimTime::ZERO,
            SimTime::from_secs(24 * HOUR),
        );
        assert_eq!(report.revocations, 1);
        assert_eq!(report.stalled_migrations, 1);
        assert_eq!(report.downtime, SimDuration::hours(1));
        assert!((report.availability - (1.0 - 1.0 / 24.0)).abs() < 1e-6);
    }

    #[test]
    fn stall_ends_early_if_spot_recovers_first() {
        // od down for 10h but spot price falls back after 30 min: the VM
        // resumes on spot.
        let prices = series(&[(0, 0.2), (HOUR, 1.5), (HOUR + 1800, 0.2)]);
        let od_down = AvailabilityTimeline::from_intervals(vec![(
            SimTime::from_secs(HOUR),
            SimTime::from_secs(11 * HOUR),
        )]);
        let report = replay(
            &prices,
            Price::from_dollars(OD),
            &od_down,
            &SpotCheckConfig::default(),
            SimTime::ZERO,
            SimTime::from_secs(24 * HOUR),
        );
        assert_eq!(report.downtime, SimDuration::from_secs(1800));
    }

    #[test]
    fn informed_fallback_beats_naive_on_correlated_outages() {
        // Two revocations, both correlated with same-market od outages.
        let prices = series(&[
            (0, 0.2),
            (HOUR, 2.0),
            (2 * HOUR, 0.2),
            (10 * HOUR, 3.0),
            (11 * HOUR, 0.2),
        ]);
        let same_market_down = AvailabilityTimeline::from_intervals(vec![
            (SimTime::from_secs(HOUR), SimTime::from_secs(2 * HOUR)),
            (SimTime::from_secs(10 * HOUR), SimTime::from_secs(11 * HOUR)),
        ]);
        let uncorrelated = AvailabilityTimeline::default();
        let cfg = SpotCheckConfig::default();
        let end = SimTime::from_secs(24 * HOUR);
        let naive = replay(
            &prices,
            Price::from_dollars(OD),
            &same_market_down,
            &cfg,
            SimTime::ZERO,
            end,
        );
        let informed = replay(
            &prices,
            Price::from_dollars(OD),
            &uncorrelated,
            &cfg,
            SimTime::ZERO,
            end,
        );
        assert!(naive.availability < 0.95);
        assert!(informed.availability > 0.9999);
        assert_eq!(naive.stalled_migrations, 2);
        assert_eq!(informed.stalled_migrations, 0);
    }
}
