//! SpotOn (§6.2): a batch computing service that runs jobs on spot
//! servers with checkpointing (or replication) fault tolerance, falling
//! back to on-demand servers after revocations.
//!
//! SpotOn picks the market minimizing the expected cost of Equation 6.1
//! — but, like SpotCheck, it implicitly assumes the fallback on-demand
//! server is always obtainable. Replaying measured traces shows jobs
//! running 15–72% longer than expected (Figure 6.2); SpotLight restores
//! the expected running time by steering the fallback to an
//! uncorrelated market.

use crate::series::{AvailabilityTimeline, PriceSeries};
use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Useful work the job must complete.
    pub work: SimDuration,
    /// Time to write one checkpoint (the paper's representative job:
    /// 8 GB footprint ≈ six minutes).
    pub checkpoint_time: SimDuration,
    /// Interval between checkpoints (`τ` in Eq 6.1).
    pub checkpoint_interval: SimDuration,
    /// Time to restore from a checkpoint after a failure.
    pub restore_time: SimDuration,
}

impl JobSpec {
    /// The paper's representative job: one hour of work, 8 GB footprint,
    /// six-minute checkpoints every 15 minutes.
    pub fn representative() -> Self {
        JobSpec {
            work: SimDuration::hours(1),
            checkpoint_time: SimDuration::minutes(6),
            checkpoint_interval: SimDuration::minutes(15),
            restore_time: SimDuration::minutes(2),
        }
    }
}

/// Where a SpotOn job restarts after a revocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartPolicy {
    /// The baseline: restart on the *same* market's on-demand servers
    /// (waiting out any unavailability).
    SameMarketOnDemand,
    /// SpotLight-informed: restart on an uncorrelated on-demand market.
    SpotLightInformed,
}

/// Result of one job trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Wall-clock completion time.
    pub completion: SimDuration,
    /// Revocations survived.
    pub revocations: u64,
    /// Time spent waiting for on-demand capacity.
    pub od_wait: SimDuration,
}

/// Replays one job starting at `start`.
///
/// The job runs on the spot market while the price is at or below the
/// on-demand price (SpotOn's bid), checkpointing on its interval. On a
/// revocation it loses work since the last checkpoint and restarts from
/// it on the fallback on-demand servers — stalling while
/// `fallback_od` reports them unavailable — then returns to spot when
/// the price falls back.
pub fn run_trial(
    job: &JobSpec,
    prices: &PriceSeries,
    od_price: Price,
    fallback_od: &AvailabilityTimeline,
    retry: SimDuration,
    start: SimTime,
) -> TrialResult {
    let bid = od_price;
    let mut now = start;
    let mut done = SimDuration::ZERO; // checkpointed work
    let mut revocations = 0;
    let mut od_wait = SimDuration::ZERO;

    // Overhead factor: while running, a checkpoint_time pause follows
    // every checkpoint_interval of work.
    let interval = job.checkpoint_interval.as_secs().max(1);
    let ckpt = job.checkpoint_time.as_secs();

    loop {
        let remaining = job.work - done;
        // Wall time to finish from here, with checkpoint overhead.
        let full_intervals = remaining.as_secs() / interval;
        let finish_wall = remaining.as_secs() + full_intervals * ckpt;
        let on_spot = prices.at(now).is_none_or(|p| p <= bid);

        if on_spot {
            let finish_at = now + SimDuration::from_secs(finish_wall);
            match prices.next_above(now, bid) {
                Some(revoked_at) if revoked_at < finish_at => {
                    // Work completed before revocation, rounded down to
                    // the last checkpoint.
                    let ran = revoked_at.saturating_since(now).as_secs();
                    let whole = ran / (interval + ckpt);
                    done += SimDuration::from_secs(whole * interval);
                    done = done.min(job.work);
                    revocations += 1;
                    now = revoked_at;
                    // Restart on on-demand.
                    if fallback_od.unavailable_at(now) {
                        let ready = fallback_od.next_available(now);
                        let gap = ready.saturating_since(now).as_secs();
                        let step = retry.as_secs().max(1);
                        let waited = SimDuration::from_secs(gap.div_ceil(step) * step);
                        od_wait += waited;
                        now += waited;
                    }
                    now += job.restore_time;
                }
                _ => {
                    now = finish_at;
                    break;
                }
            }
        } else {
            // On on-demand after a revocation: run until the spot price
            // falls back, then migrate back (SpotOn restarts the spot
            // instance from the last checkpoint; on-demand work is kept
            // via a checkpoint before the switch).
            let finish_at = now + SimDuration::from_secs(finish_wall);
            let spot_back = prices.next_at_or_below(now, bid).unwrap_or(SimTime::MAX);
            if spot_back >= finish_at {
                now = finish_at;
                break;
            }
            let ran = spot_back.saturating_since(now).as_secs();
            let whole = ran / (interval + ckpt);
            done += SimDuration::from_secs(whole * interval);
            done = done.min(job.work);
            now = spot_back + job.restore_time;
        }
    }

    TrialResult {
        completion: now.saturating_since(start),
        revocations,
        od_wait,
    }
}

/// Runs `n` trials with evenly spaced start times over `[start, end)`
/// and returns the results.
#[allow(clippy::too_many_arguments)]
pub fn run_trials(
    job: &JobSpec,
    prices: &PriceSeries,
    od_price: Price,
    fallback_od: &AvailabilityTimeline,
    retry: SimDuration,
    start: SimTime,
    end: SimTime,
    n: usize,
) -> Vec<TrialResult> {
    assert!(n > 0, "need at least one trial");
    assert!(end > start, "trial span must be non-empty");
    let span = (end - start).as_secs();
    (0..n)
        .map(|i| {
            let offset = span * i as u64 / n as u64;
            run_trial(
                job,
                prices,
                od_price,
                fallback_od,
                retry,
                start + SimDuration::from_secs(offset),
            )
        })
        .collect()
}

/// Mean completion time of a set of trials, in hours.
pub fn mean_completion_hours(trials: &[TrialResult]) -> f64 {
    if trials.is_empty() {
        return 0.0;
    }
    trials
        .iter()
        .map(|t| t.completion.as_hours_f64())
        .sum::<f64>()
        / trials.len() as f64
}

/// Market statistics SpotOn estimates from a price history for a bid
/// equal to the on-demand price.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketStats {
    /// Probability a job of length `T` is revoked before completing.
    pub revocation_probability: f64,
    /// Expected time to revocation given one occurs (`E[Z]`).
    pub expected_time_to_revocation: SimDuration,
    /// Mean spot price over the history.
    pub mean_spot_price: Price,
}

/// Estimates `P_k` and `E[Z_k]` for a job of length `job_wall` by
/// sliding `samples` start points over the recorded history.
pub fn estimate_market_stats(
    prices: &PriceSeries,
    od_price: Price,
    job_wall: SimDuration,
    samples: usize,
) -> Option<MarketStats> {
    let start = prices.start()?;
    let end = prices.end()?;
    if end <= start + job_wall || samples == 0 {
        return None;
    }
    let span = (end - start - job_wall).as_secs();
    let mut revoked = 0u64;
    let mut z_total = 0u64;
    let mut price_total = 0.0;
    for i in 0..samples {
        let t = start + SimDuration::from_secs(span * i as u64 / samples as u64);
        price_total += prices.at(t).unwrap_or(Price::ZERO).as_dollars();
        if let Some(rev) = prices.next_above(t, od_price) {
            if rev < t + job_wall {
                revoked += 1;
                z_total += rev.saturating_since(t).as_secs();
                continue;
            }
        }
    }
    let p = revoked as f64 / samples as f64;
    let e_z = match z_total.checked_div(revoked) {
        Some(mean) => SimDuration::from_secs(mean),
        None => job_wall,
    };
    Some(MarketStats {
        revocation_probability: p,
        expected_time_to_revocation: e_z,
        mean_spot_price: Price::from_dollars(price_total / samples as f64),
    })
}

/// Equation 6.1: the expected cost per unit of useful work of running a
/// checkpointed job on spot market `k`.
///
/// * `spot_price` — the market's (mean) spot price;
/// * `p` — probability of revocation before completion (`P_k`);
/// * `e_z` — expected time to revocation (`E[Z_k]`);
/// * `t` — remaining running time of the job (`T`);
/// * `t_lost` — expected work lost on a revocation (`T_L`);
/// * `tau` — checkpoint interval (`τ`);
/// * `t_ckpt` — time per checkpoint (`T_c`).
///
/// Returns `None` when the denominator (expected useful time) is not
/// positive — checkpointing overhead swallows all progress.
#[allow(clippy::too_many_arguments)]
pub fn expected_cost_checkpointing(
    spot_price: Price,
    p: f64,
    e_z: SimDuration,
    t: SimDuration,
    t_lost: SimDuration,
    tau: SimDuration,
    t_ckpt: SimDuration,
) -> Option<f64> {
    let e_z = e_z.as_hours_f64();
    let t = t.as_hours_f64();
    let t_lost = t_lost.as_hours_f64();
    let tau = tau.as_hours_f64();
    let t_ckpt = t_ckpt.as_hours_f64();
    let expected_time = (1.0 - p) * t + p * e_z;
    let useful = (1.0 - p) * t + p * (e_z - t_lost) - (e_z / tau) * t_ckpt;
    (useful > 0.0).then(|| expected_time * spot_price.as_dollars() / useful)
}

/// Brute-force market selection: the market with the lowest Eq 6.1
/// expected cost for the job (the paper's SpotOn selection step).
pub fn select_market<'a>(
    job: &JobSpec,
    candidates: impl IntoIterator<Item = (&'a str, MarketStats)>,
) -> Option<(&'a str, f64)> {
    let t_lost = SimDuration::from_secs(job.checkpoint_interval.as_secs() / 2);
    candidates
        .into_iter()
        .filter_map(|(name, stats)| {
            expected_cost_checkpointing(
                stats.mean_spot_price,
                stats.revocation_probability,
                stats.expected_time_to_revocation,
                job.work,
                t_lost,
                job.checkpoint_interval,
                job.checkpoint_time,
            )
            .map(|cost| (name, cost))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud_sim::trace::PricePoint;

    fn series(points: &[(u64, f64)]) -> PriceSeries {
        PriceSeries::new(
            points
                .iter()
                .map(|&(t, d)| PricePoint {
                    at: SimTime::from_secs(t),
                    price: Price::from_dollars(d),
                })
                .collect(),
        )
    }

    const HOUR: u64 = 3600;

    fn job() -> JobSpec {
        JobSpec::representative()
    }

    #[test]
    fn uninterrupted_job_finishes_with_overhead_only() {
        let prices = series(&[(0, 0.2)]);
        let r = run_trial(
            &job(),
            &prices,
            Price::from_dollars(1.0),
            &AvailabilityTimeline::default(),
            SimDuration::from_secs(300),
            SimTime::ZERO,
        );
        assert_eq!(r.revocations, 0);
        // 1 h work + 4 checkpoints × 6 min = 84 min.
        assert_eq!(r.completion, SimDuration::minutes(84));
    }

    #[test]
    fn revocation_with_available_od_adds_modest_delay() {
        let prices = series(&[(0, 0.2), (1800, 2.0), (5 * HOUR, 0.2)]);
        let r = run_trial(
            &job(),
            &prices,
            Price::from_dollars(1.0),
            &AvailabilityTimeline::default(),
            SimDuration::from_secs(300),
            SimTime::ZERO,
        );
        assert_eq!(r.revocations, 1);
        assert_eq!(r.od_wait, SimDuration::ZERO);
        assert!(r.completion > SimDuration::minutes(84));
        assert!(r.completion < SimDuration::hours(3));
    }

    #[test]
    fn od_unavailability_extends_running_time() {
        let prices = series(&[(0, 0.2), (1800, 2.0), (5 * HOUR, 0.2)]);
        let od_down = AvailabilityTimeline::from_intervals(vec![(
            SimTime::from_secs(1800),
            SimTime::from_secs(1800 + 2 * HOUR),
        )]);
        let blocked = run_trial(
            &job(),
            &prices,
            Price::from_dollars(1.0),
            &od_down,
            SimDuration::from_secs(300),
            SimTime::ZERO,
        );
        let free = run_trial(
            &job(),
            &prices,
            Price::from_dollars(1.0),
            &AvailabilityTimeline::default(),
            SimDuration::from_secs(300),
            SimTime::ZERO,
        );
        assert!(blocked.od_wait >= SimDuration::hours(2));
        assert!(
            blocked.completion >= free.completion + SimDuration::hours(2),
            "blocked {} vs free {}",
            blocked.completion,
            free.completion
        );
    }

    #[test]
    fn trials_are_reproducible_and_positive() {
        let prices = series(&[(0, 0.2), (10 * HOUR, 1.5), (11 * HOUR, 0.2)]);
        let trials = run_trials(
            &job(),
            &prices,
            Price::from_dollars(1.0),
            &AvailabilityTimeline::default(),
            SimDuration::from_secs(300),
            SimTime::ZERO,
            SimTime::from_secs(24 * HOUR),
            10,
        );
        assert_eq!(trials.len(), 10);
        assert!(mean_completion_hours(&trials) >= 1.0);
    }

    #[test]
    fn eq61_costs_rise_with_revocation_probability() {
        let j = job();
        let price = Price::from_dollars(0.2);
        let stable = expected_cost_checkpointing(
            price,
            0.05,
            SimDuration::minutes(50),
            j.work,
            SimDuration::minutes(7),
            j.checkpoint_interval,
            j.checkpoint_time,
        )
        .unwrap();
        let flaky = expected_cost_checkpointing(
            price,
            0.60,
            SimDuration::minutes(30),
            j.work,
            SimDuration::minutes(7),
            j.checkpoint_interval,
            j.checkpoint_time,
        )
        .unwrap();
        assert!(flaky > stable, "flaky {flaky} stable {stable}");
    }

    #[test]
    fn eq61_degenerate_overhead_is_none() {
        let j = job();
        assert!(expected_cost_checkpointing(
            Price::from_dollars(0.2),
            0.9,
            SimDuration::hours(10),
            j.work,
            SimDuration::minutes(7),
            SimDuration::minutes(1), // checkpoint every minute, 6 min each
            j.checkpoint_time,
        )
        .is_none());
    }

    #[test]
    fn market_stats_estimate_matches_trace() {
        // Price exceeds od in the second half of every 2 h cycle.
        let mut pts = Vec::new();
        for c in 0..12u64 {
            pts.push((c * 2 * HOUR, 0.2));
            pts.push((c * 2 * HOUR + HOUR, 1.5));
        }
        let prices = series(&pts);
        let stats = estimate_market_stats(
            &prices,
            Price::from_dollars(1.0),
            SimDuration::hours(1),
            100,
        )
        .unwrap();
        // Roughly half of all starts hit a revocation within the hour
        // (starts in the low half revoke at the next boundary).
        assert!(stats.revocation_probability > 0.4);
        assert!(stats.expected_time_to_revocation <= SimDuration::hours(1));
    }

    #[test]
    fn selection_prefers_the_cheaper_stable_market() {
        let j = job();
        let stable = MarketStats {
            revocation_probability: 0.05,
            expected_time_to_revocation: SimDuration::minutes(50),
            mean_spot_price: Price::from_dollars(0.2),
        };
        let flaky = MarketStats {
            revocation_probability: 0.7,
            expected_time_to_revocation: SimDuration::minutes(20),
            mean_spot_price: Price::from_dollars(0.18),
        };
        let (name, _) = select_market(&j, [("stable", stable), ("flaky", flaky)]).unwrap();
        assert_eq!(name, "stable");
    }
}
