//! Test-and-example hub crate: binds the workspace-level `tests/` and
//! `examples/` directories to the library crates. See the `[[test]]` and
//! `[[example]]` entries in `Cargo.toml`.
