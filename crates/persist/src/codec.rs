//! The binary serialization layer: [`Encode`]/[`Decode`] for the
//! primitives and `cloud-sim` vocabulary every persisted record is
//! built from.
//!
//! Wire conventions (version 1, see [`crate::frame`] for the envelope):
//!
//! * integers are little-endian fixed width; `usize` lengths travel as
//!   `u32` (a single record never holds 4 billion elements);
//! * `f64` travels as its IEEE bit pattern (`to_bits`), so round-trips
//!   are bit-exact including NaN payloads;
//! * enums are a one-byte tag followed by the variant's fields. Tags
//!   are assigned by **exhaustive `match`es** — adding a variant
//!   upstream breaks this crate's build instead of silently skipping
//!   persistence;
//! * `Option<T>` is a presence byte then the value; `String`/`Vec<T>`
//!   are a `u32` count then the elements.
//!
//! Decoding is total: malformed input yields a [`DecodeError`], never a
//! panic, even though in practice every payload handed to `decode` has
//! already passed its frame CRC.

use cloud_sim::api::ApiError;
use cloud_sim::ids::{Az, Family, InstanceType, MarketId, Platform, Region, Size};
use cloud_sim::price::Price;
use cloud_sim::time::{SimDuration, SimTime};
use std::fmt;

/// A value that can serialize itself onto a byte buffer.
pub trait Encode {
    /// Appends the wire form of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: the wire form as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// A value that can deserialize itself from a [`Reader`].
pub trait Decode: Sized {
    /// Reads one value off the front of `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated input or an invalid
    /// tag/length.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Decodes a value that must consume the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if decoding fails or bytes are left
    /// over.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_empty()?;
        Ok(v)
    }
}

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value did.
    Eof,
    /// A tag, length, or field value was out of range.
    Invalid(&'static str),
    /// Bytes were left over after a whole-buffer decode.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Eof => write!(f, "unexpected end of input"),
            DecodeError::Invalid(what) => write!(f, "invalid {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over a byte slice being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Eof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Eof);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Asserts the reader is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] otherwise.
    pub fn expect_empty(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }
}

macro_rules! int_codec {
    ($($t:ty),+) => {
        $(
            impl Encode for $t {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl Decode for $t {
                fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                    let raw = r.take(std::mem::size_of::<$t>())?;
                    Ok(<$t>::from_le_bytes(raw.try_into().expect("sized take")))
                }
            }
        )+
    };
}
int_codec!(u8, u16, u32, u64, i64);

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        u32::try_from(*self)
            .expect("collection length fits u32")
            .encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u32::decode(r)? as usize)
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool byte")),
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid("option tag")),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        // Guard against nonsense lengths: each element costs at least
        // one byte on the wire.
        if len > r.remaining() {
            return Err(DecodeError::Invalid("vec length"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Invalid("utf-8 string"))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------
// cloud-sim vocabulary
// ---------------------------------------------------------------------

impl Encode for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
    }
}

impl Decode for SimTime {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SimTime::from_secs(u64::decode(r)?))
    }
}

impl Encode for SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
    }
}

impl Decode for SimDuration {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SimDuration::from_secs(u64::decode(r)?))
    }
}

impl Encode for Price {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_micros().encode(out);
    }
}

impl Decode for Price {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Price::from_micros(u64::decode(r)?))
    }
}

impl Encode for Region {
    fn encode(&self, out: &mut Vec<u8>) {
        // `Region::index` is an exhaustive match in cloud-sim and
        // `ALL` is checked dense below, so the tag is stable.
        out.push(self.index() as u8);
    }
}

impl Decode for Region {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = u8::decode(r)? as usize;
        Region::ALL
            .get(tag)
            .copied()
            .ok_or(DecodeError::Invalid("region tag"))
    }
}

impl Encode for Family {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
}

impl Decode for Family {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = u8::decode(r)? as usize;
        Family::ALL
            .get(tag)
            .copied()
            .ok_or(DecodeError::Invalid("family tag"))
    }
}

/// The canonical wire order of [`Size`] variants. `Size` exposes no
/// `ALL`/`index` upstream, so the tag table lives here; the match in
/// [`size_tag`] is exhaustive, so a new size breaks this build.
const SIZE_ALL: [Size; 9] = [
    Size::Micro,
    Size::Small,
    Size::Medium,
    Size::Large,
    Size::Xlarge,
    Size::X2,
    Size::X4,
    Size::X8,
    Size::X10,
];

fn size_tag(size: Size) -> u8 {
    match size {
        Size::Micro => 0,
        Size::Small => 1,
        Size::Medium => 2,
        Size::Large => 3,
        Size::Xlarge => 4,
        Size::X2 => 5,
        Size::X4 => 6,
        Size::X8 => 7,
        Size::X10 => 8,
    }
}

impl Encode for Size {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(size_tag(*self));
    }
}

impl Decode for Size {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = u8::decode(r)? as usize;
        SIZE_ALL
            .get(tag)
            .copied()
            .ok_or(DecodeError::Invalid("size tag"))
    }
}

impl Encode for Platform {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
}

impl Decode for Platform {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = u8::decode(r)? as usize;
        Platform::ALL
            .get(tag)
            .copied()
            .ok_or(DecodeError::Invalid("platform tag"))
    }
}

impl Encode for Az {
    fn encode(&self, out: &mut Vec<u8>) {
        self.region().encode(out);
        out.push(self.zone_index());
    }
}

impl Decode for Az {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let region = Region::decode(r)?;
        let index = u8::decode(r)?;
        if index >= 26 {
            // `Az::new` panics past `z`; decode must stay total.
            return Err(DecodeError::Invalid("az index"));
        }
        Ok(Az::new(region, index))
    }
}

impl Encode for InstanceType {
    fn encode(&self, out: &mut Vec<u8>) {
        self.family().encode(out);
        self.size().encode(out);
    }
}

impl Decode for InstanceType {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(InstanceType::new(Family::decode(r)?, Size::decode(r)?))
    }
}

impl Encode for MarketId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.az.encode(out);
        self.instance_type.encode(out);
        self.platform.encode(out);
    }
}

impl Decode for MarketId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MarketId {
            az: Az::decode(r)?,
            instance_type: InstanceType::decode(r)?,
            platform: Platform::decode(r)?,
        })
    }
}

impl Encode for ApiError {
    fn encode(&self, out: &mut Vec<u8>) {
        // Exhaustive: a new ApiError variant fails to compile here
        // rather than silently never persisting.
        match self {
            ApiError::InsufficientInstanceCapacity { market } => {
                out.push(0);
                market.encode(out);
            }
            ApiError::RequestLimitExceeded { region } => {
                out.push(1);
                region.encode(out);
            }
            ApiError::InstanceLimitExceeded { region } => {
                out.push(2);
                region.encode(out);
            }
            ApiError::SpotRequestLimitExceeded { region } => {
                out.push(3);
                region.encode(out);
            }
            ApiError::MaxSpotPriceTooHigh { market, cap } => {
                out.push(4);
                market.encode(out);
                cap.encode(out);
            }
            ApiError::InvalidParameter(what) => {
                out.push(5);
                what.encode(out);
            }
            ApiError::NotFound(what) => {
                out.push(6);
                what.encode(out);
            }
            ApiError::InvalidState(what) => {
                out.push(7);
                what.encode(out);
            }
            ApiError::ServiceUnavailable { region } => {
                out.push(8);
                region.encode(out);
            }
            ApiError::InternalError { region } => {
                out.push(9);
                region.encode(out);
            }
        }
    }
}

impl Decode for ApiError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ApiError::InsufficientInstanceCapacity {
                market: MarketId::decode(r)?,
            },
            1 => ApiError::RequestLimitExceeded {
                region: Region::decode(r)?,
            },
            2 => ApiError::InstanceLimitExceeded {
                region: Region::decode(r)?,
            },
            3 => ApiError::SpotRequestLimitExceeded {
                region: Region::decode(r)?,
            },
            4 => ApiError::MaxSpotPriceTooHigh {
                market: MarketId::decode(r)?,
                cap: Price::decode(r)?,
            },
            5 => ApiError::InvalidParameter(String::decode(r)?),
            6 => ApiError::NotFound(String::decode(r)?),
            7 => ApiError::InvalidState(String::decode(r)?),
            8 => ApiError::ServiceUnavailable {
                region: Region::decode(r)?,
            },
            9 => ApiError::InternalError {
                region: Region::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid("api error tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).expect("decode"), v);
    }

    fn market() -> MarketId {
        MarketId {
            az: Az::new(Region::EuWest1, 2),
            instance_type: "d2.2xlarge".parse().unwrap(),
            platform: Platform::LinuxUnix,
        }
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-17i64);
        round_trip(1.5f64);
        round_trip(f64::NAN.to_bits()); // NaN itself is != NaN
        assert!(f64::from_bytes(&f64::NAN.to_bytes()).unwrap().is_nan());
        round_trip(true);
        round_trip(Some(42u32));
        round_trip(None::<u32>);
        round_trip(vec![1u16, 2, 3]);
        round_trip("stripe".to_string());
        round_trip((7u8, "x".to_string()));
    }

    #[test]
    fn cloud_sim_ids_round_trip() {
        for region in Region::ALL {
            round_trip(region);
        }
        for family in Family::ALL {
            round_trip(family);
        }
        for size in SIZE_ALL {
            round_trip(size);
        }
        for platform in Platform::ALL {
            round_trip(platform);
        }
        round_trip(Az::new(Region::UsWest2, 25));
        round_trip(market());
        round_trip(SimTime::from_secs(86_400));
        round_trip(SimDuration::hours(3));
        round_trip(Price::from_dollars(0.1234));
    }

    /// Every [`ApiError`] variant round-trips. The constructor list is
    /// itself produced by an exhaustive match so a new variant fails
    /// this test's build, not just its assertions.
    #[test]
    fn api_error_every_variant_round_trips() {
        let witness = ApiError::InternalError {
            region: Region::UsEast1,
        };
        // Exhaustive match over a witness proves the list below covers
        // every variant: add one upstream and this match stops
        // compiling until the list is extended.
        let all: Vec<ApiError> = match witness {
            ApiError::InsufficientInstanceCapacity { .. }
            | ApiError::RequestLimitExceeded { .. }
            | ApiError::InstanceLimitExceeded { .. }
            | ApiError::SpotRequestLimitExceeded { .. }
            | ApiError::MaxSpotPriceTooHigh { .. }
            | ApiError::InvalidParameter(_)
            | ApiError::NotFound(_)
            | ApiError::InvalidState(_)
            | ApiError::ServiceUnavailable { .. }
            | ApiError::InternalError { .. } => vec![
                ApiError::InsufficientInstanceCapacity { market: market() },
                ApiError::RequestLimitExceeded {
                    region: Region::ApNortheast1,
                },
                ApiError::InstanceLimitExceeded {
                    region: Region::SaEast1,
                },
                ApiError::SpotRequestLimitExceeded {
                    region: Region::UsWest1,
                },
                ApiError::MaxSpotPriceTooHigh {
                    market: market(),
                    cap: Price::from_dollars(1.05),
                },
                ApiError::InvalidParameter("zero bid".into()),
                ApiError::NotFound("sir-42".into()),
                ApiError::InvalidState("already terminated".into()),
                ApiError::ServiceUnavailable {
                    region: Region::EuCentral1,
                },
                ApiError::InternalError {
                    region: Region::UsEast1,
                },
            ],
        };
        assert_eq!(all.len(), 10);
        let mut tags = Vec::new();
        for e in all {
            let bytes = e.to_bytes();
            tags.push(bytes[0]);
            assert_eq!(ApiError::from_bytes(&bytes).expect("decode"), e);
        }
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 10, "variant tags must be distinct");
    }

    #[test]
    fn decode_is_total_on_garbage() {
        assert_eq!(u64::from_bytes(&[1, 2, 3]), Err(DecodeError::Eof));
        assert!(matches!(
            Region::from_bytes(&[200]),
            Err(DecodeError::Invalid(_))
        ));
        assert!(matches!(
            Az::from_bytes(&[0, 26]),
            Err(DecodeError::Invalid(_))
        ));
        assert!(matches!(
            bool::from_bytes(&[7]),
            Err(DecodeError::Invalid(_))
        ));
        // Length prefix far past the buffer must not allocate wildly.
        let mut bogus = Vec::new();
        u32::MAX.encode(&mut bogus);
        assert!(Vec::<u64>::from_bytes(&bogus).is_err());
        assert_eq!(u8::from_bytes(&[1, 9]), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn region_all_is_dense_under_index() {
        for (i, region) in Region::ALL.iter().enumerate() {
            assert_eq!(region.index(), i);
        }
        for (i, family) in Family::ALL.iter().enumerate() {
            assert_eq!(family.index(), i);
        }
        for (i, platform) in Platform::ALL.iter().enumerate() {
            assert_eq!(platform.index(), i);
        }
    }
}
