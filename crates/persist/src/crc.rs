//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) over byte
//! slices — the per-frame integrity check of [`crate::frame`].
//!
//! Slice-by-8: eight 256-entry tables built at compile time, consuming
//! 8 input bytes per step with independent lookups, which matters both
//! on the per-record append path (one CRC per ~100-byte frame) and in
//! recovery, which checksums the entire log. This is the same
//! polynomial `zlib`/`gzip` use, so frames can be spot-checked with
//! standard tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    // Table k maps a byte processed k positions early: t[k][b] is the
    // CRC of byte b followed by k zero bytes.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// The CRC32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn matches_bytewise_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..1021u32)
            .map(|i| (i.wrapping_mul(131) >> 2) as u8)
            .collect();
        // Every length 0..=64 exercises all remainder phases of the
        // slice-by-8 loop; a few larger ones cover long inputs.
        for len in (0..=64).chain([255, 512, 1021]) {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"spotlight-persist frame payload".to_vec();
        let crc = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), crc, "flip at byte {i} bit {bit}");
            }
        }
    }
}
