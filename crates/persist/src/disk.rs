//! Injectable disk I/O under the WAL, checkpoint, and spill writers.
//!
//! Every byte the persistence layer puts on disk flows through a
//! [`DiskIo`] implementation held by the [`crate::log::LogDir`]. In
//! production that is [`RealDisk`], a zero-cost passthrough to
//! `File::write_all`/`File::sync_data` (one dynamic call per coalesced
//! multi-kilobyte batch, so the indirection is unmeasurable). In tests
//! it is [`FaultyDisk`], which turns runtime disk trouble — `ENOSPC`,
//! `EIO`, fsync failure — into *deterministic, schedulable events*:
//!
//! * The disk keeps a cumulative count of bytes *attempted* (advanced
//!   whether or not the write succeeds, so retries make progress
//!   through the schedule).
//! * A write fails iff its byte span intersects a scheduled
//!   [`FaultWindow`]; an fsync fails iff the current byte position sits
//!   inside a sync-fault window.
//! * Windows come either from an explicit script
//!   ([`FaultyDisk::scripted`]) for targeted tests, or drawn from a
//!   seeded [`cloud_sim::rng::SimRng`] stream
//!   ([`FaultyDisk::seeded`]) for chaos-style coverage — the same seed
//!   always yields the same fault schedule.
//!
//! This is the runtime complement of [`crate::fault`], which damages
//! bytes *post mortem*: `fault` models what a crash leaves behind,
//! `disk` models the disk misbehaving while the process is alive.

use std::fmt::Debug;
use std::fs::File;
use std::io::{self, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};

/// Raw OS error codes used for injected faults (Linux/Unix values;
/// constructed via `io::Error::from_raw_os_error` so `ErrorKind`
/// mapping matches what a real syscall failure would produce).
const ENOSPC: i32 = 28;
const EIO: i32 = 5;

/// The two file operations the persistence layer performs. Implementors
/// must be shareable across the ingest threads and the WAL writer
/// thread.
pub trait DiskIo: Send + Sync + Debug {
    /// Writes all of `bytes` to `file` (append-position semantics are
    /// the caller's concern — WAL files are opened `O_APPEND`).
    fn write_all(&self, file: &mut File, bytes: &[u8]) -> io::Result<()>;
    /// Flushes `file`'s data (not necessarily metadata) to stable
    /// storage.
    fn sync_data(&self, file: &File) -> io::Result<()>;
}

/// The production disk: a passthrough to the real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealDisk;

impl DiskIo for RealDisk {
    fn write_all(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        file.write_all(bytes)
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }
}

/// Which failure a [`FaultWindow`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Writes inside the window fail with `ENOSPC` (disk full).
    WriteEnospc,
    /// Writes inside the window fail with `EIO` (media error).
    WriteEio,
    /// `sync_data` calls issued while the cumulative write position is
    /// inside the window fail with `EIO`.
    SyncEio,
}

/// A half-open range `[from, to)` of cumulative *attempted-write byte
/// offsets* during which the disk misbehaves. Offsets count every byte
/// handed to [`DiskIo::write_all`] regardless of outcome, so the
/// schedule is a pure function of the caller's write sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// What goes wrong.
    pub kind: FaultKind,
    /// First faulty offset (inclusive).
    pub from: u64,
    /// End of the window (exclusive).
    pub to: u64,
}

/// Parameters for a seeded fault schedule: alternating healthy gaps and
/// fault windows, lengths jittered ±50% around the means.
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Mean healthy bytes between consecutive windows.
    pub mean_gap: u64,
    /// Mean faulty bytes per window.
    pub mean_len: u64,
    /// Number of windows to schedule; after the last one the disk is
    /// permanently healthy (lets tests drive degraded → healed).
    pub windows: usize,
    /// Fault kinds to draw from, uniformly.
    pub kinds: Vec<FaultKind>,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            mean_gap: 256 * 1024,
            mean_len: 64 * 1024,
            windows: 4,
            kinds: vec![
                FaultKind::WriteEnospc,
                FaultKind::WriteEio,
                FaultKind::SyncEio,
            ],
        }
    }
}

/// A deterministic misbehaving disk. Wraps [`RealDisk`] and injects the
/// scheduled faults; outside every window it is a normal disk.
#[derive(Debug)]
pub struct FaultyDisk {
    inner: RealDisk,
    windows: Vec<FaultWindow>,
    /// Cumulative bytes attempted (successful or not).
    written: AtomicU64,
    /// Faults fired so far.
    injected: AtomicU64,
}

impl FaultyDisk {
    /// A disk that fails exactly per the given windows (sorted by
    /// `from` internally; overlapping windows are allowed — the first
    /// match wins).
    pub fn scripted(mut windows: Vec<FaultWindow>) -> FaultyDisk {
        windows.sort_unstable_by_key(|w| w.from);
        FaultyDisk {
            inner: RealDisk,
            windows,
            written: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// A disk whose fault windows are drawn from a seeded RNG stream:
    /// the same `(seed, profile)` always yields the same schedule.
    pub fn seeded(seed: u64, profile: &FaultProfile) -> FaultyDisk {
        let mut rng = cloud_sim::rng::SimRng::seed_from(seed ^ 0xD15C_FA17);
        let mut windows = Vec::with_capacity(profile.windows);
        let mut cursor = 0u64;
        for _ in 0..profile.windows {
            let gap = (profile.mean_gap.max(1) as f64 * rng.uniform_range(0.5, 1.5)) as u64;
            let len =
                (profile.mean_len.max(1) as f64 * rng.uniform_range(0.5, 1.5)).max(1.0) as u64;
            let kind = match profile.kinds.len() {
                0 => FaultKind::WriteEio,
                1 => profile.kinds[0],
                n => profile.kinds[rng.uniform_usize(0, n)],
            };
            cursor += gap;
            windows.push(FaultWindow {
                kind,
                from: cursor,
                to: cursor + len,
            });
            cursor += len;
        }
        FaultyDisk::scripted(windows)
    }

    /// The scheduled windows, sorted by start offset.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Cumulative bytes attempted so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// True once the write position is past every scheduled window —
    /// the disk has "healed" and will not fault again.
    pub fn exhausted(&self) -> bool {
        let pos = self.written();
        self.windows.iter().all(|w| w.to <= pos)
    }

    fn fault_for_span(&self, from: u64, to: u64) -> Option<FaultKind> {
        self.windows
            .iter()
            .find(|w| {
                matches!(w.kind, FaultKind::WriteEnospc | FaultKind::WriteEio)
                    && w.from < to
                    && from < w.to
            })
            .map(|w| w.kind)
    }
}

impl DiskIo for FaultyDisk {
    fn write_all(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        let len = bytes.len() as u64;
        // Advance the schedule whether or not the write succeeds:
        // retries of a failed write re-attempt at a *later* offset, so
        // bounded retry eventually clears a finite window.
        let start = self.written.fetch_add(len, Ordering::Relaxed);
        if let Some(kind) = self.fault_for_span(start, start + len) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(match kind {
                FaultKind::WriteEnospc => ENOSPC,
                _ => EIO,
            }));
        }
        self.inner.write_all(file, bytes)
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        let pos = self.written.load(Ordering::Relaxed);
        if self
            .windows
            .iter()
            .any(|w| w.kind == FaultKind::SyncEio && w.from <= pos && pos < w.to)
        {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(EIO));
        }
        self.inner.sync_data(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn scratch_file(tmp: &TempDir) -> File {
        File::create(tmp.path().join("scratch")).expect("create scratch")
    }

    #[test]
    fn real_disk_round_trips() {
        let tmp = TempDir::new("disk-real");
        let mut file = scratch_file(&tmp);
        RealDisk.write_all(&mut file, b"hello").expect("write");
        RealDisk.sync_data(&file).expect("sync");
        assert_eq!(
            std::fs::read(tmp.path().join("scratch")).expect("read"),
            b"hello"
        );
    }

    #[test]
    fn scripted_windows_fire_on_span_intersection() {
        let tmp = TempDir::new("disk-scripted");
        let mut file = scratch_file(&tmp);
        let disk = FaultyDisk::scripted(vec![FaultWindow {
            kind: FaultKind::WriteEnospc,
            from: 10,
            to: 20,
        }]);
        // [0, 8): healthy.
        disk.write_all(&mut file, &[0u8; 8]).expect("healthy");
        // [8, 16): intersects [10, 20) -> ENOSPC.
        let err = disk.write_all(&mut file, &[0u8; 8]).expect_err("faulty");
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        // The failed attempt still advanced the schedule: [16, 24)
        // intersects too, but [24, 32) is clear.
        assert!(disk.write_all(&mut file, &[0u8; 8]).is_err());
        disk.write_all(&mut file, &[0u8; 8]).expect("healed");
        assert_eq!(disk.injected(), 2);
        assert!(disk.exhausted());
    }

    #[test]
    fn sync_faults_key_off_the_write_position() {
        let tmp = TempDir::new("disk-sync");
        let mut file = scratch_file(&tmp);
        let disk = FaultyDisk::scripted(vec![FaultWindow {
            kind: FaultKind::SyncEio,
            from: 4,
            to: 8,
        }]);
        disk.sync_data(&file).expect("before the window");
        disk.write_all(&mut file, &[0u8; 5]).expect("write is fine");
        let err = disk.sync_data(&file).expect_err("inside the window");
        assert_eq!(err.raw_os_error(), Some(EIO));
        disk.write_all(&mut file, &[0u8; 5]).expect("write");
        disk.sync_data(&file).expect("past the window");
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let profile = FaultProfile::default();
        let a = FaultyDisk::seeded(42, &profile);
        let b = FaultyDisk::seeded(42, &profile);
        let c = FaultyDisk::seeded(43, &profile);
        assert_eq!(a.windows(), b.windows());
        assert_ne!(a.windows(), c.windows());
        assert_eq!(a.windows().len(), profile.windows);
        // Windows are disjoint and ordered.
        for pair in a.windows().windows(2) {
            assert!(pair[0].to <= pair[1].from);
        }
    }
}
