//! Crash-injection helpers: deterministic file damage at byte
//! granularity, used by the torn-write recovery tests.
//!
//! The fault matrix the recovery oracle drives:
//!
//! * **truncate** — the file loses its tail from an arbitrary byte
//!   offset (a crash mid-append, or a filesystem that zero-extends
//!   nothing);
//! * **torn frame** — a special case of truncation landing inside a
//!   frame; exercised by choosing offsets inside frame spans;
//! * **bad CRC** — a byte inside an already-written frame flips (bit
//!   rot, partial sector overwrite);
//! * **duplicated tail** — the final frame appears twice (an append
//!   retried after an unacknowledged write).
//!
//! All helpers operate on closed files by path; callers drop the
//! [`crate::wal::WalHandle`] first so no writer races the damage.

use crate::frame::{self, FRAME_OVERHEAD, HEADER_LEN};
use std::fs;
use std::io;
use std::path::Path;

/// Byte spans `[start, end)` of each frame in a framed file, including
/// the file header as the leading span. Lets tests aim damage at a
/// specific frame or boundary.
///
/// # Errors
///
/// Propagates read errors; returns an empty list for files shorter
/// than a header.
pub fn frame_spans(path: &Path) -> io::Result<Vec<(usize, usize)>> {
    let bytes = fs::read(path)?;
    if bytes.len() < HEADER_LEN {
        return Ok(Vec::new());
    }
    let mut spans = vec![(0, HEADER_LEN)];
    let mut pos = HEADER_LEN;
    while bytes.len() - pos >= FRAME_OVERHEAD {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("sized")) as usize;
        if len > frame::MAX_FRAME || bytes.len() - pos - FRAME_OVERHEAD < len {
            break;
        }
        spans.push((pos, pos + FRAME_OVERHEAD + len));
        pos += FRAME_OVERHEAD + len;
    }
    Ok(spans)
}

/// Truncates the file to `len` bytes — the crash-mid-append fault.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn truncate_at(path: &Path, len: u64) -> io::Result<()> {
    let file = fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()
}

/// XORs the byte at `offset` with `mask` (default damage `0x01` if
/// `mask` is zero would be a no-op, so zero is rejected).
///
/// # Errors
///
/// Propagates filesystem errors; fails if `offset` is past the end.
pub fn corrupt_byte_at(path: &Path, offset: u64, mask: u8) -> io::Result<()> {
    assert_ne!(mask, 0, "a zero mask would not corrupt anything");
    let mut bytes = fs::read(path)?;
    let i = usize::try_from(offset).expect("offset fits usize");
    if i >= bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "corruption offset past end of file",
        ));
    }
    bytes[i] ^= mask;
    fs::write(path, bytes)
}

/// Appends a copy of the file's final frame — the retried-append
/// duplicate-tail fault. Returns `false` (and leaves the file alone)
/// if the file holds no complete frame.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn duplicate_tail_frame(path: &Path) -> io::Result<bool> {
    let spans = frame_spans(path)?;
    // spans[0] is the header; the last *frame* span is what we copy.
    let Some(&(start, end)) = spans.get(1..).and_then(|s| s.last()) else {
        return Ok(false);
    };
    let bytes = fs::read(path)?;
    let mut out = bytes.clone();
    out.extend_from_slice(&bytes[start..end]);
    fs::write(path, out)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{magic, scan, strip_header, ScanEnd};
    use crate::tempdir::TempDir;

    fn framed_file(dir: &Path, bodies: &[&[u8]]) -> std::path::PathBuf {
        let mut out = Vec::new();
        frame::write_header(&mut out, magic::WAL);
        for (i, body) in bodies.iter().enumerate() {
            frame::write_frame(&mut out, i as u64, body);
        }
        let path = dir.join("victim.log");
        fs::write(&path, out).expect("write");
        path
    }

    fn scan_file(path: &Path) -> (usize, ScanEnd) {
        let bytes = fs::read(path).expect("read");
        let res = scan(strip_header(&bytes, magic::WAL).expect("header"));
        (res.frames.len(), res.end)
    }

    #[test]
    fn spans_cover_the_file() {
        let tmp = TempDir::new("fault-spans");
        let path = framed_file(tmp.path(), &[b"aa", b"bbbb"]);
        let spans = frame_spans(&path).expect("spans");
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], (0, HEADER_LEN));
        assert_eq!(spans[1].0, HEADER_LEN);
        assert_eq!(spans[2].1 as u64, fs::metadata(&path).expect("meta").len());
    }

    #[test]
    fn truncation_inside_a_frame_tears_it() {
        let tmp = TempDir::new("fault-trunc");
        let path = framed_file(tmp.path(), &[b"aa", b"bbbb"]);
        let spans = frame_spans(&path).expect("spans");
        truncate_at(&path, (spans[2].0 + 3) as u64).expect("truncate");
        assert_eq!(scan_file(&path), (1, ScanEnd::Truncated));
    }

    #[test]
    fn corruption_fails_the_crc() {
        let tmp = TempDir::new("fault-corrupt");
        let path = framed_file(tmp.path(), &[b"aa", b"bbbb"]);
        let spans = frame_spans(&path).expect("spans");
        corrupt_byte_at(&path, (spans[1].0 + FRAME_OVERHEAD + 8) as u64, 0x10).expect("corrupt");
        assert_eq!(scan_file(&path), (0, ScanEnd::BadCrc));
    }

    #[test]
    fn duplicate_tail_doubles_the_last_frame() {
        let tmp = TempDir::new("fault-dup");
        let path = framed_file(tmp.path(), &[b"aa", b"bbbb"]);
        assert!(duplicate_tail_frame(&path).expect("dup"));
        let bytes = fs::read(&path).expect("read");
        let res = scan(strip_header(&bytes, magic::WAL).expect("header"));
        assert_eq!(res.end, ScanEnd::Clean);
        let seqs: Vec<u64> = res.frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 1]);
    }

    #[test]
    fn duplicate_tail_on_empty_file_is_a_noop() {
        let tmp = TempDir::new("fault-dup-empty");
        let path = framed_file(tmp.path(), &[]);
        assert!(!duplicate_tail_frame(&path).expect("dup"));
    }
}
