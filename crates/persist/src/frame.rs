//! The versioned record frame and the prefix-valid scanner.
//!
//! Every persisted file starts with an 8-byte header:
//!
//! ```text
//! [magic: 4 bytes][version: u32 LE]
//! ```
//!
//! where the magic names the file kind (WAL, checkpoint, spill segment,
//! directory header) so a misplaced file is rejected instead of
//! misparsed. After the header the file is a run of frames:
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][payload: len bytes]
//! ```
//!
//! `crc` is CRC32-IEEE of the payload and `len` is its byte length,
//! capped at [`MAX_FRAME`]. The payload's leading 8 bytes are the
//! record's sequence number ([`Frame::seq`]); the rest is opaque to
//! this layer.
//!
//! [`scan`] implements the recovery contract: it returns every frame up
//! to — but not including — the first torn, truncated, or corrupt one,
//! and reports *why* it stopped. A crash can only damage the tail of an
//! append-only file, so the valid prefix is exactly the durable data.

use crate::crc::crc32;

/// Largest accepted payload (64 MiB). A length field above this is
/// treated as corruption, bounding allocations while scanning.
pub const MAX_FRAME: usize = 1 << 26;

/// Frame/file-format version stamped into every file header.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of a file header (`magic ++ version`).
pub const HEADER_LEN: usize = 8;

/// Byte overhead of one frame on top of its payload (`len ++ crc`).
pub const FRAME_OVERHEAD: usize = 8;

/// File-kind magics. Distinct per kind so files cannot be confused.
pub mod magic {
    /// Directory header file.
    pub const DIR: [u8; 4] = *b"SLd1";
    /// Write-ahead log generation file.
    pub const WAL: [u8; 4] = *b"SLw1";
    /// Checkpoint file.
    pub const CHECKPOINT: [u8; 4] = *b"SLc1";
    /// Sealed spill segment.
    pub const SPILL: [u8; 4] = *b"SLs1";
    /// Clean-shutdown marker.
    pub const CLEAN: [u8; 4] = *b"SLk1";
}

/// A decoded frame: its sequence number and opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotone record sequence number (first 8 payload bytes).
    pub seq: u64,
    /// The payload after the sequence number.
    pub body: Vec<u8>,
}

/// Why a scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEnd {
    /// The file ended exactly on a frame boundary — nothing lost.
    Clean,
    /// The tail held fewer bytes than one frame header or its declared
    /// payload — a torn or truncated final write.
    Truncated,
    /// A frame's CRC did not match its payload.
    BadCrc,
    /// A frame declared a payload longer than [`MAX_FRAME`].
    OversizeLen,
    /// A frame's payload was too short to hold a sequence number.
    ShortPayload,
}

/// The outcome of scanning one file body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Every frame in the valid prefix, in file order.
    pub frames: Vec<Frame>,
    /// Why scanning stopped.
    pub end: ScanEnd,
    /// Byte offset (within the scanned body) where the valid prefix
    /// ends — the start of the first damaged frame, if any.
    pub valid_len: usize,
}

/// Appends the 8-byte file header for `kind` to `out`.
pub fn write_header(out: &mut Vec<u8>, kind: [u8; 4]) {
    out.extend_from_slice(&kind);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
}

/// Checks a file starts with the header for `kind` and returns the
/// body after it.
///
/// # Errors
///
/// Returns a static description when the file is too short, carries a
/// different magic, or a newer format version.
pub fn strip_header(bytes: &[u8], kind: [u8; 4]) -> Result<&[u8], &'static str> {
    if bytes.len() < HEADER_LEN {
        return Err("file shorter than header");
    }
    if bytes[..4] != kind {
        return Err("file magic mismatch");
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sized slice"));
    if version != FORMAT_VERSION {
        return Err("unsupported format version");
    }
    Ok(&bytes[HEADER_LEN..])
}

/// Appends one frame carrying `seq ++ body` to `out`.
pub fn write_frame(out: &mut Vec<u8>, seq: u64, body: &[u8]) {
    let payload_len = body.len() + 8;
    assert!(payload_len <= MAX_FRAME, "frame payload exceeds MAX_FRAME");
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    // CRC backfilled once the payload is in place: this runs once per
    // appended record, so it must not allocate an intermediate payload.
    out.extend_from_slice(&[0u8; 4]);
    let payload_at = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(body);
    let crc = crc32(&out[payload_at..]).to_le_bytes();
    out[payload_at - 4..payload_at].copy_from_slice(&crc);
}

/// Scans a file body (header already stripped), returning its valid
/// frame prefix. Never fails: damage is reported via [`ScanResult::end`].
pub fn scan(body: &[u8]) -> ScanResult {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let end = loop {
        if pos == body.len() {
            break ScanEnd::Clean;
        }
        if body.len() - pos < FRAME_OVERHEAD {
            break ScanEnd::Truncated;
        }
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("sized")) as usize;
        let crc = u32::from_le_bytes(body[pos + 4..pos + 8].try_into().expect("sized"));
        if len > MAX_FRAME {
            break ScanEnd::OversizeLen;
        }
        if body.len() - pos - FRAME_OVERHEAD < len {
            break ScanEnd::Truncated;
        }
        let payload = &body[pos + FRAME_OVERHEAD..pos + FRAME_OVERHEAD + len];
        if crc32(payload) != crc {
            break ScanEnd::BadCrc;
        }
        if payload.len() < 8 {
            break ScanEnd::ShortPayload;
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().expect("sized"));
        frames.push(Frame {
            seq,
            body: payload[8..].to_vec(),
        });
        pos += FRAME_OVERHEAD + len;
    };
    ScanResult {
        frames,
        end,
        valid_len: pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_with(frames: &[(u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        write_header(&mut out, magic::WAL);
        for (seq, body) in frames {
            write_frame(&mut out, *seq, body);
        }
        out
    }

    #[test]
    fn clean_round_trip() {
        let file = file_with(&[(1, b"alpha"), (2, b""), (3, b"gamma")]);
        let body = strip_header(&file, magic::WAL).expect("header");
        let res = scan(body);
        assert_eq!(res.end, ScanEnd::Clean);
        assert_eq!(res.valid_len, body.len());
        assert_eq!(
            res.frames,
            vec![
                Frame {
                    seq: 1,
                    body: b"alpha".to_vec()
                },
                Frame {
                    seq: 2,
                    body: Vec::new()
                },
                Frame {
                    seq: 3,
                    body: b"gamma".to_vec()
                },
            ]
        );
    }

    #[test]
    fn header_is_checked() {
        let file = file_with(&[(1, b"x")]);
        assert!(strip_header(&file, magic::CHECKPOINT).is_err());
        assert!(strip_header(&file[..4], magic::WAL).is_err());
        let mut wrong_version = file.clone();
        wrong_version[4] = 0xFF;
        assert!(strip_header(&wrong_version, magic::WAL).is_err());
    }

    #[test]
    fn truncation_keeps_valid_prefix() {
        let file = file_with(&[(1, b"alpha"), (2, b"beta")]);
        let body = strip_header(&file, magic::WAL).expect("header");
        // Every proper prefix of the file recovers only whole frames.
        for cut in 0..body.len() {
            let res = scan(&body[..cut]);
            assert!(res.frames.len() <= 2);
            assert!(res.valid_len <= cut);
            if res.end == ScanEnd::Clean {
                assert_eq!(res.valid_len, cut);
            }
            for (i, frame) in res.frames.iter().enumerate() {
                assert_eq!(frame.seq, i as u64 + 1);
            }
        }
    }

    #[test]
    fn corruption_stops_the_scan() {
        let file = file_with(&[(1, b"alpha"), (2, b"beta"), (3, b"gamma")]);
        let body = strip_header(&file, magic::WAL).expect("header").to_vec();
        // Flip one byte inside the second frame's payload.
        let first_len = FRAME_OVERHEAD + 8 + 5;
        let mut damaged = body.clone();
        damaged[first_len + FRAME_OVERHEAD + 9] ^= 0x40;
        let res = scan(&damaged);
        assert_eq!(res.end, ScanEnd::BadCrc);
        assert_eq!(res.frames.len(), 1, "frames after the damage are dropped");
        assert_eq!(res.valid_len, first_len);
    }

    #[test]
    fn oversize_length_is_corruption() {
        let mut body = Vec::new();
        body.extend_from_slice(&(u32::MAX).to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&[0; 32]);
        assert_eq!(scan(&body).end, ScanEnd::OversizeLen);
    }
}
