//! # spotlight-persist
//!
//! Crash-safe persistence for the SpotLight probe store (ROADMAP item
//! 2): a small in-tree binary serialization layer plus a per-stripe
//! append-only segment log with checkpoints — the real serialization
//! that retires the no-op serde shim for persisted types.
//!
//! The crate is deliberately application-agnostic: it moves *byte
//! payloads* through CRC-checked frames and numbered log streams, and
//! knows how to encode the `cloud-sim` vocabulary ([`codec`]).
//! `spotlight-core` layers the store-specific operation log and
//! checkpoint state on top.
//!
//! Layers, bottom up:
//!
//! * [`crc`] — CRC32 (IEEE) over payload bytes;
//! * [`codec`] — [`codec::Encode`]/[`codec::Decode`] for primitives and
//!   the `cloud-sim` id/time/price/error types, little-endian,
//!   length-prefixed where variable;
//! * [`disk`] — the injectable disk-I/O layer ([`disk::DiskIo`]):
//!   [`disk::RealDisk`] in production, the deterministic
//!   [`disk::FaultyDisk`] (seeded ENOSPC/EIO/fsync-failure schedules)
//!   under test, so runtime disk faults are first-class events;
//! * [`frame`] — the versioned record frame
//!   `[len:u32][crc:u32][seq:u64 ++ payload]` and a scanner that stops
//!   at the first torn, truncated, or corrupt frame (prefix-valid
//!   recovery semantics);
//! * [`wal`] — a bounded-queue single-writer append log over N streams
//!   with a configurable fsync policy and generation rotation;
//! * [`log`] — the on-disk directory layout (header, per-stream WAL
//!   generations, the checkpoint file written temp+rename+fsync, sealed
//!   spill segments);
//! * [`fault`] — the crash-injection helpers the torn-write recovery
//!   tests drive (truncate/corrupt/duplicate-tail at byte offsets);
//! * [`tempdir`] — a tiny RAII scratch-directory helper for tests and
//!   benches (no `tempfile` crate offline).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod crc;
pub mod disk;
pub mod fault;
pub mod frame;
pub mod log;
pub mod tempdir;
pub mod wal;

pub use codec::{Decode, DecodeError, Encode, Reader};
pub use disk::{DiskIo, FaultKind, FaultProfile, FaultWindow, FaultyDisk, RealDisk};
pub use log::{CleanMarker, LogDir, LogDirMeta};
pub use wal::{FsyncPolicy, WalConfig, WalHandle, WalStats};
