//! The on-disk layout of a persistent store directory.
//!
//! ```text
//! <root>/
//!   header                  directory metadata (streams + app bytes)
//!   wal-<gen>-<stream>.log  append-only generation files, per stream
//!   checkpoint              latest checkpoint (temp+rename+fsync)
//!   spill-<stripe>-<n>.seg  sealed, immutable spill segments
//! ```
//!
//! Mutation rules that make crashes survivable:
//!
//! * WAL generation files are append-only and never rewritten; a crash
//!   can only damage their tails, which the frame scanner trims.
//! * The checkpoint and every spill segment are written to a temp file,
//!   fsynced, then renamed into place, then the directory is fsynced —
//!   readers see either the old file or the complete new one.
//! * Old WAL generations are deleted only *after* the checkpoint that
//!   supersedes them is durable.

use crate::frame::{self, magic, ScanEnd, ScanResult};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

const HEADER_FILE: &str = "header";
const CHECKPOINT_FILE: &str = "checkpoint";
/// Checkpoint sections are split into frames of at most this many
/// bytes, so a section (one stripe's full state) may exceed
/// [`frame::MAX_FRAME`] without overflowing a frame.
const CHECKPOINT_CHUNK: usize = 1 << 24;

/// A handle on a persistent store directory.
#[derive(Debug, Clone)]
pub struct LogDir {
    root: PathBuf,
}

/// Metadata read back from a directory's header file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogDirMeta {
    /// Number of WAL streams the directory was created with.
    pub streams: u32,
    /// Opaque application bytes (the store's layout parameters).
    pub app_meta: Vec<u8>,
}

impl LogDir {
    /// Creates (or reuses) `root` and writes the header file declaring
    /// `streams` streams and `app_meta`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, a header already
    /// exists (refusing to silently adopt another store's data), or
    /// writing fails.
    pub fn create(root: &Path, streams: u32, app_meta: &[u8]) -> io::Result<LogDir> {
        fs::create_dir_all(root)?;
        let dir = LogDir {
            root: root.to_path_buf(),
        };
        if dir.root.join(HEADER_FILE).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "log directory already initialized",
            ));
        }
        let mut body = Vec::new();
        frame::write_header(&mut body, magic::DIR);
        let mut section = Vec::with_capacity(4 + app_meta.len());
        section.extend_from_slice(&streams.to_le_bytes());
        section.extend_from_slice(app_meta);
        frame::write_frame(&mut body, 0, &section);
        dir.write_atomic(HEADER_FILE, &body)?;
        Ok(dir)
    }

    /// Opens an existing directory and reads its header.
    ///
    /// # Errors
    ///
    /// Fails if the header is missing, unreadable, or corrupt — a
    /// damaged header is unrecoverable by design (it is tiny and
    /// written once, atomically).
    pub fn open(root: &Path) -> io::Result<(LogDir, LogDirMeta)> {
        let dir = LogDir {
            root: root.to_path_buf(),
        };
        // A crash between a temp write and its rename leaves a stale
        // `*.tmp` behind; checkpoint.tmp would be truncated by the next
        // checkpoint, but spill temp names are never reused, so they
        // would accumulate forever. Sweep them all before anything
        // reads or writes the directory — only renamed files are live.
        dir.sweep_tmp()?;
        let bytes = fs::read(dir.root.join(HEADER_FILE))?;
        let body = frame::strip_header(&bytes, magic::DIR).map_err(corrupt)?;
        let scanned = frame::scan(body);
        if scanned.end != ScanEnd::Clean || scanned.frames.len() != 1 {
            return Err(corrupt("damaged header frame"));
        }
        let section = &scanned.frames[0].body;
        if section.len() < 4 {
            return Err(corrupt("short header section"));
        }
        let streams = u32::from_le_bytes(section[..4].try_into().expect("sized"));
        Ok((
            dir,
            LogDirMeta {
                streams,
                app_meta: section[4..].to_vec(),
            },
        ))
    }

    /// A second handle on the same directory (for the writer thread).
    ///
    /// # Errors
    ///
    /// Never fails today; kept fallible for handle-duplication schemes
    /// that can.
    pub fn clone_view(&self) -> io::Result<LogDir> {
        Ok(self.clone())
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of one WAL generation file.
    pub fn wal_path(&self, generation: u64, stream: u32) -> PathBuf {
        self.root
            .join(format!("wal-{generation:08}-{stream:04}.log"))
    }

    /// Opens a WAL generation file for appending, writing the file
    /// header if the file is new.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_wal_append(&self, generation: u64, stream: u32) -> io::Result<File> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path(generation, stream))?;
        if file.metadata()?.len() == 0 {
            let mut header = Vec::with_capacity(frame::HEADER_LEN);
            frame::write_header(&mut header, magic::WAL);
            file.write_all(&header)?;
        }
        Ok(file)
    }

    /// Every `(generation, stream)` WAL file present, sorted.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn list_wal(&self) -> io::Result<Vec<(u64, u32)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix("wal-") {
                if let Some(rest) = rest.strip_suffix(".log") {
                    if let Some((gen_s, stream_s)) = rest.split_once('-') {
                        if let (Ok(generation), Ok(stream)) =
                            (gen_s.parse::<u64>(), stream_s.parse::<u32>())
                        {
                            out.push((generation, stream));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Reads and scans one WAL generation file. Torn/corrupt tails are
    /// reported in the [`ScanResult`], not as errors.
    ///
    /// # Errors
    ///
    /// Fails only on filesystem errors or a damaged *file header*.
    pub fn read_wal(&self, generation: u64, stream: u32) -> io::Result<ScanResult> {
        let bytes = fs::read(self.wal_path(generation, stream))?;
        let body = frame::strip_header(&bytes, magic::WAL).map_err(corrupt)?;
        Ok(frame::scan(body))
    }

    /// Deletes every WAL file with generation `< before`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn delete_wal_before(&self, before: u64) -> io::Result<()> {
        for (generation, stream) in self.list_wal()? {
            if generation < before {
                fs::remove_file(self.wal_path(generation, stream))?;
            }
        }
        Ok(())
    }

    /// Atomically replaces the checkpoint file with `sections` (one
    /// CRC'd frame each, sequence = section index).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the previous checkpoint,
    /// if any, is still in place.
    pub fn write_checkpoint(&self, sections: &[Vec<u8>]) -> io::Result<()> {
        let mut body = Vec::new();
        frame::write_header(&mut body, magic::CHECKPOINT);
        for (i, section) in sections.iter().enumerate() {
            // A section larger than one frame allows (year-scale epoch
            // summaries can exceed MAX_FRAME) is chunked across
            // consecutive frames sharing the section index as their
            // sequence number; the reader reassembles by index.
            let mut chunks = section.chunks(CHECKPOINT_CHUNK);
            frame::write_frame(&mut body, i as u64, chunks.next().unwrap_or(&[]));
            for chunk in chunks {
                frame::write_frame(&mut body, i as u64, chunk);
            }
        }
        self.write_atomic(CHECKPOINT_FILE, &body)
    }

    /// Reads the checkpoint's sections, or `None` if no checkpoint has
    /// been written yet.
    ///
    /// # Errors
    ///
    /// A present-but-damaged checkpoint is a hard error: it was fsynced
    /// before any WAL it supersedes was deleted, so damage means
    /// something other than a crash-torn tail.
    pub fn read_checkpoint(&self) -> io::Result<Option<Vec<Vec<u8>>>> {
        let bytes = match fs::read(self.root.join(CHECKPOINT_FILE)) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(err) => return Err(err),
        };
        let body = frame::strip_header(&bytes, magic::CHECKPOINT).map_err(corrupt)?;
        let scanned = frame::scan(body);
        if scanned.end != ScanEnd::Clean {
            return Err(corrupt("damaged checkpoint"));
        }
        // Reassemble chunked sections: consecutive frames share the
        // section index as their sequence number.
        let mut sections: Vec<Vec<u8>> = Vec::new();
        for frame in scanned.frames {
            match (frame.seq as usize).cmp(&sections.len()) {
                std::cmp::Ordering::Equal => sections.push(frame.body),
                std::cmp::Ordering::Less if frame.seq as usize + 1 == sections.len() => {
                    sections
                        .last_mut()
                        .expect("non-empty by the index check")
                        .extend_from_slice(&frame.body);
                }
                _ => return Err(corrupt("checkpoint section indices out of order")),
            }
        }
        Ok(Some(sections))
    }

    /// Writes a sealed spill segment for `stripe` holding `records`
    /// (one frame each) and returns its path. Atomic: temp, fsync,
    /// rename, directory fsync.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error no segment is visible.
    pub fn write_spill(&self, stripe: u32, records: &[Vec<u8>]) -> io::Result<PathBuf> {
        let n = self
            .list_spills()?
            .into_iter()
            .filter(|&(s, _)| s == stripe)
            .map(|(_, n)| n + 1)
            .max()
            .unwrap_or(0);
        let name = format!("spill-{stripe:04}-{n:08}.seg");
        let mut body = Vec::new();
        frame::write_header(&mut body, magic::SPILL);
        for (i, record) in records.iter().enumerate() {
            frame::write_frame(&mut body, i as u64, record);
        }
        self.write_atomic(&name, &body)?;
        Ok(self.root.join(name))
    }

    /// Every `(stripe, index)` spill segment present, sorted.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn list_spills(&self) -> io::Result<Vec<(u32, u64)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix("spill-") {
                if let Some(rest) = rest.strip_suffix(".seg") {
                    if let Some((stripe_s, n_s)) = rest.split_once('-') {
                        if let (Ok(stripe), Ok(n)) = (stripe_s.parse::<u32>(), n_s.parse::<u64>()) {
                            out.push((stripe, n));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Reads one sealed spill segment's records.
    ///
    /// # Errors
    ///
    /// A damaged spill segment is a hard error: segments are written
    /// atomically and never appended to, so torn tails cannot happen.
    pub fn read_spill(&self, stripe: u32, n: u64) -> io::Result<Vec<Vec<u8>>> {
        let bytes = fs::read(self.root.join(format!("spill-{stripe:04}-{n:08}.seg")))?;
        let body = frame::strip_header(&bytes, magic::SPILL).map_err(corrupt)?;
        let scanned = frame::scan(body);
        if scanned.end != ScanEnd::Clean {
            return Err(corrupt("damaged spill segment"));
        }
        Ok(scanned.frames.into_iter().map(|f| f.body).collect())
    }

    /// Total bytes of every file in the directory — the store's
    /// on-disk footprint.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(&self.root)? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    }

    /// Unlinks every abandoned `*.tmp` file in the directory (debris
    /// from a crash between a temp write and its rename).
    fn sweep_tmp(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".tmp"))
            {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// Writes `bytes` to `name` via temp + fsync + rename + dir fsync.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.root.join(format!("{name}.tmp"));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, self.root.join(name))?;
        // Make the rename itself durable.
        File::open(&self.root)?.sync_data()?;
        Ok(())
    }
}

fn corrupt(what: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn header_round_trips_and_refuses_reinit() {
        let tmp = TempDir::new("logdir-header");
        let _ = LogDir::create(tmp.path(), 17, b"layout").expect("create");
        let (_, meta) = LogDir::open(tmp.path()).expect("open");
        assert_eq!(
            meta,
            LogDirMeta {
                streams: 17,
                app_meta: b"layout".to_vec()
            }
        );
        assert!(LogDir::create(tmp.path(), 17, b"layout").is_err());
    }

    #[test]
    fn checkpoint_replace_is_atomic_and_readable() {
        let tmp = TempDir::new("logdir-ckpt");
        let dir = LogDir::create(tmp.path(), 1, &[]).expect("create");
        assert_eq!(dir.read_checkpoint().expect("none yet"), None);
        dir.write_checkpoint(&[b"meta".to_vec(), b"stripe0".to_vec()])
            .expect("write");
        dir.write_checkpoint(&[b"meta2".to_vec()]).expect("rewrite");
        assert_eq!(
            dir.read_checkpoint().expect("read"),
            Some(vec![b"meta2".to_vec()])
        );
    }

    #[test]
    fn oversize_checkpoint_sections_chunk_and_reassemble() {
        let tmp = TempDir::new("logdir-ckpt-chunks");
        let dir = LogDir::create(tmp.path(), 1, &[]).expect("create");
        let big: Vec<u8> = (0..CHECKPOINT_CHUNK * 2 + 123)
            .map(|i| (i % 251) as u8)
            .collect();
        let sections = vec![b"meta".to_vec(), big, Vec::new(), b"tail".to_vec()];
        dir.write_checkpoint(&sections).expect("write");
        assert_eq!(dir.read_checkpoint().expect("read"), Some(sections));
    }

    #[test]
    fn wal_listing_and_deletion() {
        let tmp = TempDir::new("logdir-wal");
        let dir = LogDir::create(tmp.path(), 2, &[]).expect("create");
        for generation in 0..3u64 {
            for stream in 0..2u32 {
                dir.open_wal_append(generation, stream).expect("open");
            }
        }
        assert_eq!(dir.list_wal().expect("list").len(), 6);
        dir.delete_wal_before(2).expect("delete");
        assert_eq!(dir.list_wal().expect("list"), vec![(2, 0), (2, 1)]);
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let tmp = TempDir::new("logdir-tmp-sweep");
        let _ = LogDir::create(tmp.path(), 1, &[]).expect("create");
        // Debris a crash mid-write_atomic would leave behind.
        std::fs::write(tmp.path().join("spill-0000-00000000.seg.tmp"), b"torn").expect("write");
        std::fs::write(tmp.path().join("checkpoint.tmp"), b"torn").expect("write");
        let (dir, _) = LogDir::open(tmp.path()).expect("open");
        assert!(!tmp.path().join("spill-0000-00000000.seg.tmp").exists());
        assert!(!tmp.path().join("checkpoint.tmp").exists());
        // The swept name is free again for a real spill.
        dir.write_spill(0, &[b"a".to_vec()]).expect("spill");
        assert_eq!(dir.list_spills().expect("list"), vec![(0, 0)]);
    }

    #[test]
    fn spill_segments_are_numbered_per_stripe() {
        let tmp = TempDir::new("logdir-spill");
        let dir = LogDir::create(tmp.path(), 1, &[]).expect("create");
        dir.write_spill(0, &[b"a".to_vec()]).expect("spill");
        dir.write_spill(0, &[b"b".to_vec(), b"c".to_vec()])
            .expect("spill");
        dir.write_spill(3, &[b"d".to_vec()]).expect("spill");
        assert_eq!(
            dir.list_spills().expect("list"),
            vec![(0, 0), (0, 1), (3, 0)]
        );
        assert_eq!(
            dir.read_spill(0, 1).expect("read"),
            vec![b"b".to_vec(), b"c".to_vec()]
        );
        assert!(dir.disk_bytes().expect("bytes") > 0);
    }
}
